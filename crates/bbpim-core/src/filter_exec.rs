//! Filter execution: compile the query's filter (in disjunctive normal
//! form) to bulk-bitwise microprograms and leave a one-bit mask per
//! record.
//!
//! In `one-xb` mode a single program evaluates every DNF disjunct (a
//! conjunction of atoms), ORs the disjunct terms together and ANDs in
//! the validity bit. In `two-xb` mode each disjunct is evaluated in
//! sequence: its dimension-side atoms produce a mask that is
//! *transferred through the host* — read as cache lines, rewritten into
//! the fact partition's transfer chunk — before the fact-side program
//! combines the disjunct and ORs it into the accumulated mask (the
//! inter-partition traffic Section III predicts vertical partitioning
//! will pay, now once per disjunct that touches a dimension).
//!
//! Either way the mask is built **once per query** and reused by every
//! aggregate in the SELECT list — the multi-aggregate surface's whole
//! point: aggregates cost aggregate passes, not extra filter passes.

use bbpim_db::plan::ResolvedAtom;
use bbpim_sim::compiler::predicate;
use bbpim_sim::compiler::{CodeBuilder, ColRange, ScratchPool};
use bbpim_sim::isa::Microprogram;
use bbpim_sim::maskwire;
use bbpim_sim::module::{PageId, PimModule};
use bbpim_sim::timeline::{Phase, RunLog};

use crate::error::CoreError;
use crate::layout::{AttrPlacement, RecordLayout, MASK_COL, TRANSFER_COL, VALID_COL};
use crate::loader::LoadedRelation;
use crate::planner::PageSet;

/// Result of the filter phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterOutcome {
    /// Records whose mask bit is set.
    pub selected: u64,
    /// `selected / records`.
    pub selectivity: f64,
}

/// Emit one atom's predicate program; returns the result column.
///
/// # Errors
///
/// Propagates compiler failures (scratch exhaustion, bad constants).
pub fn compile_atom(
    b: &mut CodeBuilder<'_>,
    atom: &ResolvedAtom,
    range: ColRange,
) -> Result<usize, CoreError> {
    let col = match atom {
        ResolvedAtom::Eq { value, .. } => predicate::compile_eq_const(b, range, *value)?,
        ResolvedAtom::Between { lo, hi, .. } => {
            predicate::compile_between_const(b, range, *lo, *hi)?
        }
        ResolvedAtom::Lt { value, .. } => predicate::compile_lt_const(b, range, *value)?,
        ResolvedAtom::Gt { value, .. } => predicate::compile_gt_const(b, range, *value)?,
        ResolvedAtom::In { values, .. } => predicate::compile_in_set(b, range, values)?,
    };
    Ok(col)
}

/// Copy a one-bit column into `dst` (INIT + double NOT, 4 cycles).
pub fn copy_col(b: &mut CodeBuilder<'_>, src: usize, dst: usize) -> Result<(), CoreError> {
    let t = b.emit_not(src)?;
    b.program_mut().gate_nor(t, t, dst);
    b.release(t);
    Ok(())
}

/// Build the program that evaluates the conjunction `atoms`
/// (pre-resolved to column ranges of this partition), ANDs in
/// `and_cols` (validity, transferred masks…), and writes the result to
/// `dst_col`. Uses the partition's whole scratch region — see
/// [`build_mask_program_in`] when part of the scratch is reserved (e.g.
/// by a materialised aggregate expression).
///
/// # Errors
///
/// Propagates compiler failures.
pub fn build_mask_program(
    layout: &RecordLayout,
    partition: usize,
    atoms: &[(ResolvedAtom, ColRange)],
    and_cols: &[usize],
    dst_col: usize,
) -> Result<Microprogram, CoreError> {
    build_mask_program_in(layout.scratch(partition), atoms, and_cols, dst_col)
}

/// [`build_mask_program`] with an explicit scratch region.
///
/// # Errors
///
/// Propagates compiler failures.
pub fn build_mask_program_in(
    scratch: ColRange,
    atoms: &[(ResolvedAtom, ColRange)],
    and_cols: &[usize],
    dst_col: usize,
) -> Result<Microprogram, CoreError> {
    build_accumulate_program_in(scratch, atoms, and_cols, dst_col, false)
}

/// Build the program for one DNF disjunct: `conj(atoms) AND and_cols`,
/// optionally ORed into the current contents of `dst_col` (the
/// accumulation step of multi-disjunct two-xb filtering).
///
/// # Errors
///
/// Propagates compiler failures.
pub fn build_accumulate_program_in(
    scratch: ColRange,
    atoms: &[(ResolvedAtom, ColRange)],
    and_cols: &[usize],
    dst_col: usize,
    accumulate: bool,
) -> Result<Microprogram, CoreError> {
    let mut pool = ScratchPool::new(scratch);
    let mut b = CodeBuilder::new(&mut pool);
    let mut terms: Vec<usize> = Vec::with_capacity(atoms.len() + and_cols.len());
    for (atom, range) in atoms {
        terms.push(compile_atom(&mut b, atom, *range)?);
    }
    terms.extend_from_slice(and_cols);
    let conj = b.emit_and_many(&terms)?;
    let result = if accumulate {
        let ored = b.emit_or(conj, dst_col)?;
        b.release(conj);
        ored
    } else {
        conj
    };
    copy_col(&mut b, result, dst_col)?;
    b.release(result);
    Ok(b.finish())
}

/// Build one program evaluating a whole DNF inside a single partition:
/// each disjunct's conjunction term, OR across disjuncts, AND
/// `and_cols`, result to `dst_col`. An empty conjunction contributes a
/// constant-true term; zero disjuncts write an all-false mask.
///
/// # Errors
///
/// Propagates compiler failures.
pub fn build_dnf_mask_program_in(
    scratch: ColRange,
    disjuncts: &[Vec<(ResolvedAtom, ColRange)>],
    and_cols: &[usize],
    dst_col: usize,
) -> Result<Microprogram, CoreError> {
    let mut pool = ScratchPool::new(scratch);
    let mut b = CodeBuilder::new(&mut pool);
    if disjuncts.is_empty() {
        // FALSE: an executed filter must still leave a well-defined
        // (all-false) mask on the touched pages.
        let zero = b.zero()?;
        copy_col(&mut b, zero, dst_col)?;
        return Ok(b.finish());
    }
    let mut terms: Vec<usize> = Vec::with_capacity(disjuncts.len());
    for conj in disjuncts {
        if conj.is_empty() {
            terms.push(b.one()?);
            continue;
        }
        let mut atom_cols: Vec<usize> = Vec::with_capacity(conj.len());
        for (atom, range) in conj {
            atom_cols.push(compile_atom(&mut b, atom, *range)?);
        }
        let term = b.emit_and_many(&atom_cols)?;
        for c in atom_cols {
            b.release(c);
        }
        terms.push(term);
    }
    let selected = if terms.len() == 1 {
        terms[0]
    } else {
        let ored = b.emit_or_many(terms.clone())?;
        for c in terms {
            b.release(c);
        }
        ored
    };
    let mut all: Vec<usize> = Vec::with_capacity(1 + and_cols.len());
    all.push(selected);
    all.extend_from_slice(and_cols);
    let combined = b.emit_and_many(&all)?;
    b.release(selected);
    copy_col(&mut b, combined, dst_col)?;
    b.release(combined);
    Ok(b.finish())
}

/// Count the set bits of a one-bit column over a partition's pages.
pub fn count_mask_bits(module: &PimModule, pages: &[PageId], col: usize) -> u64 {
    pages
        .iter()
        .map(|&p| {
            module.page(p).crossbars().map(|xb| xb.bits().popcount_col(col) as u64).sum::<u64>()
        })
        .sum()
}

/// Read a one-bit column of a partition's *planned* pages into a
/// per-record vector; records on pruned pages read `false` (the
/// all-false mask semantics pruning guarantees). Charging for the host
/// read is the caller's decision via [`mask_read_lines`].
pub fn mask_bits(
    module: &PimModule,
    loaded: &LoadedRelation,
    pages: &PageSet,
    partition: usize,
    col: usize,
) -> Vec<bool> {
    let mut out = vec![false; loaded.records()];
    for (pg_idx, pid) in pages.entries(loaded, partition) {
        let page = module.page(pid);
        for slot in 0..loaded.records_per_page() {
            let record = loaded.record_at(pg_idx, slot);
            if record >= loaded.records() {
                break;
            }
            let s = page.record_slot(slot).expect("slot within page");
            out[record] = page.crossbar(s.crossbar).bits().get(s.row, col);
        }
    }
    out
}

/// Cache lines needed to read a page-run's one-bit mask column: one line
/// per (page, row) — 1024 lines per 2 MB page, the paper's 32× read
/// reduction.
pub fn mask_read_lines(module: &PimModule, pages: &[PageId]) -> u64 {
    pages.len() as u64 * module.config().crossbar_rows as u64
}

/// The per-record mask bits of the *planned* pages, in page order — the
/// payload an inter-partition mask transfer actually moves. `bits` is
/// the full per-record vector ([`mask_bits`]).
pub fn planned_mask_payload(loaded: &LoadedRelation, pages: &PageSet, bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(pages.len() * loaded.records_per_page());
    for &pg_idx in pages.indices() {
        for slot in 0..loaded.records_per_page() {
            let record = loaded.record_at(pg_idx, slot);
            if record >= loaded.records() {
                break;
            }
            out.push(bits[record]);
        }
    }
    out
}

/// The host-channel phases of one inter-partition mask transfer over
/// the planned pages: a host read out of the source partition and a
/// host write into the destination, plus — on the compressed path — the
/// module-local pack/unpack phase.
///
/// Legacy: both sides cost one line per (page, row)
/// ([`mask_read_lines`]). With [`bbpim_sim::XferPolicy::compress_masks`]
/// the transfer is charged at the [`maskwire`] size of the planned
/// pages' mask bits (8-byte header + min(bit-packed, RLE)) and the
/// leftover cell traffic becomes a `PimUnpack` phase that never touches
/// the channel. Falls back to the raw transfer when the wire format
/// does not win. Answers are unaffected either way — the mask bits are
/// moved exactly, which the round-trip debug assertion checks.
pub fn mask_transfer_phases(
    module: &PimModule,
    loaded: &LoadedRelation,
    pages: &PageSet,
    bits: &[bool],
) -> Vec<Phase> {
    let raw_lines = pages.len() as u64 * module.config().crossbar_rows as u64;
    if module.policy().compress_masks {
        let payload = planned_mask_payload(loaded, pages, bits);
        debug_assert_eq!(
            maskwire::decode_rle(payload.len() as u64, &maskwire::encode_rle(&payload)).as_deref(),
            Some(payload.as_slice()),
            "mask wire format must round-trip bit-identically"
        );
        let wire_lines = maskwire::wire_lines(&payload, module.config().host.line_bytes as u64);
        if wire_lines < raw_lines {
            let (read, write, unpack) = module.compressed_mask_phases(raw_lines, wire_lines);
            return vec![read, write, unpack];
        }
    }
    vec![module.host_read_phase(raw_lines), module.host_write_phase(raw_lines)]
}

/// The host-channel phases of reading the planned pages' mask column
/// back to the host — the filter-result fetch of the host-side GROUP
/// BY gather (pre-joined and star). Legacy: one line per (page, row)
/// ([`mask_read_lines`]). With
/// [`bbpim_sim::XferPolicy::compress_masks`] the read is charged at
/// the [`maskwire`] size of the planned pages' mask bits and the
/// leftover cell traffic becomes a module-local `PimPack` phase off
/// the channel — the read-direction mirror of
/// [`mask_transfer_phases`], with the same conservation (total time
/// and energy match the raw read exactly).
pub fn mask_read_phases(
    module: &PimModule,
    loaded: &LoadedRelation,
    pages: &PageSet,
    bits: &[bool],
) -> Vec<Phase> {
    let raw_lines = pages.len() as u64 * module.config().crossbar_rows as u64;
    if module.policy().compress_masks {
        let payload = planned_mask_payload(loaded, pages, bits);
        let wire_lines = maskwire::wire_lines(&payload, module.config().host.line_bytes as u64);
        if wire_lines < raw_lines {
            let (read, pack) = module.compressed_mask_read_phases(raw_lines, wire_lines);
            return vec![read, pack];
        }
    }
    vec![module.host_read_phase(raw_lines)]
}

/// Execute the query filter (resolved DNF, placements attached) over
/// the *planned* pages, leaving the final mask in partition 0's
/// [`MASK_COL`] of those pages. Pruned pages are never touched: no
/// program executes on them and their records count as unselected
/// (sound, because the planner proved they cannot match). Pushes every
/// phase (PIM programs, transfer reads and writes) to `log`; an empty
/// plan pushes nothing and selects nothing.
///
/// # Errors
///
/// Propagates compiler/simulator failures; unknown attributes have been
/// resolved by the caller.
pub fn run_filter(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    disjuncts: &[Vec<(ResolvedAtom, AttrPlacement)>],
    pages: &PageSet,
    log: &mut RunLog,
) -> Result<FilterOutcome, CoreError> {
    if pages.is_empty() {
        return Ok(FilterOutcome { selected: 0, selectivity: 0.0 });
    }
    let fact_pages = pages.ids(loaded, 0);

    if layout.partitions() == 1 {
        let ranged: Vec<Vec<(ResolvedAtom, ColRange)>> = disjuncts
            .iter()
            .map(|conj| conj.iter().map(|(a, p)| (a.clone(), p.range)).collect())
            .collect();
        let prog = build_dnf_mask_program_in(layout.scratch(0), &ranged, &[VALID_COL], MASK_COL)?;
        log.push(module.exec_program(&fact_pages, &prog)?);
    } else if disjuncts.is_empty() {
        // FALSE filter under exhaustive dispatch: all-false fact mask.
        let prog = build_dnf_mask_program_in(layout.scratch(0), &[], &[VALID_COL], MASK_COL)?;
        log.push(module.exec_program(&fact_pages, &prog)?);
    } else {
        // two-xb: evaluate disjunct by disjunct, ORing into the fact
        // mask. Each disjunct's dimension-side conjunction travels
        // through the host once.
        for (i, conj) in disjuncts.iter().enumerate() {
            let mut fact_atoms: Vec<(ResolvedAtom, ColRange)> = Vec::new();
            let mut dim_atoms: Vec<(ResolvedAtom, ColRange)> = Vec::new();
            for (atom, placement) in conj {
                let entry = (atom.clone(), placement.range);
                if placement.partition == 0 {
                    fact_atoms.push(entry);
                } else {
                    dim_atoms.push(entry);
                }
            }
            let mut fact_and = vec![VALID_COL];
            if !dim_atoms.is_empty() {
                // Dimension-side conjunction of this disjunct…
                let dim_pages = pages.ids(loaded, 1);
                let prog = build_mask_program(layout, 1, &dim_atoms, &[VALID_COL], MASK_COL)?;
                log.push(module.exec_program(&dim_pages, &prog)?);
                // …travels through the host into the fact partition, in
                // the compressed wire format when the policy allows.
                let bits = mask_bits(module, loaded, pages, 1, MASK_COL);
                for phase in mask_transfer_phases(module, loaded, pages, &bits) {
                    log.push(phase);
                }
                write_transfer_bits(module, loaded, &bits, pages)?;
                fact_and.push(TRANSFER_COL);
            }
            let prog = build_accumulate_program_in(
                layout.scratch(0),
                &fact_atoms,
                &fact_and,
                MASK_COL,
                i > 0,
            )?;
            log.push(module.exec_program(&fact_pages, &prog)?);
        }
    }

    let selected = count_mask_bits(module, &fact_pages, MASK_COL);
    let selectivity =
        if loaded.records() == 0 { 0.0 } else { selected as f64 / loaded.records() as f64 };
    Ok(FilterOutcome { selected, selectivity })
}

/// Write a per-record bit vector into a partition's transfer chunk on
/// the planned pages (the host writes whole 16-bit chunks, so each
/// record's row takes a 16-cell write).
///
/// # Errors
///
/// Propagates page-slot failures.
pub fn write_transfer_bits_to(
    module: &mut PimModule,
    loaded: &LoadedRelation,
    bits: &[bool],
    partition: usize,
    pages: &PageSet,
) -> Result<(), CoreError> {
    let entries: Vec<(usize, PageId)> = pages.entries(loaded, partition).collect();
    for (pg_idx, pid) in entries {
        let page = module.page_mut(pid);
        for slot in 0..loaded.records_per_page() {
            let record = loaded.record_at(pg_idx, slot);
            if record >= bits.len() {
                break;
            }
            page.write_record_bits(slot, TRANSFER_COL, 16, bits[record] as u64)?;
        }
    }
    Ok(())
}

/// [`write_transfer_bits_to`] targeting partition 0 (the common case:
/// dimension masks travel to the fact partition).
///
/// # Errors
///
/// Propagates page-slot failures.
pub fn write_transfer_bits(
    module: &mut PimModule,
    loaded: &LoadedRelation,
    bits: &[bool],
    pages: &PageSet,
) -> Result<(), CoreError> {
    write_transfer_bits_to(module, loaded, bits, 0, pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RecordLayout;
    use crate::loader::load_relation;
    use crate::modes::EngineMode;
    use bbpim_db::builder::col;
    use bbpim_db::plan::{Atom, Query, SelectItem};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::Relation;
    use bbpim_sim::SimConfig;

    fn setup(mode: EngineMode) -> (PimModule, Relation, RecordLayout, LoadedRelation) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_g", 4)]);
        let mut rel = Relation::new(schema);
        for i in 0..600u64 {
            rel.push_row(&[i % 200, i % 10]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, mode, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        (module, rel, layout, loaded)
    }

    /// Resolve a query's DNF with placements (what the engine hands
    /// `run_filter`).
    fn resolved(
        query: &Query,
        rel: &Relation,
        layout: &RecordLayout,
    ) -> Vec<Vec<(ResolvedAtom, AttrPlacement)>> {
        let schema = rel.schema();
        query
            .resolve_filter(schema)
            .unwrap()
            .into_iter()
            .map(|conj| {
                conj.into_iter()
                    .map(|atom| {
                        let name = &schema.attrs()[atom.attr_index()].name;
                        let placement = layout.placement(name).unwrap();
                        (atom, placement)
                    })
                    .collect()
            })
            .collect()
    }

    fn query(filter: Vec<Atom>) -> Query {
        Query::single(
            "t",
            filter,
            vec![],
            bbpim_db::plan::AggFunc::Sum,
            bbpim_db::plan::AggExpr::attr("lo_v"),
        )
    }

    #[test]
    fn one_xb_filter_matches_oracle() {
        let (mut module, rel, layout, loaded) = setup(EngineMode::OneXb);
        let q = query(vec![
            Atom::Lt { attr: "lo_v".into(), value: 50u64.into() },
            Atom::Eq { attr: "d_g".into(), value: 3u64.into() },
        ]);
        let atoms = resolved(&q, &rel, &layout);
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        let out = run_filter(&mut module, &layout, &loaded, &atoms, &pages, &mut log).unwrap();
        let expected = bbpim_db::stats::filter_bitvec(&q, &rel).unwrap();
        assert_eq!(out.selected, expected.iter().filter(|b| **b).count() as u64);
        // per-record mask identical to the oracle
        let mask = mask_bits(&module, &loaded, &pages, 0, MASK_COL);
        assert_eq!(mask, expected);
        assert!(log.total_time_ns() > 0.0);
    }

    #[test]
    fn disjunctive_filter_matches_oracle_both_modes() {
        for mode in [EngineMode::OneXb, EngineMode::TwoXb] {
            let (mut module, rel, layout, loaded) = setup(mode);
            // (lo_v < 30 AND d_g = 2) OR (lo_v > 150) OR (d_g = 7)
            let q = Query::select([SelectItem::count("n")])
                .filter(
                    col("lo_v")
                        .lt(30u64)
                        .and(col("d_g").eq(2u64))
                        .or(col("lo_v").gt(150u64))
                        .or(col("d_g").eq(7u64)),
                )
                .build(rel.schema())
                .unwrap();
            let atoms = resolved(&q, &rel, &layout);
            assert_eq!(atoms.len(), 3, "three disjuncts");
            let mut log = RunLog::new();
            let pages = PageSet::all(loaded.page_count());
            let out = run_filter(&mut module, &layout, &loaded, &atoms, &pages, &mut log).unwrap();
            let expected = bbpim_db::stats::filter_bitvec(&q, &rel).unwrap();
            assert_eq!(out.selected, expected.iter().filter(|b| **b).count() as u64, "{mode:?}");
            let mask = mask_bits(&module, &loaded, &pages, 0, MASK_COL);
            assert_eq!(mask, expected, "{mode:?}");
        }
    }

    #[test]
    fn two_xb_disjunction_charges_one_transfer_per_dim_disjunct() {
        use bbpim_sim::timeline::PhaseKind;
        let (mut module, rel, layout, loaded) = setup(EngineMode::TwoXb);
        // two disjuncts with dimension atoms, one without
        let q = Query::select([SelectItem::count("n")])
            .filter(col("d_g").eq(1u64).or(col("d_g").eq(5u64)).or(col("lo_v").lt(10u64)))
            .build(rel.schema())
            .unwrap();
        let atoms = resolved(&q, &rel, &layout);
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        let out = run_filter(&mut module, &layout, &loaded, &atoms, &pages, &mut log).unwrap();
        let expected = bbpim_db::stats::filter_bitvec(&q, &rel).unwrap();
        assert_eq!(out.selected, expected.iter().filter(|b| **b).count() as u64);
        // exactly two host read+write transfer pairs (the lo_v disjunct
        // stays fact-side)
        let reads = log.phases().iter().filter(|p| p.kind == PhaseKind::HostRead).count();
        let writes = log.phases().iter().filter(|p| p.kind == PhaseKind::HostWrite).count();
        assert_eq!(reads, 2);
        assert_eq!(writes, 2);
    }

    #[test]
    fn two_xb_filter_matches_oracle_and_charges_transfer() {
        let (mut module, rel, layout, loaded) = setup(EngineMode::TwoXb);
        let q = query(vec![
            Atom::Lt { attr: "lo_v".into(), value: 120u64.into() },
            Atom::In { attr: "d_g".into(), values: vec![2u64.into(), 7u64.into()] },
        ]);
        let atoms = resolved(&q, &rel, &layout);
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        let out = run_filter(&mut module, &layout, &loaded, &atoms, &pages, &mut log).unwrap();
        let expected = bbpim_db::stats::filter_bitvec(&q, &rel).unwrap();
        assert_eq!(out.selected, expected.iter().filter(|b| **b).count() as u64);
        let mask = mask_bits(&module, &loaded, &pages, 0, MASK_COL);
        assert_eq!(mask, expected);
        // transfer phases present: at least one host read + one host write
        use bbpim_sim::timeline::PhaseKind;
        assert!(log.time_in(PhaseKind::HostRead) > 0.0);
        assert!(log.time_in(PhaseKind::HostWrite) > 0.0);
    }

    #[test]
    fn two_xb_without_dim_atoms_skips_transfer() {
        let (mut module, rel, layout, loaded) = setup(EngineMode::TwoXb);
        let q = query(vec![Atom::Gt { attr: "lo_v".into(), value: 150u64.into() }]);
        let atoms = resolved(&q, &rel, &layout);
        let mut log = RunLog::new();
        run_filter(
            &mut module,
            &layout,
            &loaded,
            &atoms,
            &PageSet::all(loaded.page_count()),
            &mut log,
        )
        .unwrap();
        use bbpim_sim::timeline::PhaseKind;
        assert_eq!(log.time_in(PhaseKind::HostRead), 0.0);
    }

    #[test]
    fn false_filter_selects_nothing_exhaustively() {
        // an empty DNF (Pred::Or(vec![])) run over all pages must leave
        // an all-false mask
        for mode in [EngineMode::OneXb, EngineMode::TwoXb] {
            let (mut module, _rel, layout, loaded) = setup(mode);
            let mut log = RunLog::new();
            let pages = PageSet::all(loaded.page_count());
            let out = run_filter(&mut module, &layout, &loaded, &[], &pages, &mut log).unwrap();
            assert_eq!(out.selected, 0, "{mode:?}");
            assert!(mask_bits(&module, &loaded, &pages, 0, MASK_COL).iter().all(|b| !b));
        }
    }

    #[test]
    fn padding_rows_never_selected() {
        let (mut module, rel, layout, loaded) = setup(EngineMode::OneXb);
        // trivially-true filter: v < 256 selects every *valid* record
        let q = query(vec![Atom::Lt { attr: "lo_v".into(), value: 255u64.into() }]);
        let atoms = resolved(&q, &rel, &layout);
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        let out = run_filter(&mut module, &layout, &loaded, &atoms, &pages, &mut log).unwrap();
        // 600 records, none of the padding slots counted
        let expected =
            rel.column_by_name("lo_v").unwrap().values().iter().filter(|v| **v < 255).count();
        assert_eq!(out.selected, expected as u64);
    }

    #[test]
    fn empty_filter_selects_all_valid() {
        let (mut module, rel, layout, loaded) = setup(EngineMode::OneXb);
        let q = query(vec![]);
        let atoms = resolved(&q, &rel, &layout);
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        let out = run_filter(&mut module, &layout, &loaded, &atoms, &pages, &mut log).unwrap();
        assert_eq!(out.selected, rel.len() as u64);
        assert!((out.selectivity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mask_read_lines_is_rows_times_pages() {
        let (module, _rel, _layout, loaded) = setup(EngineMode::OneXb);
        let lines = mask_read_lines(&module, loaded.pages(0));
        assert_eq!(lines, (loaded.page_count() * module.config().crossbar_rows) as u64);
    }
}
