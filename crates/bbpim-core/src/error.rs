//! Error type for the PIM OLAP engine.

use std::error::Error;
use std::fmt;

use bbpim_db::DbError;
use bbpim_sim::SimError;

/// Errors produced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Hardware-simulator failure.
    Sim(SimError),
    /// Relational-layer failure.
    Db(DbError),
    /// The relation does not fit the PIM layout (record too wide, too
    /// little scratch, module out of pages…).
    Layout(String),
    /// A query touched something the PIM engine cannot execute (e.g. an
    /// aggregate expression spanning partitions).
    Unsupported(String),
    /// GROUP-BY cost models were needed but not calibrated.
    NotCalibrated,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulator: {e}"),
            CoreError::Db(e) => write!(f, "database: {e}"),
            CoreError::Layout(msg) => write!(f, "layout: {msg}"),
            CoreError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            CoreError::NotCalibrated => {
                write!(f, "group-by cost model missing: call calibrate() first")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors() {
        let e: CoreError = SimError::NoSuchPage(3).into();
        assert!(e.to_string().contains("simulator"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<CoreError>();
    }
}
