//! The hybrid GROUP-BY of Section IV, over the full SELECT list.
//!
//! Flow: filter (done by the caller, once per query) → [`sampling`] one
//! page → [`cost_model`] evaluation of Eqs. (1)–(3) with tables fitted
//! by [`calibration`] → the k largest subgroups to [`pim_gb`], the tail
//! to [`host_gb`] → merge. Every physical aggregate of the SELECT list
//! shares the same sample, the same k decision, the same per-key group
//! masks (pim-gb) and the same record-read pass (host-gb) — extra
//! aggregates cost extra reductions / host ALU work, never extra filter
//! or mask passes.
//!
//! Candidate subgroups are ordered: keys seen in the sample (estimated
//! size, descending), then all remaining *potential* keys (the cross
//! product of the constrained per-attribute domains) — so choosing
//! `k = k_MAX` covers subgroups the sample never saw, exactly like the
//! paper's Q3.4, where 4 subgroups go to PIM with 0 seen in the sample.

pub mod calibration;
pub mod cost_model;
pub mod fitting;
pub mod host_gb;
pub mod pim_gb;
pub mod sampling;

use std::collections::HashSet;

use bbpim_db::plan::{PhysicalPlan, Query};
use bbpim_db::stats::{self, GroupedResult};
use bbpim_db::Relation;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;

use crate::agg_exec::{materialize_exprs, reads_per_value, AggInput};
use crate::error::CoreError;
use crate::layout::{AttrPlacement, RecordLayout};
use crate::loader::LoadedRelation;
use crate::modes::EngineMode;
use crate::planner::PageSet;
use cost_model::{GbParams, GroupByModel};
use pim_gb::PreparedAgg;

/// GROUP-BY execution summary (feeds Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByOutcome {
    /// Aggregated groups, one [`GroupedResult`] per physical aggregate
    /// of the plan (plan order).
    pub per_agg: Vec<GroupedResult>,
    /// Subgroups aggregated in PIM (`k`).
    pub k: usize,
    /// Total potential subgroups (`k_MAX`).
    pub kmax: usize,
    /// Subgroups seen in the sample.
    pub sampled: usize,
}

/// The `n` parameter (aggregation-value reads per crossbar) a query's
/// expression will have, without materialising anything.
///
/// # Errors
///
/// Propagates placement failures.
pub fn plan_n(
    layout: &RecordLayout,
    cfg: &bbpim_sim::config::SimConfig,
    expr: &bbpim_db::plan::AggExpr,
) -> Result<usize, CoreError> {
    use bbpim_db::plan::AggExpr;
    let range = match expr {
        AggExpr::Attr(a) => layout.placement(a)?.range,
        AggExpr::Mul(a, b) => {
            let pa = layout.placement(a)?;
            let pb = layout.placement(b)?;
            let scratch = layout.scratch(pa.partition);
            bbpim_sim::compiler::ColRange::new(scratch.lo, pa.range.width + pb.range.width)
        }
        AggExpr::Sub(a, b) => {
            let pa = layout.placement(a)?;
            let pb = layout.placement(b)?;
            let scratch = layout.scratch(pa.partition);
            bbpim_sim::compiler::ColRange::new(scratch.lo, pa.range.width.max(pb.range.width))
        }
    };
    Ok(reads_per_value(cfg.read_width_bits, range))
}

/// Execute the hybrid GROUP-BY over the planned pages for every
/// physical aggregate of `plan`. The filter must already have produced
/// the mask in partition 0 of those pages. `relation` serves as the
/// catalog for the potential-subgroup enumeration (`k_MAX`). An empty
/// plan returns the empty outcome without touching the module — the
/// planner proved no record matches.
///
/// # Errors
///
/// Propagates substrate failures; [`CoreError::NotCalibrated`] never
/// arises here (the caller passes a fitted model).
#[allow(clippy::too_many_arguments)]
pub fn run_group_by(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    pages: &PageSet,
    relation: &Relation,
    mode: EngineMode,
    query: &Query,
    plan: &PhysicalPlan,
    model: &GroupByModel,
    log: &mut RunLog,
) -> Result<GroupByOutcome, CoreError> {
    if pages.is_empty() {
        return Ok(GroupByOutcome {
            per_agg: vec![GroupedResult::new(); plan.aggs.len()],
            k: 0,
            kmax: 0,
            sampled: 0,
        });
    }
    let group_placements: Vec<(String, AttrPlacement)> = query
        .group_by
        .iter()
        .map(|g| Ok((g.clone(), layout.placement(g)?)))
        .collect::<Result<_, CoreError>>()?;

    // 1. Sample one candidate page, estimate subgroup sizes (shared by
    //    every aggregate).
    let estimate = sampling::sample_page(module, layout, loaded, pages, &group_placements, log)?;

    // 2. Candidate ordering: sampled keys by size, then unseen potential
    //    keys from the catalog.
    let domains = stats::group_domains(query, relation)?;
    let kmax: usize = domains.iter().fold(1usize, |acc, d| acc.saturating_mul(d.len().max(1)));
    let mut candidates: Vec<Vec<u64>> = estimate.groups.iter().map(|(k, _)| k.clone()).collect();
    let sampled_set: HashSet<Vec<u64>> = candidates.iter().cloned().collect();
    for key in cross_product(&domains) {
        if !sampled_set.contains(&key) {
            candidates.push(key);
        }
    }
    // The catalog may enumerate fewer combinations than the sample saw
    // keys (never in practice); clamp kmax to the candidate count.
    let kmax = kmax.max(candidates.len().min(kmax)).min(candidates.len());

    // 3. Decide k (Eq. 3) once for the whole SELECT list: the host-side
    //    cost reads every operand (s covers them all); the PIM-side cost
    //    model is driven by the widest aggregate's read count.
    let cfg = module.config().clone();
    let agg_attrs: Vec<&str> = plan.aggs.iter().flat_map(|a| a.attrs()).collect();
    let s = layout.reads_per_record(query.group_by.iter().map(String::as_str).chain(agg_attrs))?;
    let n = plan
        .aggs
        .iter()
        .filter_map(|a| a.expr.as_ref())
        .map(|e| plan_n(layout, &cfg, e))
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .max()
        .unwrap_or(1);
    // Both gb paths touch only the planned candidate pages, so the cost
    // model's page count `M` is the plan's, not the whole relation's.
    let params = GbParams { m: pages.len(), n, s, kmax };
    let k = model.choose_k(&params, &|k| estimate.r_of_k(k));

    // 4. pim-gb for the k largest candidates: materialise every distinct
    //    expression once (stacked into scratch), then one shared group
    //    mask per key feeds all reductions.
    let mut per_agg: Vec<GroupedResult> = vec![GroupedResult::new(); plan.aggs.len()];
    let mut skip: HashSet<Vec<u64>> = HashSet::new();
    if k > 0 {
        let exprs: Vec<&bbpim_db::plan::AggExpr> =
            plan.aggs.iter().filter_map(|a| a.expr.as_ref()).collect();
        let inputs: Vec<AggInput> = materialize_exprs(module, layout, loaded, pages, &exprs, log)?;
        let mut inputs_iter = inputs.into_iter();
        let prepared: Vec<PreparedAgg> = plan
            .aggs
            .iter()
            .map(|agg| match &agg.expr {
                None => PreparedAgg::Count,
                Some(_) => PreparedAgg::Reduce {
                    func: agg.func,
                    input: inputs_iter.next().expect("one input per expression"),
                },
            })
            .collect();
        // Scratch past every stacked value, in the mask partition.
        let mask_partition = prepared
            .iter()
            .find_map(|a| match a {
                PreparedAgg::Reduce { input, .. } => Some(input.partition),
                PreparedAgg::Count => None,
            })
            .unwrap_or(0);
        let mask_scratch = prepared
            .iter()
            .find_map(|a| match a {
                PreparedAgg::Reduce { input, .. } if input.partition == mask_partition => {
                    Some(input.scratch_left)
                }
                _ => None,
            })
            .unwrap_or_else(|| layout.scratch(mask_partition));
        let keys: Vec<Vec<u64>> = candidates[..k].to_vec();
        let entries = pim_gb::run_pim_gb(
            module,
            layout,
            loaded,
            pages,
            mode,
            &group_placements,
            &keys,
            &prepared,
            mask_scratch,
            log,
        )?;
        for e in entries {
            skip.insert(e.key.clone());
            if e.count > 0 {
                for (grouped, value) in per_agg.iter_mut().zip(&e.values) {
                    grouped.insert(e.key.clone(), *value);
                }
            }
        }
    }

    // 5. host-gb for the tail, all aggregates in one read pass.
    if k < kmax {
        let req = host_gb::HostGbRequest {
            group_placements: &group_placements,
            aggs: &plan.aggs,
            skip: &skip,
        };
        let tail = host_gb::run_host_gb(module, layout, loaded, pages, &req, log)?;
        for (grouped, tail_col) in per_agg.iter_mut().zip(tail) {
            grouped.extend(tail_col);
        }
    }

    Ok(GroupByOutcome { per_agg, k, kmax, sampled: estimate.seen() })
}

/// Cross product of per-attribute domains, deterministic order.
fn cross_product(domains: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let mut out: Vec<Vec<u64>> = vec![Vec::new()];
    for domain in domains {
        let mut next = Vec::with_capacity(out.len() * domain.len().max(1));
        for prefix in &out {
            for &v in domain {
                let mut key = prefix.clone();
                key.push(v);
                next.push(key);
            }
        }
        out = next;
    }
    if domains.is_empty() {
        Vec::new()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_exec::run_filter;
    use crate::groupby::calibration::{run_calibration, CalibrationConfig};
    use crate::layout::RecordLayout;
    use crate::loader::load_relation;
    use bbpim_db::plan::{AggExpr, AggFunc, Atom, ResolvedAtom, SelectItem};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_sim::SimConfig;

    fn run_test_filter(
        module: &mut PimModule,
        rel: &Relation,
        layout: &RecordLayout,
        loaded: &LoadedRelation,
        q: &Query,
        log: &mut RunLog,
    ) {
        let schema = rel.schema();
        let dnf: Vec<Vec<(ResolvedAtom, AttrPlacement)>> = q
            .resolve_filter(schema)
            .unwrap()
            .into_iter()
            .map(|conj| {
                conj.into_iter()
                    .map(|a| {
                        let name = &schema.attrs()[a.attr_index()].name;
                        let p = layout.placement(name).unwrap();
                        (a, p)
                    })
                    .collect()
            })
            .collect();
        let pages = PageSet::all(loaded.page_count());
        run_filter(module, layout, loaded, &dnf, &pages, log).unwrap();
    }

    fn setup(
        mode: EngineMode,
    ) -> (PimModule, Relation, RecordLayout, LoadedRelation, Query, GroupByModel) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_g", 4)]);
        let mut rel = Relation::new(schema);
        // Zipf-ish groups: group 0 huge, tail small.
        for i in 0..2000u64 {
            let g = match i % 10 {
                0..=5 => 0,
                6..=7 => 1,
                8 => 2,
                _ => 3 + (i % 5),
            };
            rel.push_row(&[(7 * i) % 251, g]).unwrap();
        }
        let q = Query::single(
            "t",
            vec![Atom::Lt { attr: "lo_v".into(), value: 240u64.into() }],
            vec!["d_g".into()],
            AggFunc::Sum,
            AggExpr::attr("lo_v"),
        );
        let layout = RecordLayout::build(rel.schema(), &cfg, mode, &[]).unwrap();
        let mut module = PimModule::new(cfg.clone());
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        let mut log = RunLog::new();
        run_test_filter(&mut module, &rel, &layout, &loaded, &q, &mut log);
        let (_, model) = run_calibration(&cfg, mode, &CalibrationConfig::tiny_for_tests()).unwrap();
        (module, rel, layout, loaded, q, model)
    }

    fn run(
        module: &mut PimModule,
        layout: &RecordLayout,
        loaded: &LoadedRelation,
        rel: &Relation,
        mode: EngineMode,
        q: &Query,
        model: &GroupByModel,
    ) -> GroupByOutcome {
        let plan = q.physical_plan().unwrap();
        let mut log = RunLog::new();
        run_group_by(
            module,
            layout,
            loaded,
            &PageSet::all(loaded.page_count()),
            rel,
            mode,
            q,
            &plan,
            model,
            &mut log,
        )
        .unwrap()
    }

    #[test]
    fn hybrid_group_by_matches_oracle_all_modes() {
        for mode in [EngineMode::OneXb, EngineMode::TwoXb, EngineMode::PimDb] {
            let (mut module, rel, layout, loaded, q, model) = setup(mode);
            let out = run(&mut module, &layout, &loaded, &rel, mode, &q, &model);
            let expected = stats::column(&stats::run_oracle(&q, &rel).unwrap(), 0);
            assert_eq!(out.per_agg.len(), 1);
            assert_eq!(out.per_agg[0], expected, "{mode:?} (k={})", out.k);
            assert!(out.kmax >= out.per_agg[0].len());
            assert!(out.k <= out.kmax);
        }
    }

    #[test]
    fn multi_aggregate_group_by_matches_oracle() {
        for mode in [EngineMode::OneXb, EngineMode::TwoXb] {
            let (mut module, rel, layout, loaded, base, model) = setup(mode);
            let q = Query {
                select: vec![
                    SelectItem::sum("total", AggExpr::attr("lo_v")),
                    SelectItem::count("n"),
                    SelectItem::avg("mean", AggExpr::attr("lo_v")),
                    SelectItem::max("hi", AggExpr::attr("lo_v")),
                ],
                ..base
            };
            let plan = q.physical_plan().unwrap();
            let mut log = RunLog::new();
            let out = run_group_by(
                &mut module,
                &layout,
                &loaded,
                &PageSet::all(loaded.page_count()),
                &rel,
                mode,
                &q,
                &plan,
                &model,
                &mut log,
            )
            .unwrap();
            let finalized = plan.finalize(&out.per_agg);
            let expected = stats::run_oracle(&q, &rel).unwrap();
            assert_eq!(finalized, expected, "{mode:?} (k={})", out.k);
        }
    }

    #[test]
    fn forced_all_pim_still_matches_oracle() {
        // A model with free PIM and absurdly expensive host forces k=kmax.
        use crate::groupby::cost_model::{HostGbModel, PimGbModel};
        use crate::groupby::fitting::{LinFit, SqrtFit};
        use std::collections::BTreeMap;
        let (mut module, rel, layout, loaded, q, _) = setup(EngineMode::OneXb);
        let mut per_s = BTreeMap::new();
        per_s.insert(2, SqrtFit { a: 1e12, b: 1e12, r2: 1.0 });
        let mut per_n = BTreeMap::new();
        per_n.insert(1, LinFit { slope: 0.0, intercept: 1.0, r2: 1.0 });
        let model = GroupByModel { host: HostGbModel::new(per_s), pim: PimGbModel::new(per_n) };
        let out = run(&mut module, &layout, &loaded, &rel, EngineMode::OneXb, &q, &model);
        assert_eq!(out.k, out.kmax, "everything must go to PIM");
        assert_eq!(out.per_agg[0], stats::column(&stats::run_oracle(&q, &rel).unwrap(), 0));
    }

    #[test]
    fn forced_all_host_still_matches_oracle() {
        use crate::groupby::cost_model::{HostGbModel, PimGbModel};
        use crate::groupby::fitting::{LinFit, SqrtFit};
        use std::collections::BTreeMap;
        let (mut module, rel, layout, loaded, q, _) = setup(EngineMode::OneXb);
        let mut per_s = BTreeMap::new();
        per_s.insert(2, SqrtFit { a: 1.0, b: 1.0, r2: 1.0 });
        let mut per_n = BTreeMap::new();
        per_n.insert(1, LinFit { slope: 0.0, intercept: 1e12, r2: 1.0 });
        let model = GroupByModel { host: HostGbModel::new(per_s), pim: PimGbModel::new(per_n) };
        let out = run(&mut module, &layout, &loaded, &rel, EngineMode::OneXb, &q, &model);
        assert_eq!(out.k, 0);
        assert_eq!(out.per_agg[0], stats::column(&stats::run_oracle(&q, &rel).unwrap(), 0));
    }

    #[test]
    fn cross_product_enumerates_in_order() {
        let d = vec![vec![1u64, 2], vec![10u64, 20]];
        let keys = cross_product(&d);
        assert_eq!(keys, vec![vec![1, 10], vec![1, 20], vec![2, 10], vec![2, 20]]);
        assert!(cross_product(&[]).is_empty());
    }

    #[test]
    fn empty_selection_yields_empty_groups() {
        let (mut module, rel, layout, loaded, mut q, model) = setup(EngineMode::OneXb);
        q.filter =
            bbpim_db::plan::Pred::all(vec![Atom::Lt { attr: "lo_v".into(), value: 0u64.into() }]);
        let mut log = RunLog::new();
        run_test_filter(&mut module, &rel, &layout, &loaded, &q, &mut log);
        let out = run(&mut module, &layout, &loaded, &rel, EngineMode::OneXb, &q, &model);
        assert!(out.per_agg[0].is_empty());
    }
}
