//! pim-gb: aggregate one subgroup entirely in PIM.
//!
//! For each assigned subgroup key, a bulk-bitwise program ANDs the
//! group-key equality with the saved query mask into the group-mask
//! column **once**; every physical aggregate of the SELECT list then
//! reduces its value under that shared mask. The latency is independent
//! of the subgroup's record count — the property the hybrid GROUP-BY
//! exploits for large subgroups — and extra aggregates cost extra
//! reductions, not extra mask programs.
//!
//! Under `two-xb` the group keys live in the dimension partition while
//! the aggregated values live in the fact partition, so *every
//! subgroup* pays a mask transfer through the host — once per subgroup,
//! shared by all aggregates (the worst-case-partitioning overhead of
//! Section V-A).

use bbpim_db::plan::{PhysFunc, ResolvedAtom};
use bbpim_sim::compiler::ColRange;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;

use crate::agg_exec::{aggregate_masked_counted, AggInput};
use crate::error::CoreError;
use crate::filter_exec::{
    build_mask_program_in, count_mask_bits, mask_bits, mask_transfer_phases, write_transfer_bits,
};
use crate::layout::{
    AttrPlacement, RecordLayout, GROUP_MASK_COL, MASK_COL, TRANSFER_COL, VALID_COL,
};
use crate::loader::LoadedRelation;
use crate::modes::EngineMode;
use crate::planner::PageSet;

/// One physical aggregate prepared for in-PIM GROUP BY.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreparedAgg {
    /// `COUNT` — read off the shared group mask (count register /
    /// popcount), no value input.
    Count,
    /// A value reduction over a materialised input.
    Reduce {
        /// The mergeable component.
        func: PhysFunc,
        /// The (possibly materialised) value columns.
        input: AggInput,
    },
}

/// One PIM-aggregated subgroup: key, per-aggregate values, matching
/// records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PimGbEntry {
    /// Group key (plan order).
    pub key: Vec<u64>,
    /// One value per prepared aggregate, in request order.
    pub values: Vec<u64>,
    /// Records that matched — produced by the aggregation pass's count
    /// register (SQL needs to distinguish an empty subgroup from a zero
    /// sum), charged as part of the same PIM request.
    pub count: u64,
}

/// Aggregate each `key` in PIM; returns one entry per key with every
/// prepared aggregate's value. The group mask is formed once per key
/// and shared across aggregates.
///
/// `mask_scratch` is the free scratch of the partition holding the
/// query/group masks (past any materialised expression values).
///
/// # Errors
///
/// Propagates compiler/simulator failures;
/// [`CoreError::Unsupported`] when group attributes or aggregate
/// inputs span partitions.
#[allow(clippy::too_many_arguments)] // engine plumbing: module + layout + log threading
pub fn run_pim_gb(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    pages: &PageSet,
    mode: EngineMode,
    group_placements: &[(String, AttrPlacement)],
    keys: &[Vec<u64>],
    aggs: &[PreparedAgg],
    mask_scratch: ColRange,
    log: &mut RunLog,
) -> Result<Vec<PimGbEntry>, CoreError> {
    // The partition holding the aggregated values (and the final group
    // mask). With no value reductions (pure COUNT) it is the fact
    // partition 0, where the query mask lives.
    let fact_partition = aggs
        .iter()
        .find_map(|a| match a {
            PreparedAgg::Reduce { input, .. } => Some(input.partition),
            PreparedAgg::Count => None,
        })
        .unwrap_or(0);
    if aggs.iter().any(
        |a| matches!(a, PreparedAgg::Reduce { input, .. } if input.partition != fact_partition),
    ) {
        return Err(CoreError::Unsupported("aggregate inputs spanning partitions".into()));
    }
    // The query mask only exists in partition 0 (run_filter's contract);
    // aggregating a value stored in another partition would AND the
    // group key with a column that never saw the fact-side predicates.
    if fact_partition != 0 {
        return Err(CoreError::Unsupported(
            "aggregating dimension-partition attributes (the query mask lives in the fact \
             partition)"
                .into(),
        ));
    }
    let key_partition = match group_placements.first() {
        Some((_, p)) => p.partition,
        None => fact_partition,
    };
    if group_placements.iter().any(|(_, p)| p.partition != key_partition) {
        return Err(CoreError::Unsupported("GROUP BY attributes spanning partitions".into()));
    }

    let fact_pages = pages.ids(loaded, fact_partition);
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let eq_atoms: Vec<(ResolvedAtom, ColRange)> = group_placements
            .iter()
            .zip(key)
            .map(|((_, p), v)| (ResolvedAtom::Eq { idx: 0, value: *v }, p.range))
            .collect();

        if key_partition == fact_partition {
            // Same crossbar: one program forms the group mask.
            let prog = build_mask_program_in(mask_scratch, &eq_atoms, &[MASK_COL], GROUP_MASK_COL)?;
            log.push(module.exec_program(&fact_pages, &prog)?);
        } else {
            // two-xb: key equality in the dimension partition…
            let key_pages = pages.ids(loaded, key_partition);
            let prog = build_mask_program_in(
                layout.scratch(key_partition),
                &eq_atoms,
                &[VALID_COL],
                GROUP_MASK_COL,
            )?;
            log.push(module.exec_program(&key_pages, &prog)?);
            // …travels through the host per subgroup (compressed wire
            // format when the policy allows)…
            let bits = mask_bits(module, loaded, pages, key_partition, GROUP_MASK_COL);
            for phase in mask_transfer_phases(module, loaded, pages, &bits) {
                log.push(phase);
            }
            write_transfer_bits(module, loaded, &bits, pages)?;
            // …and combines with the query mask in the fact partition.
            let prog = build_mask_program_in(
                mask_scratch,
                &[],
                &[MASK_COL, TRANSFER_COL],
                GROUP_MASK_COL,
            )?;
            log.push(module.exec_program(&fact_pages, &prog)?);
        }

        // One reduction per physical aggregate under the shared mask;
        // the count rides the first reduction's count register (a
        // COUNT-only plan reads the mask popcount lines instead).
        let mut values = vec![0u64; aggs.len()];
        let mut count: Option<u64> = None;
        for (i, agg) in aggs.iter().enumerate() {
            if let PreparedAgg::Reduce { func, input } = agg {
                let (value, c) = aggregate_masked_counted(
                    module,
                    layout,
                    loaded,
                    pages,
                    mode,
                    input,
                    GROUP_MASK_COL,
                    *func,
                    log,
                )?;
                values[i] = value;
                count.get_or_insert(c);
            }
        }
        let count = match count {
            Some(c) => c,
            None => {
                // Pure COUNT: the host reads the per-page count lines —
                // or, under module-side reduction, the module folds them
                // first and one finalised line crosses the channel.
                if module.policy().module_reduce {
                    log.push(
                        module.partial_combine_phase(fact_pages.len(), fact_pages.len() as u64),
                    );
                    log.push(module.host_read_phase(if fact_pages.is_empty() { 0 } else { 1 }));
                } else {
                    log.push(module.host_read_phase(fact_pages.len() as u64));
                }
                count_mask_bits(module, &fact_pages, GROUP_MASK_COL)
            }
        };
        for (i, agg) in aggs.iter().enumerate() {
            if matches!(agg, PreparedAgg::Count) {
                values[i] = count;
            }
        }
        out.push(PimGbEntry { key: key.clone(), values, count });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg_exec::{materialize_expr, materialize_exprs};
    use crate::filter_exec::run_filter;
    use crate::layout::RecordLayout;
    use crate::loader::load_relation;
    use bbpim_db::plan::{AggExpr, AggFunc, Atom, Query};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::stats;
    use bbpim_db::Relation;
    use bbpim_sim::SimConfig;

    fn setup(
        mode: EngineMode,
    ) -> (PimModule, Relation, RecordLayout, LoadedRelation, Query, AggInput, RunLog) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_g", 4)]);
        let mut rel = Relation::new(schema);
        for i in 0..700u64 {
            rel.push_row(&[(5 * i) % 241, i % 6]).unwrap();
        }
        let q = Query::single(
            "t",
            vec![Atom::Lt { attr: "lo_v".into(), value: 200u64.into() }],
            vec!["d_g".into()],
            AggFunc::Sum,
            AggExpr::attr("lo_v"),
        );
        let layout = RecordLayout::build(rel.schema(), &cfg, mode, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        let schema_ref = rel.schema();
        let dnf: Vec<Vec<_>> = q
            .resolve_filter(schema_ref)
            .unwrap()
            .into_iter()
            .map(|conj| {
                conj.into_iter()
                    .map(|a| {
                        let name = &schema_ref.attrs()[a.attr_index()].name;
                        (a.clone(), layout.placement(name).unwrap())
                    })
                    .collect()
            })
            .collect();
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        run_filter(&mut module, &layout, &loaded, &dnf, &pages, &mut log).unwrap();
        let expr = AggExpr::attr("lo_v");
        let input =
            materialize_expr(&mut module, &layout, &loaded, &pages, &expr, &mut log).unwrap();
        (module, rel, layout, loaded, q, input, log)
    }

    fn oracle(q: &Query, rel: &Relation) -> bbpim_db::stats::GroupedResult {
        stats::column(&stats::run_oracle(q, rel).unwrap(), 0)
    }

    fn sum_agg(input: AggInput) -> Vec<PreparedAgg> {
        vec![PreparedAgg::Reduce { func: PhysFunc::Sum, input }]
    }

    #[test]
    fn per_group_aggregates_match_oracle() {
        for mode in [EngineMode::OneXb, EngineMode::TwoXb, EngineMode::PimDb] {
            let (mut module, rel, layout, loaded, q, input, mut log) = setup(mode);
            let gp: Vec<_> =
                q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect();
            let keys: Vec<Vec<u64>> = (0..6u64).map(|g| vec![g]).collect();
            let scratch = input.scratch_left;
            let entries = run_pim_gb(
                &mut module,
                &layout,
                &loaded,
                &PageSet::all(loaded.page_count()),
                mode,
                &gp,
                &keys,
                &sum_agg(input),
                scratch,
                &mut log,
            )
            .unwrap();
            let expected = oracle(&q, &rel);
            for e in &entries {
                assert_eq!(Some(&e.values[0]), expected.get(&e.key), "{mode:?} key {:?}", e.key);
                assert!(e.count > 0);
            }
            assert_eq!(entries.len(), 6);
        }
    }

    #[test]
    fn multiple_aggregates_share_one_mask_per_key() {
        use bbpim_sim::timeline::PhaseKind;
        // sum + max + count over the same shared group mask
        let (mut module, rel, layout, loaded, q, input, _) = setup(EngineMode::OneXb);
        let gp: Vec<_> =
            q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect();
        let keys: Vec<Vec<u64>> = (0..6u64).map(|g| vec![g]).collect();
        let scratch = input.scratch_left;
        let aggs = vec![
            PreparedAgg::Reduce { func: PhysFunc::Sum, input },
            PreparedAgg::Reduce { func: PhysFunc::Max, input },
            PreparedAgg::Count,
        ];
        let mut log = RunLog::new();
        let entries = run_pim_gb(
            &mut module,
            &layout,
            &loaded,
            &PageSet::all(loaded.page_count()),
            EngineMode::OneXb,
            &gp,
            &keys,
            &aggs,
            scratch,
            &mut log,
        )
        .unwrap();
        let mut q_sum = q.clone();
        q_sum.select[0].func = AggFunc::Sum;
        let mut q_max = q.clone();
        q_max.select[0].func = AggFunc::Max;
        let sums = oracle(&q_sum, &rel);
        let maxs = oracle(&q_max, &rel);
        for e in &entries {
            assert_eq!(Some(&e.values[0]), sums.get(&e.key), "sum key {:?}", e.key);
            assert_eq!(Some(&e.values[1]), maxs.get(&e.key), "max key {:?}", e.key);
            assert_eq!(e.values[2], e.count, "count column key {:?}", e.key);
        }
        // the shared-mask contract: exactly one mask program (PimLogic)
        // and two reductions (PimAggCircuit) per key — three aggregates
        // never cost three masks.
        let masks = log.phases().iter().filter(|p| p.kind == PhaseKind::PimLogic).count();
        let reductions = log.phases().iter().filter(|p| p.kind == PhaseKind::PimAggCircuit).count();
        assert_eq!(masks, keys.len());
        assert_eq!(reductions, keys.len() * 2);
    }

    #[test]
    fn count_only_group_by_reads_popcount() {
        let (mut module, rel, layout, loaded, q, _input, _) = setup(EngineMode::OneXb);
        let gp: Vec<_> =
            q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect();
        let keys: Vec<Vec<u64>> = (0..6u64).map(|g| vec![g]).collect();
        let mut log = RunLog::new();
        let entries = run_pim_gb(
            &mut module,
            &layout,
            &loaded,
            &PageSet::all(loaded.page_count()),
            EngineMode::OneXb,
            &gp,
            &keys,
            &[PreparedAgg::Count],
            layout.scratch(0),
            &mut log,
        )
        .unwrap();
        // oracle counts per group under the filter
        let mut expected = std::collections::BTreeMap::new();
        for row in 0..rel.len() {
            if rel.value(row, 0) < 200 {
                *expected.entry(vec![rel.value(row, 1)]).or_insert(0u64) += 1;
            }
        }
        for e in &entries {
            assert_eq!(Some(&e.count), expected.get(&e.key), "key {:?}", e.key);
            assert_eq!(e.values, vec![e.count]);
        }
    }

    #[test]
    fn stacked_expressions_aggregate_together() {
        // materialize lo_v (in place) and lo_v*d_g (scratch) and reduce
        // both under shared masks
        let (mut module, rel, layout, loaded, q, _input, _) = setup(EngineMode::OneXb);
        let attr = AggExpr::attr("lo_v");
        let prod = AggExpr::mul("lo_v", "d_g");
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        let inputs =
            materialize_exprs(&mut module, &layout, &loaded, &pages, &[&attr, &prod], &mut log)
                .unwrap();
        let gp: Vec<_> =
            q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect();
        let keys: Vec<Vec<u64>> = (0..6u64).map(|g| vec![g]).collect();
        let scratch = inputs[1].scratch_left;
        let aggs = vec![
            PreparedAgg::Reduce { func: PhysFunc::Sum, input: inputs[0] },
            PreparedAgg::Reduce { func: PhysFunc::Sum, input: inputs[1] },
        ];
        let entries = run_pim_gb(
            &mut module,
            &layout,
            &loaded,
            &pages,
            EngineMode::OneXb,
            &gp,
            &keys,
            &aggs,
            scratch,
            &mut log,
        )
        .unwrap();
        // oracle both columns
        let mut sum_v = std::collections::BTreeMap::new();
        let mut sum_p = std::collections::BTreeMap::new();
        for row in 0..rel.len() {
            let (v, g) = (rel.value(row, 0), rel.value(row, 1));
            if v < 200 {
                *sum_v.entry(vec![g]).or_insert(0u64) += v;
                *sum_p.entry(vec![g]).or_insert(0u64) += v * g;
            }
        }
        for e in &entries {
            assert_eq!(Some(&e.values[0]), sum_v.get(&e.key), "v key {:?}", e.key);
            assert_eq!(Some(&e.values[1]), sum_p.get(&e.key), "p key {:?}", e.key);
        }
    }

    #[test]
    fn empty_subgroup_reports_zero_count() {
        let (mut module, _rel, layout, loaded, q, input, mut log) = setup(EngineMode::OneXb);
        let gp: Vec<_> =
            q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect();
        // group 15 never occurs (d_g < 6)
        let scratch = input.scratch_left;
        let entries = run_pim_gb(
            &mut module,
            &layout,
            &loaded,
            &PageSet::all(loaded.page_count()),
            EngineMode::OneXb,
            &gp,
            &[vec![15u64]],
            &sum_agg(input),
            scratch,
            &mut log,
        )
        .unwrap();
        assert_eq!(entries[0].count, 0);
        assert_eq!(entries[0].values, vec![0]);
    }

    #[test]
    fn two_xb_charges_transfer_per_subgroup() {
        use bbpim_sim::timeline::PhaseKind;
        let (mut m1, _r1, l1, ld1, q1, i1, _) = setup(EngineMode::OneXb);
        let (mut m2, _r2, l2, ld2, q2, i2, _) = setup(EngineMode::TwoXb);
        let gp1: Vec<_> =
            q1.group_by.iter().map(|g| (g.clone(), l1.placement(g).unwrap())).collect();
        let gp2: Vec<_> =
            q2.group_by.iter().map(|g| (g.clone(), l2.placement(g).unwrap())).collect();
        let keys: Vec<Vec<u64>> = (0..4u64).map(|g| vec![g]).collect();
        let mut log1 = RunLog::new();
        let mut log2 = RunLog::new();
        let all1 = PageSet::all(ld1.page_count());
        let all2 = PageSet::all(ld2.page_count());
        let s1 = i1.scratch_left;
        let s2 = i2.scratch_left;
        run_pim_gb(
            &mut m1,
            &l1,
            &ld1,
            &all1,
            EngineMode::OneXb,
            &gp1,
            &keys,
            &sum_agg(i1),
            s1,
            &mut log1,
        )
        .unwrap();
        run_pim_gb(
            &mut m2,
            &l2,
            &ld2,
            &all2,
            EngineMode::TwoXb,
            &gp2,
            &keys,
            &sum_agg(i2),
            s2,
            &mut log2,
        )
        .unwrap();
        assert_eq!(log1.time_in(PhaseKind::HostWrite), 0.0);
        assert!(log2.time_in(PhaseKind::HostWrite) > 0.0);
        assert!(log2.total_time_ns() > log1.total_time_ns());
    }

    #[test]
    fn latency_independent_of_group_size() {
        // Two keys with the same bit pattern cost (equal popcount) but
        // wildly different group sizes: key 1 is populated (d_g ∈ 0..6),
        // key 8 is empty. The equality program's cycle count depends on
        // the key's set bits, so popcount must match for the comparison.
        let (mut module, _rel, layout, loaded, q, input, _) = setup(EngineMode::OneXb);
        let gp: Vec<_> =
            q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect();
        let mut log_a = RunLog::new();
        let mut log_b = RunLog::new();
        let scratch = input.scratch_left;
        let a = run_pim_gb(
            &mut module,
            &layout,
            &loaded,
            &PageSet::all(loaded.page_count()),
            EngineMode::OneXb,
            &gp,
            &[vec![1u64]],
            &sum_agg(input),
            scratch,
            &mut log_a,
        )
        .unwrap();
        let b = run_pim_gb(
            &mut module,
            &layout,
            &loaded,
            &PageSet::all(loaded.page_count()),
            EngineMode::OneXb,
            &gp,
            &[vec![8u64]],
            &sum_agg(input),
            scratch,
            &mut log_b,
        )
        .unwrap();
        assert!(a[0].count > 0);
        assert_eq!(b[0].count, 0);
        assert!((log_a.total_time_ns() - log_b.total_time_ns()).abs() < 1e-6);
    }
}
