//! pim-gb: aggregate one subgroup entirely in PIM.
//!
//! For each assigned subgroup key, a bulk-bitwise program ANDs the
//! group-key equality with the saved query mask into the group-mask
//! column, then the aggregation path of the current mode reduces the
//! value under that mask. The latency is independent of the subgroup's
//! record count — the property the hybrid GROUP-BY exploits for large
//! subgroups.
//!
//! Under `two-xb` the group keys live in the dimension partition while
//! the aggregated value lives in the fact partition, so *every subgroup*
//! pays a mask transfer through the host — the worst-case-partitioning
//! overhead of Section V-A.

use bbpim_db::plan::{AggFunc, ResolvedAtom};
use bbpim_sim::compiler::ColRange;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;

use crate::agg_exec::{aggregate_masked_counted, AggInput};
use crate::error::CoreError;
use crate::filter_exec::{build_mask_program_in, mask_bits, mask_read_lines, write_transfer_bits};
use crate::layout::{
    AttrPlacement, RecordLayout, GROUP_MASK_COL, MASK_COL, TRANSFER_COL, VALID_COL,
};
use crate::loader::LoadedRelation;
use crate::modes::EngineMode;
use crate::planner::PageSet;

/// One PIM-aggregated subgroup: key, aggregate, matching records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PimGbEntry {
    /// Group key (plan order).
    pub key: Vec<u64>,
    /// Aggregate value.
    pub value: u64,
    /// Records that matched — produced by the aggregation pass's count
    /// register (SQL needs to distinguish an empty subgroup from a zero
    /// sum), charged as part of the same PIM request.
    pub count: u64,
}

/// Aggregate each `key` in PIM; returns one entry per key.
///
/// # Errors
///
/// Propagates compiler/simulator failures;
/// [`CoreError::Unsupported`] when group attributes span partitions.
#[allow(clippy::too_many_arguments)] // engine plumbing: module + layout + log threading
pub fn run_pim_gb(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    pages: &PageSet,
    mode: EngineMode,
    group_placements: &[(String, AttrPlacement)],
    keys: &[Vec<u64>],
    input: &AggInput,
    func: AggFunc,
    log: &mut RunLog,
) -> Result<Vec<PimGbEntry>, CoreError> {
    let key_partition = match group_placements.first() {
        Some((_, p)) => p.partition,
        None => input.partition,
    };
    if group_placements.iter().any(|(_, p)| p.partition != key_partition) {
        return Err(CoreError::Unsupported("GROUP BY attributes spanning partitions".into()));
    }

    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let eq_atoms: Vec<(ResolvedAtom, ColRange)> = group_placements
            .iter()
            .zip(key)
            .map(|((_, p), v)| (ResolvedAtom::Eq { idx: 0, value: *v }, p.range))
            .collect();

        if key_partition == input.partition {
            // Same crossbar: one program forms the group mask.
            let prog =
                build_mask_program_in(input.scratch_left, &eq_atoms, &[MASK_COL], GROUP_MASK_COL)?;
            log.push(module.exec_program(&pages.ids(loaded, input.partition), &prog)?);
        } else {
            // two-xb: key equality in the dimension partition…
            let key_pages = pages.ids(loaded, key_partition);
            let prog = build_mask_program_in(
                layout.scratch(key_partition),
                &eq_atoms,
                &[VALID_COL],
                GROUP_MASK_COL,
            )?;
            log.push(module.exec_program(&key_pages, &prog)?);
            // …travels through the host per subgroup…
            let bits = mask_bits(module, loaded, pages, key_partition, GROUP_MASK_COL);
            let lines = mask_read_lines(module, &key_pages);
            log.push(module.host_read_phase(lines));
            write_transfer_bits(module, loaded, &bits, pages)?;
            log.push(module.host_write_phase(lines));
            // …and combines with the query mask in the fact partition.
            let prog = build_mask_program_in(
                input.scratch_left,
                &[],
                &[MASK_COL, TRANSFER_COL],
                GROUP_MASK_COL,
            )?;
            log.push(module.exec_program(&pages.ids(loaded, input.partition), &prog)?);
        }

        let (value, count) = aggregate_masked_counted(
            module,
            layout,
            loaded,
            pages,
            mode,
            input,
            GROUP_MASK_COL,
            func,
            log,
        )?;
        out.push(PimGbEntry { key: key.clone(), value, count });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg_exec::materialize_expr;
    use crate::filter_exec::run_filter;
    use crate::layout::RecordLayout;
    use crate::loader::load_relation;
    use bbpim_db::plan::{AggExpr, Atom, Query};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::stats;
    use bbpim_db::Relation;
    use bbpim_sim::SimConfig;

    fn setup(
        mode: EngineMode,
    ) -> (PimModule, Relation, RecordLayout, LoadedRelation, Query, AggInput, RunLog) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_g", 4)]);
        let mut rel = Relation::new(schema);
        for i in 0..700u64 {
            rel.push_row(&[(5 * i) % 241, i % 6]).unwrap();
        }
        let q = Query {
            id: "t".into(),
            filter: vec![Atom::Lt { attr: "lo_v".into(), value: 200u64.into() }],
            group_by: vec!["d_g".into()],
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::Attr("lo_v".into()),
        };
        let layout = RecordLayout::build(rel.schema(), &cfg, mode, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        let atoms: Vec<_> = q
            .resolve_filter(rel.schema())
            .unwrap()
            .into_iter()
            .zip(q.filter.iter())
            .map(|(a, raw)| (a, layout.placement(raw.attr()).unwrap()))
            .collect();
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        run_filter(&mut module, &layout, &loaded, &atoms, &pages, &mut log).unwrap();
        let input =
            materialize_expr(&mut module, &layout, &loaded, &pages, &q.agg_expr, &mut log).unwrap();
        (module, rel, layout, loaded, q, input, log)
    }

    fn oracle(q: &Query, rel: &Relation) -> bbpim_db::stats::GroupedResult {
        stats::run_oracle(q, rel).unwrap()
    }

    #[test]
    fn per_group_aggregates_match_oracle() {
        for mode in [EngineMode::OneXb, EngineMode::TwoXb, EngineMode::PimDb] {
            let (mut module, rel, layout, loaded, q, input, mut log) = setup(mode);
            let gp: Vec<_> =
                q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect();
            let keys: Vec<Vec<u64>> = (0..6u64).map(|g| vec![g]).collect();
            let entries = run_pim_gb(
                &mut module,
                &layout,
                &loaded,
                &PageSet::all(loaded.page_count()),
                mode,
                &gp,
                &keys,
                &input,
                q.agg_func,
                &mut log,
            )
            .unwrap();
            let expected = oracle(&q, &rel);
            for e in &entries {
                assert_eq!(Some(&e.value), expected.get(&e.key), "{mode:?} key {:?}", e.key);
                assert!(e.count > 0);
            }
            assert_eq!(entries.len(), 6);
        }
    }

    #[test]
    fn empty_subgroup_reports_zero_count() {
        let (mut module, _rel, layout, loaded, q, input, mut log) = setup(EngineMode::OneXb);
        let gp: Vec<_> =
            q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect();
        // group 15 never occurs (d_g < 6)
        let entries = run_pim_gb(
            &mut module,
            &layout,
            &loaded,
            &PageSet::all(loaded.page_count()),
            EngineMode::OneXb,
            &gp,
            &[vec![15u64]],
            &input,
            q.agg_func,
            &mut log,
        )
        .unwrap();
        assert_eq!(entries[0].count, 0);
        assert_eq!(entries[0].value, 0);
    }

    #[test]
    fn two_xb_charges_transfer_per_subgroup() {
        use bbpim_sim::timeline::PhaseKind;
        let (mut m1, _r1, l1, ld1, q1, i1, _) = setup(EngineMode::OneXb);
        let (mut m2, _r2, l2, ld2, q2, i2, _) = setup(EngineMode::TwoXb);
        let gp1: Vec<_> =
            q1.group_by.iter().map(|g| (g.clone(), l1.placement(g).unwrap())).collect();
        let gp2: Vec<_> =
            q2.group_by.iter().map(|g| (g.clone(), l2.placement(g).unwrap())).collect();
        let keys: Vec<Vec<u64>> = (0..4u64).map(|g| vec![g]).collect();
        let mut log1 = RunLog::new();
        let mut log2 = RunLog::new();
        let all1 = PageSet::all(ld1.page_count());
        let all2 = PageSet::all(ld2.page_count());
        run_pim_gb(
            &mut m1,
            &l1,
            &ld1,
            &all1,
            EngineMode::OneXb,
            &gp1,
            &keys,
            &i1,
            q1.agg_func,
            &mut log1,
        )
        .unwrap();
        run_pim_gb(
            &mut m2,
            &l2,
            &ld2,
            &all2,
            EngineMode::TwoXb,
            &gp2,
            &keys,
            &i2,
            q2.agg_func,
            &mut log2,
        )
        .unwrap();
        assert_eq!(log1.time_in(PhaseKind::HostWrite), 0.0);
        assert!(log2.time_in(PhaseKind::HostWrite) > 0.0);
        assert!(log2.total_time_ns() > log1.total_time_ns());
    }

    #[test]
    fn latency_independent_of_group_size() {
        // Two keys with the same bit pattern cost (equal popcount) but
        // wildly different group sizes: key 1 is populated (d_g ∈ 0..6),
        // key 8 is empty. The equality program's cycle count depends on
        // the key's set bits, so popcount must match for the comparison.
        let (mut module, _rel, layout, loaded, q, input, _) = setup(EngineMode::OneXb);
        let gp: Vec<_> =
            q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect();
        let mut log_a = RunLog::new();
        let mut log_b = RunLog::new();
        let a = run_pim_gb(
            &mut module,
            &layout,
            &loaded,
            &PageSet::all(loaded.page_count()),
            EngineMode::OneXb,
            &gp,
            &[vec![1u64]],
            &input,
            q.agg_func,
            &mut log_a,
        )
        .unwrap();
        let b = run_pim_gb(
            &mut module,
            &layout,
            &loaded,
            &PageSet::all(loaded.page_count()),
            EngineMode::OneXb,
            &gp,
            &[vec![8u64]],
            &input,
            q.agg_func,
            &mut log_b,
        )
        .unwrap();
        assert!(a[0].count > 0);
        assert_eq!(b[0].count, 0);
        assert!((log_a.total_time_ns() - log_b.total_time_ns()).abs() < 1e-6);
    }
}
