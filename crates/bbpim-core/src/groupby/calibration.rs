//! Empirical latency calibration — the measurements behind Fig. 4 and
//! the lookup tables of Eqs. (1)–(2).
//!
//! The paper measures host-gb and pim-gb latencies on synthetic
//! databases, then fits `∂T_host-gb/∂M` to `a(s)·√r + b(s)` and
//! `T_pim-gb` to a line in `M` per `n`. [`run_calibration`] reproduces
//! that procedure against the simulator: host-gb points are produced by
//! the same line-counting/timing model the real host-gb path uses;
//! pim-gb points run the real pim-gb pipeline (group-mask program,
//! aggregation, result read) on a synthetic relation.

use std::collections::BTreeMap;

use bbpim_db::plan::{AggExpr, PhysFunc};
use bbpim_db::schema::{Attribute, Schema};
use bbpim_db::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::agg_exec::materialize_expr;
use crate::error::CoreError;
use crate::filter_exec::run_filter;
use crate::groupby::cost_model::{GroupByModel, HostGbModel, PimGbModel};
use crate::groupby::fitting::{fit_linear, fit_sqrt};
use crate::groupby::pim_gb::run_pim_gb;
use crate::layout::RecordLayout;
use crate::loader::load_relation;
use crate::modes::EngineMode;
use bbpim_sim::config::SimConfig;
use bbpim_sim::hostmem;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;

/// Calibration sweep parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Page counts to sweep (the paper sweeps to ~500; a handful
    /// suffices because the response is linear in M by construction).
    pub ms: Vec<usize>,
    /// Reads-per-record values for host-gb (`s`).
    pub s_values: Vec<usize>,
    /// Selection densities for host-gb (`r`).
    pub r_values: Vec<f64>,
    /// Reads-per-value for pim-gb (`n`).
    pub n_values: Vec<usize>,
    /// Seed for synthetic masks/data.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            ms: vec![1, 2, 4, 8],
            s_values: vec![2, 4, 6, 8],
            // The small-r tail matters: low-selectivity queries (SSB Q2.3,
            // Q3.3…) live at r ≈ 1e-4..1e-2, and the k decision hinges on
            // the fitted b(s) there.
            r_values: vec![0.001, 0.005, 0.01, 0.05, 0.2, 0.4, 0.8],
            n_values: vec![1, 2, 3, 4],
            seed: 0xCA11B,
        }
    }
}

impl CalibrationConfig {
    /// A minimal sweep for unit tests.
    pub fn tiny_for_tests() -> Self {
        CalibrationConfig {
            ms: vec![1, 2],
            s_values: vec![2, 4],
            r_values: vec![0.05, 0.4],
            n_values: vec![1, 2],
            seed: 3,
        }
    }
}

/// One host-gb measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostPoint {
    /// Pages.
    pub m: usize,
    /// Reads per record.
    pub s: usize,
    /// Target selection density.
    pub r: f64,
    /// Measured (simulated) latency, nanoseconds.
    pub time_ns: f64,
}

/// One pim-gb measurement (single subgroup).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PimPoint {
    /// Pages.
    pub m: usize,
    /// Reads per value.
    pub n: usize,
    /// Measured (simulated) latency, nanoseconds.
    pub time_ns: f64,
}

/// All measurements of one calibration run (the data behind Fig. 4).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CalibrationData {
    /// Host-gb sweep.
    pub host_points: Vec<HostPoint>,
    /// Pim-gb sweep.
    pub pim_points: Vec<PimPoint>,
}

/// Simulated host-gb latency for a synthetic selection: the same
/// streaming mask read + scattered unique-line record read +
/// host-aggregation model the real host-gb path charges.
pub fn host_gb_time_ns(cfg: &SimConfig, m: usize, s: usize, mask: &[bool]) -> f64 {
    let rows = cfg.crossbar_rows;
    let per_row = cfg.crossbars_per_page();
    let mask_lines = (m * rows) as u64;
    // Unique data lines: a row-group of `per_row` records shares each of
    // its `s` chunk lines.
    let mut data_lines = 0u64;
    for group in mask.chunks(per_row) {
        if group.iter().any(|b| *b) {
            data_lines += s as u64;
        }
    }
    let selected = mask.iter().filter(|b| **b).count() as f64;
    hostmem::read_time_ns(cfg, mask_lines)
        + hostmem::scattered_read_time_ns(cfg, data_lines)
        + selected * cfg.host.host_agg_ns_per_record / cfg.host.threads as f64
}

/// Run the full calibration for a mode; returns the raw measurements
/// and the fitted [`GroupByModel`].
///
/// # Errors
///
/// Propagates simulator/loader failures.
pub fn run_calibration(
    cfg: &SimConfig,
    mode: EngineMode,
    cal: &CalibrationConfig,
) -> Result<(CalibrationData, GroupByModel), CoreError> {
    if cal.ms.len() < 2
        || cal.r_values.len() < 2
        || cal.s_values.is_empty()
        || cal.n_values.is_empty()
    {
        return Err(CoreError::Unsupported(
            "calibration needs at least two page counts, two r values, and non-empty s/n grids"
                .into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(cal.seed);
    let mut data = CalibrationData::default();

    // ---- host-gb sweep (Fig. 4a) --------------------------------------
    let records_per_page = cfg.records_per_page();
    for &s in &cal.s_values {
        for &r in &cal.r_values {
            for &m in &cal.ms {
                let mask: Vec<bool> =
                    (0..m * records_per_page).map(|_| rng.gen::<f64>() < r).collect();
                let time_ns = host_gb_time_ns(cfg, m, s, &mask);
                data.host_points.push(HostPoint { m, s, r, time_ns });
            }
        }
    }

    // ---- pim-gb sweep (Fig. 4c): real pipeline on synthetic data ------
    for &n in &cal.n_values {
        let value_bits = (16 * n).min(64);
        for &m in &cal.ms {
            let time_ns = measure_pim_point(cfg, mode, m, value_bits, &mut rng)?;
            data.pim_points.push(PimPoint { m, n, time_ns });
        }
    }

    // ---- fits (Fig. 4b / Eq. 1, Eq. 2) ---------------------------------
    let mut per_s = BTreeMap::new();
    for &s in &cal.s_values {
        // slope dT/dM per r, then a(s)√r + b(s)
        let mut slope_points = Vec::new();
        for &r in &cal.r_values {
            let pts: Vec<(f64, f64)> = data
                .host_points
                .iter()
                .filter(|p| p.s == s && (p.r - r).abs() < 1e-12)
                .map(|p| (p.m as f64, p.time_ns))
                .collect();
            let slope = fit_linear(&pts).slope;
            slope_points.push((r, slope));
        }
        per_s.insert(s, fit_sqrt(&slope_points));
    }
    let mut per_n = BTreeMap::new();
    for &n in &cal.n_values {
        let pts: Vec<(f64, f64)> =
            data.pim_points.iter().filter(|p| p.n == n).map(|p| (p.m as f64, p.time_ns)).collect();
        per_n.insert(n, fit_linear(&pts));
    }

    let model = GroupByModel { host: HostGbModel::new(per_s), pim: PimGbModel::new(per_n) };
    Ok((data, model))
}

/// Measure one pim-gb point: build a synthetic relation of `m` pages,
/// run filter + one-subgroup pim-gb, return the simulated time.
fn measure_pim_point(
    cfg: &SimConfig,
    mode: EngineMode,
    m: usize,
    value_bits: usize,
    rng: &mut StdRng,
) -> Result<f64, CoreError> {
    let schema = Schema::new(
        "cal",
        vec![Attribute::numeric("lo_value", value_bits), Attribute::numeric("d_key", 10)],
    );
    let records = m * cfg.records_per_page();
    let mut rel = Relation::with_capacity(schema, records);
    let value_mask = if value_bits >= 64 { u64::MAX } else { (1u64 << value_bits) - 1 };
    for _ in 0..records {
        rel.push_row(&[rng.gen::<u64>() & value_mask & 0xFFFF, rng.gen_range(0..1000u64)])?;
    }
    let layout = RecordLayout::build(rel.schema(), cfg, mode, &[])?;
    let mut module = PimModule::new(cfg.clone());
    let loaded = load_relation(&mut module, &rel, &layout)?;

    // Query mask: everything (filter cost is not part of T_pim-gb).
    // Calibration is always exhaustive — the fitted tables describe
    // per-page costs, which the planner then applies to candidate pages.
    let pages = crate::planner::PageSet::all(loaded.page_count());
    let mut pre = RunLog::new();
    // One empty conjunction = the TRUE filter (select everything).
    run_filter(&mut module, &layout, &loaded, &[Vec::new()], &pages, &mut pre)?;
    let input = materialize_expr(
        &mut module,
        &layout,
        &loaded,
        &pages,
        &AggExpr::Attr("lo_value".into()),
        &mut pre,
    )?;
    let gp = vec![("d_key".to_string(), layout.placement("d_key")?)];

    let mut log = RunLog::new();
    let scratch = input.scratch_left;
    run_pim_gb(
        &mut module,
        &layout,
        &loaded,
        &pages,
        mode,
        &gp,
        &[vec![42u64]],
        &[crate::groupby::pim_gb::PreparedAgg::Reduce { func: PhysFunc::Sum, input }],
        scratch,
        &mut log,
    )?;
    Ok(log.total_time_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::small_for_tests()
    }

    #[test]
    fn calibration_produces_full_grids() {
        let cal = CalibrationConfig::tiny_for_tests();
        let (data, model) = run_calibration(&cfg(), EngineMode::OneXb, &cal).unwrap();
        assert_eq!(data.host_points.len(), cal.ms.len() * cal.s_values.len() * cal.r_values.len());
        assert_eq!(data.pim_points.len(), cal.ms.len() * cal.n_values.len());
        assert_eq!(model.host.s_values().count(), cal.s_values.len());
        assert_eq!(model.pim.n_values().count(), cal.n_values.len());
    }

    #[test]
    fn host_time_increases_with_m_s_r() {
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(1);
        let mk_mask = |m: usize, r: f64, rng: &mut StdRng| -> Vec<bool> {
            (0..m * c.records_per_page()).map(|_| rng.gen::<f64>() < r).collect()
        };
        let base = host_gb_time_ns(&c, 2, 2, &mk_mask(2, 0.2, &mut rng));
        let more_m = host_gb_time_ns(&c, 4, 2, &mk_mask(4, 0.2, &mut rng));
        let more_s = host_gb_time_ns(&c, 2, 6, &mk_mask(2, 0.2, &mut rng));
        let more_r = host_gb_time_ns(&c, 2, 2, &mk_mask(2, 0.9, &mut rng));
        assert!(more_m > base);
        assert!(more_s > base);
        assert!(more_r > base);
    }

    #[test]
    fn pim_fit_is_tightly_linear_in_m() {
        let cal = CalibrationConfig {
            ms: vec![1, 2, 3],
            s_values: vec![2],
            r_values: vec![0.1, 0.4],
            n_values: vec![1],
            seed: 5,
        };
        let (_, model) = run_calibration(&cfg(), EngineMode::OneXb, &cal).unwrap();
        let fit = model.pim.fit_for(1).unwrap();
        assert!(fit.r2 > 0.99, "R² {}", fit.r2);
        assert!(fit.slope >= 0.0);
    }

    #[test]
    fn pimdb_pim_gb_slower_than_one_xb() {
        let cal = CalibrationConfig::tiny_for_tests();
        let (_, one) = run_calibration(&cfg(), EngineMode::OneXb, &cal).unwrap();
        let (_, pimdb) = run_calibration(&cfg(), EngineMode::PimDb, &cal).unwrap();
        let m = 2;
        assert!(
            pimdb.pim.time_ns(m, 1) > one.pim.time_ns(m, 1),
            "bitwise reduction must dominate the circuit"
        );
    }

    #[test]
    fn host_model_fits_sqrt_shape_reasonably() {
        let cal = CalibrationConfig {
            ms: vec![1, 2, 4],
            s_values: vec![2],
            r_values: vec![0.01, 0.05, 0.1, 0.3, 0.6, 0.9],
            n_values: vec![1],
            seed: 7,
        };
        let (_, model) = run_calibration(&cfg(), EngineMode::OneXb, &cal).unwrap();
        let fit = model.host.fit_for(2).unwrap();
        // the shape is concave-increasing; the √r fit should capture most
        // of the variance even though our line-count law is not exactly √r
        assert!(fit.r2 > 0.6, "R² {}", fit.r2);
        assert!(model.host.time_ns(4, 2, 0.4) > model.host.time_ns(4, 2, 0.01));
    }
}
