//! One-page sampling for subgroup-size estimation (Section IV).
//!
//! After the filter, the host reads the mask and the group-key chunks of
//! *one* 2 MB page (32 K records in the paper's geometry) and scales the
//! per-key counts up to the whole relation. The estimate drives both
//! `r(k)` in Eq. (3) and the ordering of subgroups by size.

use std::collections::HashMap;

use bbpim_sim::hostmem::LineSet;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;

use crate::error::CoreError;
use crate::layout::{AttrPlacement, RecordLayout, MASK_COL};
use crate::loader::LoadedRelation;
use crate::planner::PageSet;

/// Subgroup-size estimate from one sampled page.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleEstimate {
    /// Records in the sample (≤ one page).
    pub sample_records: usize,
    /// Sampled records passing the filter.
    pub sample_selected: usize,
    /// Estimated selectivity of the query.
    pub est_selectivity: f64,
    /// Keys seen in the sample with their estimated *total* record
    /// counts, largest first (deterministic tie-break by key).
    pub groups: Vec<(Vec<u64>, f64)>,
    /// Estimated total selected records in the relation.
    pub est_selected_total: f64,
}

impl SampleEstimate {
    /// Estimated share of selected records belonging to the i-th
    /// largest sampled subgroup (0 for indices past the sample).
    pub fn share(&self, i: usize) -> f64 {
        if self.est_selected_total <= 0.0 {
            return 0.0;
        }
        self.groups.get(i).map(|(_, est)| est / self.est_selected_total).unwrap_or(0.0)
    }

    /// `r(k)` of Eq. (3): estimated ratio of records (to the whole
    /// relation) left for host-gb after the `k` largest subgroups go to
    /// PIM.
    pub fn r_of_k(&self, k: usize) -> f64 {
        let covered: f64 = (0..k).map(|i| self.share(i)).sum();
        (self.est_selectivity * (1.0 - covered)).max(0.0)
    }

    /// Subgroups observed in the sample (Table II's "subgroups in
    /// sample").
    pub fn seen(&self) -> usize {
        self.groups.len()
    }
}

/// Read one candidate page's mask and group keys, estimate subgroup
/// sizes. The sampled page is the plan's first candidate — sampling a
/// pruned page would see only mask bits the filter never wrote.
///
/// Charges the mask lines (one per row) and the key-chunk lines of the
/// selected sampled records to `log`.
///
/// # Errors
///
/// Propagates simulator failures; the plan must be non-empty.
pub fn sample_page(
    module: &mut PimModule,
    _layout: &RecordLayout,
    loaded: &LoadedRelation,
    pages: &PageSet,
    group_placements: &[(String, AttrPlacement)],
    log: &mut RunLog,
) -> Result<SampleEstimate, CoreError> {
    let sample_idx = pages
        .first()
        .ok_or_else(|| CoreError::Unsupported("sampling an empty page plan".into()))?;
    let first_record = loaded.record_at(sample_idx, 0);
    let sample_records =
        loaded.records_per_page().min(loaded.records().saturating_sub(first_record));

    // Mask of the sampled page (partition 0): one line per occupied row.
    let rows_used = sample_records.div_ceil(module.config().crossbars_per_page());
    log.push(module.host_read_phase(rows_used as u64));

    let mask_page = module.page(loaded.pages(0)[sample_idx]);
    let mut selected_slots = Vec::new();
    for slot in 0..sample_records {
        let s = mask_page.record_slot(slot)?;
        if mask_page.crossbar(s.crossbar).bits().get(s.row, MASK_COL) {
            selected_slots.push(slot);
        }
    }

    // Group-key chunks of the selected sampled records.
    let mut lines = LineSet::new();
    let mut counts: HashMap<Vec<u64>, u64> = HashMap::new();
    for &slot in &selected_slots {
        let mut key = Vec::with_capacity(group_placements.len());
        for (_, placement) in group_placements {
            let page_id = loaded.pages(placement.partition)[sample_idx];
            let page = module.page(page_id);
            let s = page.record_slot(slot)?;
            lines.touch_bit_range(
                module.config(),
                page_id.0,
                s.row,
                placement.range.lo,
                placement.range.width,
            );
            key.push(page.crossbar(s.crossbar).read_row_bits(
                s.row,
                placement.range.lo,
                placement.range.width,
            ));
        }
        *counts.entry(key).or_default() += 1;
    }
    log.push(module.host_read_scattered_phase(lines.len()));

    // Selected records exist only on candidate pages (pruned pages are
    // proven matchless), so the sample scales up to the *candidate*
    // record count, not the whole relation.
    let candidate_records: usize = pages
        .indices()
        .iter()
        .map(|&idx| {
            loaded.records_per_page().min(loaded.records().saturating_sub(loaded.record_at(idx, 0)))
        })
        .sum();
    let scale =
        if sample_records == 0 { 0.0 } else { candidate_records as f64 / sample_records as f64 };
    let mut groups: Vec<(Vec<u64>, f64)> =
        counts.into_iter().map(|(k, c)| (k, c as f64 * scale)).collect();
    groups.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let sample_selected = selected_slots.len();
    Ok(SampleEstimate {
        sample_records,
        sample_selected,
        est_selectivity: if sample_records == 0 {
            0.0
        } else {
            sample_selected as f64 / sample_records as f64
        },
        groups,
        est_selected_total: sample_selected as f64 * scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_exec::run_filter;
    use crate::layout::RecordLayout;
    use crate::loader::load_relation;
    use crate::modes::EngineMode;
    use bbpim_db::plan::{AggExpr, AggFunc, Atom, Query};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::Relation;
    use bbpim_sim::SimConfig;

    fn setup() -> (PimModule, Relation, RecordLayout, LoadedRelation) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_g", 4)]);
        let mut rel = Relation::new(schema);
        // skewed groups: group 0 gets half the rows
        for i in 0..1000u64 {
            let g = if i % 2 == 0 { 0 } else { 1 + (i % 7) };
            rel.push_row(&[i % 250, g]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, EngineMode::OneXb, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        (module, rel, layout, loaded)
    }

    fn filter_and_sample(selectivity_filter: Vec<Atom>) -> SampleEstimate {
        let (mut module, rel, layout, loaded) = setup();
        let q = Query::single(
            "t",
            selectivity_filter,
            vec!["d_g".into()],
            AggFunc::Sum,
            AggExpr::attr("lo_v"),
        );
        let schema = rel.schema();
        let dnf: Vec<Vec<_>> = q
            .resolve_filter(schema)
            .unwrap()
            .into_iter()
            .map(|conj| {
                conj.into_iter()
                    .map(|a| {
                        let name = &schema.attrs()[a.attr_index()].name;
                        (a, layout.placement(name).unwrap())
                    })
                    .collect()
            })
            .collect();
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        run_filter(&mut module, &layout, &loaded, &dnf, &pages, &mut log).unwrap();
        let placements = vec![("d_g".to_string(), layout.placement("d_g").unwrap())];
        sample_page(&mut module, &layout, &loaded, &pages, &placements, &mut log).unwrap()
    }

    #[test]
    fn estimates_ordered_and_head_heavy() {
        let est = filter_and_sample(vec![]);
        assert!(est.sample_selected > 0);
        assert!((est.est_selectivity - 1.0).abs() < 1e-9);
        // group 0 holds ~half the records and must rank first
        assert_eq!(est.groups[0].0, vec![0u64]);
        assert!(est.share(0) > 0.3);
        for w in est.groups.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn r_of_k_decreases_and_respects_selectivity() {
        let est = filter_and_sample(vec![Atom::Lt { attr: "lo_v".into(), value: 125u64.into() }]);
        let r0 = est.r_of_k(0);
        assert!((r0 - est.est_selectivity).abs() < 1e-9);
        let mut prev = r0;
        for k in 1..=est.seen() {
            let rk = est.r_of_k(k);
            assert!(rk <= prev + 1e-12, "r(k) must be non-increasing");
            prev = rk;
        }
        // past the sampled groups r stays flat
        assert!((est.r_of_k(est.seen() + 5) - est.r_of_k(est.seen())).abs() < 1e-12);
    }

    #[test]
    fn empty_selection_gives_zero_estimates() {
        // lo_v < 0 is impossible
        let est = filter_and_sample(vec![Atom::Lt { attr: "lo_v".into(), value: 0u64.into() }]);
        assert_eq!(est.sample_selected, 0);
        assert_eq!(est.seen(), 0);
        assert_eq!(est.r_of_k(0), 0.0);
        assert_eq!(est.share(0), 0.0);
    }

    #[test]
    fn estimated_counts_scale_to_relation() {
        let est = filter_and_sample(vec![]);
        // sample is the full first page; totals scale by records/sample
        let total_est: f64 = est.groups.iter().map(|(_, c)| c).sum();
        assert!((total_est - 1000.0).abs() / 1000.0 < 0.25, "total {total_est}");
    }
}
