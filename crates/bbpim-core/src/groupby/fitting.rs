//! Least-squares fits for the empirical latency models (Section IV).
//!
//! The paper fits `∂T_host-gb/∂M` to `a·√r + b` per value of `s`
//! (Fig. 4b) and `T_pim-gb` to a line in `M` per value of `n`
//! (Fig. 4c). Both are ordinary least squares in one transformed
//! regressor; fit quality is reported as R².

use serde::{Deserialize, Serialize};

/// A fit `y = a·√r + b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SqrtFit {
    /// Coefficient of √r.
    pub a: f64,
    /// Intercept.
    pub b: f64,
    /// Coefficient of determination on the fitted points.
    pub r2: f64,
}

impl SqrtFit {
    /// Evaluate at `r`.
    pub fn eval(&self, r: f64) -> f64 {
        self.a * r.max(0.0).sqrt() + self.b
    }
}

/// A fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination on the fitted points.
    pub r2: f64,
}

impl LinFit {
    /// Evaluate at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares of `y` on a single regressor `x`.
///
/// Returns `(slope, intercept, r2)`.
///
/// # Panics
///
/// Panics on fewer than 2 points or a degenerate (constant-x) input.
pub fn least_squares(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate regressor (all x equal)");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|(x, y)| (y - (slope * x + intercept)).powi(2)).sum();
    let r2 = if ss_tot <= 1e-12 { 1.0 } else { 1.0 - ss_res / ss_tot };
    (slope, intercept, r2)
}

/// Fit `y = a·√r + b` to `(r, y)` points.
///
/// # Panics
///
/// Same conditions as [`least_squares`].
pub fn fit_sqrt(points: &[(f64, f64)]) -> SqrtFit {
    let transformed: Vec<(f64, f64)> =
        points.iter().map(|(r, y)| (r.max(0.0).sqrt(), *y)).collect();
    let (a, b, r2) = least_squares(&transformed);
    SqrtFit { a, b, r2 }
}

/// Fit `y = slope·x + intercept` to `(x, y)` points.
///
/// # Panics
///
/// Same conditions as [`least_squares`].
pub fn fit_linear(points: &[(f64, f64)]) -> LinFit {
    let (slope, intercept, r2) = least_squares(points);
    LinFit { slope, intercept, r2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let f = fit_linear(&pts);
        assert!((f.slope - 3.0).abs() < 1e-9);
        assert!((f.intercept - 2.0).abs() < 1e-9);
        assert!(f.r2 > 0.999999);
    }

    #[test]
    fn exact_sqrt_recovered() {
        let pts: Vec<(f64, f64)> =
            [0.01f64, 0.05, 0.1, 0.4, 0.8].iter().map(|&r| (r, 5.0 * r.sqrt() + 1.0)).collect();
        let f = fit_sqrt(&pts);
        assert!((f.a - 5.0).abs() < 1e-9);
        assert!((f.b - 1.0).abs() < 1e-9);
        assert!((f.eval(0.25) - (5.0 * 0.5 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn r2_degrades_with_noise() {
        let clean: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let noisy: Vec<(f64, f64)> = clean
            .iter()
            .enumerate()
            .map(|(i, (x, y))| (*x, y + if i % 2 == 0 { 10.0 } else { -10.0 }))
            .collect();
        assert!(fit_linear(&clean).r2 > fit_linear(&noisy).r2);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        let _ = fit_linear(&[(1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn constant_x_rejected() {
        let _ = fit_linear(&[(1.0, 2.0), (1.0, 3.0)]);
    }
}
