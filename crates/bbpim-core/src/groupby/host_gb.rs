//! host-gb: the host reads the selected records and hash-aggregates.
//!
//! The host reads the filter-result bit-vector (one line per row), then
//! the group-key and aggregate-operand chunks of every selected record —
//! with exact unique-line accounting, so dense selections amortise the
//! 32-records-per-line layout and sparse ones pay full amplification —
//! and folds each record into a hash table, evaluating **every**
//! physical aggregate of the SELECT list in the same pass (the record
//! is already in a host register; extra aggregates cost host ALU work,
//! not extra reads). Records whose key belongs to a PIM-aggregated
//! subgroup are read (the key must be seen to be skipped) but not
//! folded.

use std::collections::HashSet;

use bbpim_db::plan::{AggExpr, PhysAgg};
use bbpim_db::stats::GroupedResult;
use bbpim_sim::hostmem::LineSet;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::{Phase, RunLog};

use crate::error::CoreError;
use crate::filter_exec::{mask_bits, mask_read_phases};
use crate::layout::{AttrPlacement, RecordLayout, MASK_COL};
use crate::loader::LoadedRelation;
use crate::planner::PageSet;

/// One host-gb run.
#[derive(Debug)]
pub struct HostGbRequest<'a> {
    /// GROUP BY attributes with placements (key order = plan order).
    pub group_placements: &'a [(String, AttrPlacement)],
    /// The physical aggregates to evaluate host-side (plan order).
    /// `Count` components contribute 1 per selected record.
    pub aggs: &'a [PhysAgg],
    /// Keys already aggregated in PIM — read but not folded.
    pub skip: &'a HashSet<Vec<u64>>,
}

/// Read an attribute of one record straight from the stored bits.
///
/// # Errors
///
/// Propagates placement/slot failures.
pub fn read_attr_value(
    module: &PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    record: usize,
    name: &str,
) -> Result<u64, CoreError> {
    let placement = layout.placement(name)?;
    let (pg, slot) = loaded.locate(record);
    let page = module.page(loaded.pages(placement.partition)[pg]);
    Ok(page.read_record_bits(slot, placement.range.lo, placement.range.width)?)
}

/// Evaluate an aggregate expression for one record from stored bits.
///
/// # Errors
///
/// Propagates attribute-read failures.
pub fn eval_expr(
    module: &PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    record: usize,
    expr: &AggExpr,
) -> Result<u64, CoreError> {
    Ok(match expr {
        AggExpr::Attr(a) => read_attr_value(module, layout, loaded, record, a)?,
        AggExpr::Mul(a, b) => read_attr_value(module, layout, loaded, record, a)?
            .wrapping_mul(read_attr_value(module, layout, loaded, record, b)?),
        AggExpr::Sub(a, b) => read_attr_value(module, layout, loaded, record, a)?
            .wrapping_sub(read_attr_value(module, layout, loaded, record, b)?),
    })
}

/// Execute host-gb. Charges mask-read, record-read and host-compute
/// phases to `log` and returns the aggregated tail groups — one
/// [`GroupedResult`] per requested physical aggregate, in request
/// order.
///
/// # Errors
///
/// Propagates placement/slot failures.
pub fn run_host_gb(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    pages: &PageSet,
    req: &HostGbRequest<'_>,
    log: &mut RunLog,
) -> Result<Vec<GroupedResult>, CoreError> {
    // 1. Filter-result bit-vector of the planned pages only (pruned
    //    pages hold no selected records and are not read).
    let mask = mask_bits(module, loaded, pages, 0, MASK_COL);
    for phase in mask_read_phases(module, loaded, pages, &mask) {
        log.push(phase);
    }

    // 2. Which chunks must be read per record: group keys + the union
    //    of every aggregate's operands (shared operands read once).
    let mut read_attrs: Vec<&str> = req.group_placements.iter().map(|(n, _)| n.as_str()).collect();
    for agg in req.aggs {
        read_attrs.extend(agg.attrs());
    }
    read_attrs.sort_unstable();
    read_attrs.dedup();
    let chunk_map = layout.chunks_for(read_attrs.iter().copied())?;

    // 3. Exact unique-line accounting over the selected records.
    let mut lines = LineSet::new();
    let cfg = module.config().clone();
    for (record, selected) in mask.iter().enumerate() {
        if !selected {
            continue;
        }
        let (pg, slot) = loaded.locate(record);
        for (&partition, chunks) in &chunk_map {
            let page_id = loaded.pages(partition)[pg];
            let page = module.page(page_id);
            let s = page.record_slot(slot)?;
            for &chunk in chunks {
                lines.touch_bit_range(
                    &cfg,
                    page_id.0,
                    s.row,
                    chunk * cfg.read_width_bits,
                    cfg.read_width_bits,
                );
            }
        }
    }
    // Record fetches are mask-directed (data-dependent addresses):
    // latency-bound scattered reads, per the paper's host-gb behaviour.
    log.push(module.host_read_scattered_phase(lines.len()));

    // 4. Hash aggregation at the host, all physical aggregates folded
    //    in one pass over the selected records.
    let mut out: Vec<GroupedResult> = vec![GroupedResult::new(); req.aggs.len()];
    for (record, selected) in mask.iter().enumerate() {
        if !selected {
            continue;
        }
        let mut key = Vec::with_capacity(req.group_placements.len());
        for (name, _) in req.group_placements {
            key.push(read_attr_value(module, layout, loaded, record, name)?);
        }
        if req.skip.contains(&key) {
            continue;
        }
        for (agg, grouped) in req.aggs.iter().zip(out.iter_mut()) {
            let v = match &agg.expr {
                None => 1,
                Some(expr) => eval_expr(module, layout, loaded, record, expr)?,
            };
            grouped
                .entry(key.clone())
                .and_modify(|acc| *acc = agg.func.merge(*acc, v))
                .or_insert(v);
        }
    }
    let per_record = cfg.host.host_agg_ns_per_record / cfg.host.threads as f64;
    log.push(Phase::host_compute(mask.iter().filter(|m| **m).count() as f64 * per_record));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_exec::run_filter;
    use crate::layout::RecordLayout;
    use crate::loader::load_relation;
    use crate::modes::EngineMode;
    use bbpim_db::plan::{AggFunc, Atom, PhysFunc, Query};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::stats;
    use bbpim_db::Relation;
    use bbpim_sim::SimConfig;

    fn filter_dnf(
        q: &Query,
        rel: &Relation,
        layout: &RecordLayout,
    ) -> Vec<Vec<(bbpim_db::plan::ResolvedAtom, AttrPlacement)>> {
        let schema = rel.schema();
        q.resolve_filter(schema)
            .unwrap()
            .into_iter()
            .map(|conj| {
                conj.into_iter()
                    .map(|a| {
                        let name = &schema.attrs()[a.attr_index()].name;
                        let p = layout.placement(name).unwrap();
                        (a, p)
                    })
                    .collect()
            })
            .collect()
    }

    fn setup(mode: EngineMode) -> (PimModule, Relation, RecordLayout, LoadedRelation, Query) {
        let cfg = SimConfig::small_for_tests();
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("lo_v", 8),
                Attribute::numeric("lo_w", 6),
                Attribute::numeric("d_g", 4),
                Attribute::numeric("d_h", 3),
            ],
        );
        let mut rel = Relation::new(schema);
        for i in 0..800u64 {
            rel.push_row(&[(3 * i) % 251, i % 50, i % 9, (i / 9) % 5]).unwrap();
        }
        let q = Query::single(
            "t",
            vec![Atom::Lt { attr: "lo_v".into(), value: 170u64.into() }],
            vec!["d_g".into(), "d_h".into()],
            AggFunc::Sum,
            AggExpr::attr("lo_v"),
        );
        let layout = RecordLayout::build(rel.schema(), &cfg, mode, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        let dnf = filter_dnf(&q, &rel, &layout);
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        run_filter(&mut module, &layout, &loaded, &dnf, &pages, &mut log).unwrap();
        (module, rel, layout, loaded, q)
    }

    fn placements(layout: &RecordLayout, q: &Query) -> Vec<(String, AttrPlacement)> {
        q.group_by.iter().map(|g| (g.clone(), layout.placement(g).unwrap())).collect()
    }

    fn sum_aggs(q: &Query) -> Vec<PhysAgg> {
        q.physical_plan().unwrap().aggs
    }

    #[test]
    fn host_gb_matches_oracle() {
        for mode in [EngineMode::OneXb, EngineMode::TwoXb] {
            let (mut module, rel, layout, loaded, q) = setup(mode);
            let gp = placements(&layout, &q);
            let skip = HashSet::new();
            let aggs = sum_aggs(&q);
            let req = HostGbRequest { group_placements: &gp, aggs: &aggs, skip: &skip };
            let mut log = RunLog::new();
            let pages = PageSet::all(loaded.page_count());
            let got = run_host_gb(&mut module, &layout, &loaded, &pages, &req, &mut log).unwrap();
            let expected = stats::column(&stats::run_oracle(&q, &rel).unwrap(), 0);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0], expected, "{mode:?}");
            assert!(log.total_time_ns() > 0.0);
        }
    }

    #[test]
    fn multi_aggregate_host_gb_single_pass() {
        use bbpim_sim::timeline::PhaseKind;
        let (mut module, rel, layout, loaded, q) = setup(EngineMode::OneXb);
        let gp = placements(&layout, &q);
        let skip = HashSet::new();
        let aggs = vec![
            PhysAgg { func: PhysFunc::Sum, expr: Some(AggExpr::attr("lo_v")) },
            PhysAgg { func: PhysFunc::Count, expr: None },
            PhysAgg { func: PhysFunc::Max, expr: Some(AggExpr::sub("lo_v", "lo_w")) },
        ];
        let req = HostGbRequest { group_placements: &gp, aggs: &aggs, skip: &skip };
        let mut multi_log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        let got = run_host_gb(&mut module, &layout, &loaded, &pages, &req, &mut multi_log).unwrap();
        assert_eq!(got.len(), 3);
        // reference per column
        let mut sums = GroupedResult::new();
        let mut counts = GroupedResult::new();
        let mut maxs = GroupedResult::new();
        for row in 0..rel.len() {
            let v = rel.value(row, 0);
            if v >= 170 {
                continue;
            }
            let key = vec![rel.value(row, 2), rel.value(row, 3)];
            let d = v.wrapping_sub(rel.value(row, 1));
            *sums.entry(key.clone()).or_insert(0) += v;
            *counts.entry(key.clone()).or_insert(0) += 1;
            maxs.entry(key).and_modify(|m| *m = (*m).max(d)).or_insert(d);
        }
        assert_eq!(got[0], sums);
        assert_eq!(got[1], counts);
        assert_eq!(got[2], maxs);
        // one record-read pass: compare against a single-aggregate run
        // reading the same operand set — the multi run must not read per
        // aggregate.
        let single = vec![PhysAgg { func: PhysFunc::Sum, expr: Some(AggExpr::attr("lo_v")) }];
        let req1 = HostGbRequest { group_placements: &gp, aggs: &single, skip: &skip };
        let mut single_log = RunLog::new();
        run_host_gb(&mut module, &layout, &loaded, &pages, &req1, &mut single_log).unwrap();
        let reads = |log: &RunLog| log.time_in(PhaseKind::HostRead);
        // the three-aggregate pass reads one extra operand (lo_w), never
        // three times the lines
        assert!(reads(&multi_log) < reads(&single_log) * 2.0);
    }

    #[test]
    fn skip_set_excludes_groups() {
        let (mut module, rel, layout, loaded, q) = setup(EngineMode::OneXb);
        let gp = placements(&layout, &q);
        let expected = stats::column(&stats::run_oracle(&q, &rel).unwrap(), 0);
        let skipped_key = expected.keys().next().unwrap().clone();
        let mut skip = HashSet::new();
        skip.insert(skipped_key.clone());
        let aggs = sum_aggs(&q);
        let req = HostGbRequest { group_placements: &gp, aggs: &aggs, skip: &skip };
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        let got = run_host_gb(&mut module, &layout, &loaded, &pages, &req, &mut log).unwrap();
        assert!(!got[0].contains_key(&skipped_key));
        assert_eq!(got[0].len(), expected.len() - 1);
    }

    #[test]
    fn denser_selection_reads_fewer_lines_per_record() {
        // r=1.0 vs sparse: lines per selected record shrink with density.
        let (mut module, rel, layout, loaded, mut q) = setup(EngineMode::OneXb);
        let gp = placements(&layout, &q);
        let skip = HashSet::new();
        // dense: the filter already selected ~2/3; rerun with everything
        q.filter = bbpim_db::plan::Pred::always();
        let dnf = filter_dnf(&q, &rel, &layout);
        let mut log0 = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        run_filter(&mut module, &layout, &loaded, &dnf, &pages, &mut log0).unwrap();
        let aggs = sum_aggs(&q);
        let req = HostGbRequest { group_placements: &gp, aggs: &aggs, skip: &skip };
        let mut dense_log = RunLog::new();
        let dense =
            run_host_gb(&mut module, &layout, &loaded, &pages, &req, &mut dense_log).unwrap();
        assert_eq!(dense[0].len(), stats::run_oracle(&q, &rel).unwrap().len());
        use bbpim_sim::timeline::PhaseKind;
        let dense_read = dense_log.time_in(PhaseKind::HostRead);
        // dense read time is positive yet far below selected × s × line time
        assert!(dense_read > 0.0);
    }

    #[test]
    fn expression_evaluated_host_side() {
        let (mut module, rel, layout, loaded, mut q) = setup(EngineMode::OneXb);
        q.select[0].expr = Some(AggExpr::sub("lo_v", "lo_w"));
        q.filter =
            bbpim_db::plan::Pred::all(vec![Atom::Gt { attr: "lo_v".into(), value: 60u64.into() }]);
        let dnf = filter_dnf(&q, &rel, &layout);
        let mut log = RunLog::new();
        let pages = PageSet::all(loaded.page_count());
        run_filter(&mut module, &layout, &loaded, &dnf, &pages, &mut log).unwrap();
        let gp = placements(&layout, &q);
        let skip = HashSet::new();
        let aggs = sum_aggs(&q);
        let req = HostGbRequest { group_placements: &gp, aggs: &aggs, skip: &skip };
        let got = run_host_gb(&mut module, &layout, &loaded, &pages, &req, &mut log).unwrap();
        assert_eq!(got[0], stats::column(&stats::run_oracle(&q, &rel).unwrap(), 0));
    }
}
