//! The empirical GROUP-BY latency model — Eqs. (1)–(3) of the paper.
//!
//! * Eq. (1): `T_host-gb(M, s, r) = M · (a(s)·√r + b(s))` — host-side
//!   aggregation time, with `a`/`b` lookup tables over the discrete
//!   reads-per-record values `s`.
//! * Eq. (2): `T_pim-gb(M, n) = M · ∂T/∂M(n) + T₀(n)` — single-subgroup
//!   PIM aggregation time, lookup tables over the discrete
//!   reads-per-value `n`.
//! * Eq. (3): `T_gb = k · T_pim-gb + (1 − δ_{k,kmax}) · T_host-gb(M, s,
//!   r(k))` — the total; the engine picks the `k` minimising it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::groupby::fitting::{LinFit, SqrtFit};

/// Eq. (1): host-gb latency model with `a(s)`, `b(s)` lookup tables.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HostGbModel {
    per_s: BTreeMap<usize, SqrtFit>,
}

impl HostGbModel {
    /// Build from per-`s` fits of `∂T/∂M` against √r.
    pub fn new(per_s: BTreeMap<usize, SqrtFit>) -> Self {
        HostGbModel { per_s }
    }

    /// The fitted `s` values.
    pub fn s_values(&self) -> impl Iterator<Item = usize> + '_ {
        self.per_s.keys().copied()
    }

    /// The fit for an `s` (nearest fitted value — `s` is discrete but a
    /// query may need an `s` outside the calibration grid).
    pub fn fit_for(&self, s: usize) -> Option<&SqrtFit> {
        self.per_s.iter().min_by_key(|(k, _)| k.abs_diff(s)).map(|(_, f)| f)
    }

    /// Eq. (1), nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics when the model has no fits (construct via calibration).
    pub fn time_ns(&self, m: usize, s: usize, r: f64) -> f64 {
        let fit = self.fit_for(s).expect("host-gb model has no fits");
        (m as f64 * fit.eval(r)).max(0.0)
    }
}

/// Eq. (2): pim-gb single-subgroup latency model with `n` lookup tables.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PimGbModel {
    per_n: BTreeMap<usize, LinFit>,
}

impl PimGbModel {
    /// Build from per-`n` linear fits in `M`.
    pub fn new(per_n: BTreeMap<usize, LinFit>) -> Self {
        PimGbModel { per_n }
    }

    /// The fitted `n` values.
    pub fn n_values(&self) -> impl Iterator<Item = usize> + '_ {
        self.per_n.keys().copied()
    }

    /// The fit for an `n` (nearest fitted value).
    pub fn fit_for(&self, n: usize) -> Option<&LinFit> {
        self.per_n.iter().min_by_key(|(k, _)| k.abs_diff(n)).map(|(_, f)| f)
    }

    /// Eq. (2), nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics when the model has no fits.
    pub fn time_ns(&self, m: usize, n: usize) -> f64 {
        let fit = self.fit_for(n).expect("pim-gb model has no fits");
        fit.eval(m as f64).max(0.0)
    }
}

/// The combined model used by the hybrid GROUP-BY decision.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroupByModel {
    /// Eq. (1) tables.
    pub host: HostGbModel,
    /// Eq. (2) tables.
    pub pim: PimGbModel,
}

/// Inputs of one Eq. (3) evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbParams {
    /// Relation size in pages (`M`).
    pub m: usize,
    /// Aggregated-value reads per crossbar (`n`).
    pub n: usize,
    /// Reads per record for host-gb (`s`).
    pub s: usize,
    /// Total potential subgroups (`k_MAX`).
    pub kmax: usize,
}

impl GroupByModel {
    /// Eq. (3): total GROUP-BY time for a given `k`, where `r_k` is the
    /// estimated ratio of *relation* records left to host-gb after the
    /// `k` largest subgroups go to PIM.
    pub fn total_time_ns(&self, p: &GbParams, k: usize, r_k: f64) -> f64 {
        let pim = k as f64 * self.pim.time_ns(p.m, p.n);
        let host = if k >= p.kmax { 0.0 } else { self.host.time_ns(p.m, p.s, r_k) };
        pim + host
    }

    /// Choose the `k` (0..=kmax) minimising Eq. (3). `r_of_k(k)` comes
    /// from the sampling estimate. Deterministic tie-break: smaller `k`.
    pub fn choose_k(&self, p: &GbParams, r_of_k: &dyn Fn(usize) -> f64) -> usize {
        let mut best_k = 0;
        let mut best_t = f64::INFINITY;
        for k in 0..=p.kmax {
            let t = self.total_time_ns(p, k, r_of_k(k));
            if t < best_t {
                best_t = t;
                best_k = k;
            }
        }
        best_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(pim_cost: f64, host_a: f64, host_b: f64) -> GroupByModel {
        let mut per_s = BTreeMap::new();
        per_s.insert(2, SqrtFit { a: host_a, b: host_b, r2: 1.0 });
        per_s.insert(4, SqrtFit { a: host_a * 2.0, b: host_b * 2.0, r2: 1.0 });
        let mut per_n = BTreeMap::new();
        per_n.insert(1, LinFit { slope: 0.0, intercept: pim_cost, r2: 1.0 });
        GroupByModel { host: HostGbModel::new(per_s), pim: PimGbModel::new(per_n) }
    }

    #[test]
    fn host_time_scales_with_m_and_sqrt_r() {
        let m = model(0.0, 100.0, 10.0);
        let t1 = m.host.time_ns(10, 2, 0.25);
        assert!((t1 - 10.0 * (100.0 * 0.5 + 10.0)).abs() < 1e-9);
        let t2 = m.host.time_ns(20, 2, 0.25);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
    }

    #[test]
    fn nearest_s_lookup() {
        let m = model(0.0, 100.0, 10.0);
        // s=3 → nearest fitted is 2 or 4; BTreeMap order makes 2 the min
        let t3 = m.host.time_ns(1, 3, 0.0);
        let t2 = m.host.time_ns(1, 2, 0.0);
        assert!((t3 - t2).abs() < 1e-9);
        // s=6 → nearest fitted is 4
        let t6 = m.host.time_ns(1, 6, 0.0);
        assert!((t6 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn all_pim_when_few_subgroups_and_cheap_pim() {
        let m = model(1.0, 1000.0, 100.0);
        let p = GbParams { m: 10, n: 1, s: 2, kmax: 3 };
        // three equal subgroups; sending them all to PIM costs 3 vs host ≥ 1000
        let r = |k: usize| 1.0 - k as f64 / 3.0;
        assert_eq!(m.choose_k(&p, &r), 3);
    }

    #[test]
    fn all_host_when_pim_expensive() {
        let m = model(1e9, 100.0, 10.0);
        let p = GbParams { m: 10, n: 1, s: 2, kmax: 500 };
        let r = |k: usize| 1.0 - k as f64 / 500.0;
        assert_eq!(m.choose_k(&p, &r), 0);
    }

    #[test]
    fn skewed_sizes_favor_partial_k() {
        // One huge subgroup (90 % of records), many tiny ones: taking the
        // head into PIM slashes host time; the tail is cheaper on the
        // host than 100 more PIM rounds (pim per-subgroup cost high
        // enough that k = kmax does not pay).
        let m = model(50_000.0, 100_000.0, 1_000.0);
        let p = GbParams { m: 100, n: 1, s: 2, kmax: 100 };
        let r = |k: usize| {
            if k == 0 {
                1.0
            } else {
                0.1 * (1.0 - (k as f64 - 1.0) / 99.0)
            }
        };
        let k = m.choose_k(&p, &r);
        assert!(k >= 1, "head must go to PIM");
        assert!(k < 100, "tail should stay on the host, got k={k}");
    }

    #[test]
    fn eq3_drops_host_term_at_kmax() {
        let m = model(1.0, 100.0, 10.0);
        let p = GbParams { m: 10, n: 1, s: 2, kmax: 5 };
        // even with r(kmax) > 0 (sample missed records), δ kills the term
        let t = m.total_time_ns(&p, 5, 0.5);
        assert!((t - 5.0).abs() < 1e-9);
    }
}
