//! Aggregation execution: in-crossbar expression materialisation, the
//! peripheral-circuit (or pure-bitwise) reduction, and the host combine.
//!
//! SSB Q1 aggregates `extendedprice · discount` and Q4 aggregates
//! `revenue − supplycost`; [`materialize_expr`] compiles the arithmetic
//! to a column-parallel program that computes the expression for every
//! record of every page at once, into a reserved slice of the scratch
//! region. [`aggregate_masked`] then reduces the (possibly computed)
//! value under a mask column: through the aggregation circuit
//! (`one-xb`/`two-xb`) or the PIMDB bulk-bitwise reduction tree
//! (`pimdb`), followed by one cache line per result chunk per page and a
//! trivial host-side combine of the per-crossbar partials.

use bbpim_db::plan::{AggExpr, PhysFunc};
use bbpim_sim::aggcircuit::AggRequest;
use bbpim_sim::compiler::reduce::ReduceOp;
use bbpim_sim::compiler::{arith, CodeBuilder, ColRange, ScratchPool};
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::{Phase, RunLog};

use crate::error::CoreError;
use crate::layout::RecordLayout;
use crate::loader::LoadedRelation;
use crate::modes::EngineMode;
use crate::planner::PageSet;

/// Host nanoseconds to fold one per-crossbar partial into the total.
const COMBINE_NS_PER_PARTIAL: f64 = 2.0;

/// Where the value being aggregated lives after preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggInput {
    /// Vertical partition holding the value.
    pub partition: usize,
    /// Columns of the value (an attribute, or a computed expression in
    /// scratch).
    pub value: ColRange,
    /// Scratch still free for later programs (group masks…).
    pub scratch_left: ColRange,
}

/// Map a physical aggregate component onto the hardware operator.
/// `Count` never reaches a value reduction (it reads the count register
/// / mask popcount); it maps to `Sum` defensively.
pub fn reduce_op(func: PhysFunc) -> ReduceOp {
    match func {
        PhysFunc::Sum | PhysFunc::Count => ReduceOp::Sum,
        PhysFunc::Min => ReduceOp::Min,
        PhysFunc::Max => ReduceOp::Max,
    }
}

/// Prepare the aggregation input: a plain attribute is used in place; a
/// `Mul`/`Sub` expression is computed into scratch by one bulk-bitwise
/// program (executed here, charged to `log`).
///
/// # Errors
///
/// [`CoreError::Unsupported`] when operands sit in different partitions
/// (cannot happen for SSB: expression operands are fact attributes);
/// compiler and simulator failures otherwise.
pub fn materialize_expr(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    pages: &PageSet,
    expr: &AggExpr,
    log: &mut RunLog,
) -> Result<AggInput, CoreError> {
    match expr {
        AggExpr::Attr(name) => {
            let p = layout.placement(name)?;
            Ok(AggInput {
                partition: p.partition,
                value: p.range,
                scratch_left: layout.scratch(p.partition),
            })
        }
        AggExpr::Mul(a, b) | AggExpr::Sub(a, b) => {
            let pa = layout.placement(a)?;
            let pb = layout.placement(b)?;
            if pa.partition != pb.partition {
                return Err(CoreError::Unsupported(format!(
                    "aggregate expression operands `{a}` and `{b}` live in different partitions"
                )));
            }
            let scratch = layout.scratch(pa.partition);
            let width = match expr {
                AggExpr::Mul(..) => pa.range.width + pb.range.width,
                _ => pa.range.width.max(pb.range.width),
            };
            if width + crate::layout::MIN_SCRATCH_COLS > scratch.width {
                return Err(CoreError::Layout(format!(
                    "expression needs {width} result columns plus workspace; scratch has {}",
                    scratch.width
                )));
            }
            let dst = ColRange::new(scratch.lo, width);
            let rest = ColRange::new(scratch.lo + width, scratch.width - width);
            let mut pool = ScratchPool::new(rest);
            let mut builder = CodeBuilder::new(&mut pool);
            match expr {
                AggExpr::Mul(..) => arith::compile_mul(&mut builder, pa.range, pb.range, dst)?,
                AggExpr::Sub(..) => arith::compile_sub(&mut builder, pa.range, pb.range, dst)?,
                AggExpr::Attr(..) => unreachable!("handled above"),
            }
            let prog = builder.finish();
            let phase = module.exec_program(&pages.ids(loaded, pa.partition), &prog)?;
            log.push(phase);
            Ok(AggInput { partition: pa.partition, value: dst, scratch_left: rest })
        }
    }
}

/// Materialise *several* aggregate expressions at once, stacking the
/// computed ones into disjoint scratch slices so they stay live
/// together — the multi-aggregate GROUP BY needs every input resident
/// while it walks subgroup keys (one group-mask program per key feeds
/// *all* aggregates). Plain attributes are used in place; duplicate
/// expressions share one materialisation.
///
/// Every returned [`AggInput`]'s `scratch_left` is the scratch
/// remaining in its partition *after* all stacked values, so follow-up
/// mask programs cannot clobber any materialised input.
///
/// # Errors
///
/// [`CoreError::Layout`] when the stacked widths leave less than the
/// minimum program workspace; the per-expression errors of
/// [`materialize_expr`] otherwise.
pub fn materialize_exprs(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    pages: &PageSet,
    exprs: &[&AggExpr],
    log: &mut RunLog,
) -> Result<Vec<AggInput>, CoreError> {
    // Pass 1: place every computed expression (deduplicated), tracking
    // per-partition stacked usage.
    let mut used: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut placed: Vec<(AggExpr, usize, ColRange)> = Vec::new(); // (expr, partition, dst)
    for expr in exprs {
        let (a, b) = match expr {
            AggExpr::Attr(_) => continue,
            AggExpr::Mul(a, b) | AggExpr::Sub(a, b) => (a, b),
        };
        if placed.iter().any(|(e, _, _)| e == *expr) {
            continue;
        }
        let pa = layout.placement(a)?;
        let pb = layout.placement(b)?;
        if pa.partition != pb.partition {
            return Err(CoreError::Unsupported(format!(
                "aggregate expression operands `{a}` and `{b}` live in different partitions"
            )));
        }
        let width = match expr {
            AggExpr::Mul(..) => pa.range.width + pb.range.width,
            _ => pa.range.width.max(pb.range.width),
        };
        let scratch = layout.scratch(pa.partition);
        let offset = used.entry(pa.partition).or_insert(0);
        if *offset + width + crate::layout::MIN_SCRATCH_COLS > scratch.width {
            return Err(CoreError::Layout(format!(
                "stacked expressions need {} result columns plus workspace; scratch has {}",
                *offset + width,
                scratch.width
            )));
        }
        let dst = ColRange::new(scratch.lo + *offset, width);
        *offset += width;
        placed.push(((*expr).clone(), pa.partition, dst));
    }

    // Pass 2: compile + execute one program per computed expression,
    // with the workspace pool confined to the region past every stacked
    // value of that partition.
    let remaining = |partition: usize| -> ColRange {
        let scratch = layout.scratch(partition);
        let off = used.get(&partition).copied().unwrap_or(0);
        ColRange::new(scratch.lo + off, scratch.width - off)
    };
    for (expr, partition, dst) in &placed {
        let (a, b) = match expr {
            AggExpr::Mul(a, b) | AggExpr::Sub(a, b) => (a, b),
            AggExpr::Attr(_) => unreachable!("only computed expressions are placed"),
        };
        let pa = layout.placement(a)?;
        let pb = layout.placement(b)?;
        let mut pool = ScratchPool::new(remaining(*partition));
        let mut builder = CodeBuilder::new(&mut pool);
        match expr {
            AggExpr::Mul(..) => arith::compile_mul(&mut builder, pa.range, pb.range, *dst)?,
            AggExpr::Sub(..) => arith::compile_sub(&mut builder, pa.range, pb.range, *dst)?,
            AggExpr::Attr(..) => unreachable!("only computed expressions are placed"),
        }
        let prog = builder.finish();
        let phase = module.exec_program(&pages.ids(loaded, *partition), &prog)?;
        log.push(phase);
    }

    // Pass 3: assemble the inputs in request order.
    exprs
        .iter()
        .map(|expr| match expr {
            AggExpr::Attr(name) => {
                let p = layout.placement(name)?;
                Ok(AggInput {
                    partition: p.partition,
                    value: p.range,
                    scratch_left: remaining(p.partition),
                })
            }
            computed => {
                let (_, partition, dst) = placed
                    .iter()
                    .find(|(e, _, _)| e == *computed)
                    .expect("computed expressions were placed in pass 1");
                Ok(AggInput {
                    partition: *partition,
                    value: *dst,
                    scratch_left: remaining(*partition),
                })
            }
        })
        .collect()
}

/// Result-slot width for a reduction: the value width plus carry room
/// for `rows` addends, clamped to the slot.
pub fn partial_width(
    layout: &RecordLayout,
    partition: usize,
    value: ColRange,
    rows: usize,
) -> ColRange {
    let slot = layout.result_slot(partition);
    let need =
        (value.width + (usize::BITS - (rows - 1).leading_zeros()) as usize).min(slot.width).min(64);
    ColRange::new(slot.lo, need)
}

/// Reads (`n` of the paper's Eq. 2) the aggregation circuit performs per
/// row for a value range: its 16-bit chunks.
pub fn reads_per_value(layout_cols_chunk_bits: usize, value: ColRange) -> usize {
    let first = value.lo / layout_cols_chunk_bits;
    let last = (value.end() - 1) / layout_cols_chunk_bits;
    last - first + 1
}

/// Aggregate `input` under `mask_col` over the partition's pages,
/// returning the combined value. Phases (PIM aggregation, result-line
/// reads, host combine) are pushed to `log`.
///
/// # Errors
///
/// Propagates simulator failures.
#[allow(clippy::too_many_arguments)] // engine plumbing: module + layout + log threading
pub fn aggregate_masked(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    page_set: &PageSet,
    mode: EngineMode,
    input: &AggInput,
    mask_col: usize,
    func: PhysFunc,
    log: &mut RunLog,
) -> Result<u64, CoreError> {
    let rows = module.config().crossbar_rows;
    let dst = partial_width(layout, input.partition, input.value, rows);
    let req = AggRequest { op: reduce_op(func), value: input.value, mask_col, dst_row: 0, dst };
    let pages = page_set.ids(loaded, input.partition);
    let (partials, phase) = if mode.uses_agg_circuit() {
        module.agg_circuit(&pages, &req)?
    } else {
        module.bitwise_reduce(&pages, &req)?
    };
    log.push(phase);

    let chunk_bits = module.config().read_width_bits;
    let chunks = reads_per_value(chunk_bits, dst) as u64;
    let flat: Vec<u64> = partials.into_iter().flatten().collect();
    if module.policy().module_reduce {
        // Page controllers fold the per-crossbar partials locally, so
        // one finalised partial crosses the channel instead of one
        // result line per page.
        log.push(module.partial_combine_phase(pages.len(), flat.len() as u64));
        log.push(module.host_read_phase(if pages.is_empty() { 0 } else { chunks }));
        log.push(Phase::host_compute(flat.len().min(1) as f64 * COMBINE_NS_PER_PARTIAL));
    } else {
        // Host fetches one line per result chunk per page and folds the
        // per-crossbar partials itself.
        log.push(module.host_read_phase(pages.len() as u64 * chunks));
        log.push(Phase::host_compute(flat.len() as f64 * COMBINE_NS_PER_PARTIAL));
    }
    let combined = match func {
        PhysFunc::Sum | PhysFunc::Count => flat.iter().fold(0u64, |acc, v| acc.wrapping_add(*v)),
        PhysFunc::Min => flat.into_iter().min().unwrap_or(u64::MAX),
        PhysFunc::Max => flat.into_iter().max().unwrap_or(0),
    };
    Ok(combined)
}

/// Like [`aggregate_masked`], with the count register enabled: returns
/// `(aggregate, selected_rows)`. The result slot is split — the value
/// partial in its low 48 bits, the count in the top 16-bit chunk — so
/// the host still reads one extra line per page at most.
///
/// Used by pim-gb, where SQL semantics need to know whether a subgroup
/// was empty. Under `pimdb` the count costs a second reduction tree
/// (no count register in pure bulk-bitwise logic).
///
/// Per-crossbar SUM partials wrap at 48 bits: size aggregated values so
/// `value.width + log2(rows)` ≤ 48 (every SSB attribute and expression
/// is ≤ 37; cross-engine tests would catch a violation as an oracle
/// mismatch).
///
/// # Errors
///
/// Propagates simulator failures.
#[allow(clippy::too_many_arguments)] // engine plumbing: module + layout + log threading
pub fn aggregate_masked_counted(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    page_set: &PageSet,
    mode: EngineMode,
    input: &AggInput,
    mask_col: usize,
    func: PhysFunc,
    log: &mut RunLog,
) -> Result<(u64, u64), CoreError> {
    let rows = module.config().crossbar_rows;
    let slot = layout.result_slot(input.partition);
    let carry = (usize::BITS - (rows - 1).leading_zeros()) as usize;
    let sum_width = (input.value.width + carry).min(slot.width.saturating_sub(16)).min(48);
    let dst = ColRange::new(slot.lo, sum_width.max(1));
    let count_dst = ColRange::new(slot.lo + slot.width - 16, 16);
    let req = AggRequest { op: reduce_op(func), value: input.value, mask_col, dst_row: 0, dst };
    let pages = page_set.ids(loaded, input.partition);
    let ((sums, counts), phase) = if mode.uses_agg_circuit() {
        module.agg_circuit_counted(&pages, &req, count_dst)?
    } else {
        module.bitwise_reduce_counted(&pages, &req, count_dst)?
    };
    log.push(phase);

    let chunk_bits = module.config().read_width_bits;
    let chunks = reads_per_value(chunk_bits, dst) as u64 + 1; // + the count chunk
    let flat_sums: Vec<u64> = sums.into_iter().flatten().collect();
    let flat_counts: Vec<u64> = counts.into_iter().flatten().collect();
    if module.policy().module_reduce {
        // both streams (value + count) fold module-side
        log.push(module.partial_combine_phase(pages.len(), 2 * flat_sums.len() as u64));
        log.push(module.host_read_phase(if pages.is_empty() { 0 } else { chunks }));
        log.push(Phase::host_compute(flat_sums.len().min(1) as f64 * COMBINE_NS_PER_PARTIAL));
    } else {
        log.push(module.host_read_phase(pages.len() as u64 * chunks));
        log.push(Phase::host_compute(flat_sums.len() as f64 * COMBINE_NS_PER_PARTIAL));
    }
    let count: u64 = flat_counts.iter().sum();
    let combined = match func {
        PhysFunc::Sum | PhysFunc::Count => {
            flat_sums.iter().fold(0u64, |acc, v| acc.wrapping_add(*v))
        }
        PhysFunc::Min => flat_sums
            .iter()
            .zip(&flat_counts)
            .filter(|(_, c)| **c > 0)
            .map(|(v, _)| *v)
            .min()
            .unwrap_or(u64::MAX),
        PhysFunc::Max => flat_sums
            .iter()
            .zip(&flat_counts)
            .filter(|(_, c)| **c > 0)
            .map(|(v, _)| *v)
            .max()
            .unwrap_or(0),
    };
    Ok((combined, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_exec::run_filter;
    use crate::layout::{RecordLayout, MASK_COL};
    use crate::loader::load_relation;
    use bbpim_db::plan::{Atom, Query};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::Relation;
    use bbpim_sim::SimConfig;

    fn all(loaded: &LoadedRelation) -> PageSet {
        PageSet::all(loaded.page_count())
    }

    fn setup(mode: EngineMode) -> (PimModule, Relation, RecordLayout, LoadedRelation) {
        let cfg = SimConfig::small_for_tests();
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("lo_price", 8),
                Attribute::numeric("lo_disc", 4),
                Attribute::numeric("d_g", 4),
            ],
        );
        let mut rel = Relation::new(schema);
        for i in 0..500u64 {
            rel.push_row(&[(i * 7) % 256, i % 11, i % 8]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, mode, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        (module, rel, layout, loaded)
    }

    fn filter_all(
        module: &mut PimModule,
        rel: &Relation,
        layout: &RecordLayout,
        loaded: &LoadedRelation,
        filter: Vec<Atom>,
        log: &mut RunLog,
    ) -> Query {
        let q = Query::single(
            "t",
            filter,
            vec![],
            bbpim_db::plan::AggFunc::Sum,
            AggExpr::attr("lo_price"),
        );
        let schema = rel.schema();
        let dnf: Vec<Vec<_>> = q
            .resolve_filter(schema)
            .unwrap()
            .into_iter()
            .map(|conj| {
                conj.into_iter()
                    .map(|a| {
                        let name = &schema.attrs()[a.attr_index()].name;
                        let p = layout.placement(name).unwrap();
                        (a, p)
                    })
                    .collect()
            })
            .collect();
        run_filter(module, layout, loaded, &dnf, &PageSet::all(loaded.page_count()), log).unwrap();
        q
    }

    #[test]
    fn plain_attribute_sum_matches_oracle() {
        for mode in [EngineMode::OneXb, EngineMode::PimDb] {
            let (mut module, rel, layout, loaded) = setup(mode);
            let mut log = RunLog::new();
            filter_all(
                &mut module,
                &rel,
                &layout,
                &loaded,
                vec![Atom::Lt { attr: "lo_price".into(), value: 100u64.into() }],
                &mut log,
            );
            let input = materialize_expr(
                &mut module,
                &layout,
                &loaded,
                &PageSet::all(loaded.page_count()),
                &AggExpr::Attr("lo_price".into()),
                &mut log,
            )
            .unwrap();
            let total = aggregate_masked(
                &mut module,
                &layout,
                &loaded,
                &all(&loaded),
                mode,
                &input,
                MASK_COL,
                PhysFunc::Sum,
                &mut log,
            )
            .unwrap();
            let expected: u64 =
                rel.column_by_name("lo_price").unwrap().values().iter().filter(|v| **v < 100).sum();
            assert_eq!(total, expected, "{mode:?}");
        }
    }

    #[test]
    fn mul_expression_matches_oracle() {
        let (mut module, rel, layout, loaded) = setup(EngineMode::OneXb);
        let mut log = RunLog::new();
        filter_all(&mut module, &rel, &layout, &loaded, vec![], &mut log);
        let expr = AggExpr::Mul("lo_price".into(), "lo_disc".into());
        let input = materialize_expr(&mut module, &layout, &loaded, &all(&loaded), &expr, &mut log)
            .unwrap();
        assert_eq!(input.value.width, 12);
        let total = aggregate_masked(
            &mut module,
            &layout,
            &loaded,
            &all(&loaded),
            EngineMode::OneXb,
            &input,
            MASK_COL,
            PhysFunc::Sum,
            &mut log,
        )
        .unwrap();
        let expected: u64 = (0..rel.len()).map(|r| rel.value(r, 0) * rel.value(r, 1)).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn sub_expression_matches_oracle() {
        let (mut module, rel, layout, loaded) = setup(EngineMode::OneXb);
        // price >= disc always here (disc ≤ 10 < price except small ones);
        // restrict to rows where price ≥ disc to stay in unsigned range.
        let mut log = RunLog::new();
        filter_all(
            &mut module,
            &rel,
            &layout,
            &loaded,
            vec![Atom::Gt { attr: "lo_price".into(), value: 15u64.into() }],
            &mut log,
        );
        let expr = AggExpr::Sub("lo_price".into(), "lo_disc".into());
        let input = materialize_expr(&mut module, &layout, &loaded, &all(&loaded), &expr, &mut log)
            .unwrap();
        let total = aggregate_masked(
            &mut module,
            &layout,
            &loaded,
            &all(&loaded),
            EngineMode::OneXb,
            &input,
            MASK_COL,
            PhysFunc::Sum,
            &mut log,
        )
        .unwrap();
        let expected: u64 = (0..rel.len())
            .filter(|&r| rel.value(r, 0) > 15)
            .map(|r| rel.value(r, 0) - rel.value(r, 1))
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn min_max_aggregation() {
        let (mut module, rel, layout, loaded) = setup(EngineMode::OneXb);
        let mut log = RunLog::new();
        filter_all(&mut module, &rel, &layout, &loaded, vec![], &mut log);
        let input = materialize_expr(
            &mut module,
            &layout,
            &loaded,
            &all(&loaded),
            &AggExpr::Attr("lo_price".into()),
            &mut log,
        )
        .unwrap();
        let min = aggregate_masked(
            &mut module,
            &layout,
            &loaded,
            &all(&loaded),
            EngineMode::OneXb,
            &input,
            MASK_COL,
            PhysFunc::Min,
            &mut log,
        )
        .unwrap();
        let max = aggregate_masked(
            &mut module,
            &layout,
            &loaded,
            &all(&loaded),
            EngineMode::OneXb,
            &input,
            MASK_COL,
            PhysFunc::Max,
            &mut log,
        )
        .unwrap();
        let col = rel.column_by_name("lo_price").unwrap();
        assert_eq!(min, *col.values().iter().min().unwrap());
        assert_eq!(max, *col.values().iter().max().unwrap());
    }

    #[test]
    fn pimdb_aggregation_costs_more_time_and_energy() {
        let (mut m1, rel1, l1, ld1) = setup(EngineMode::OneXb);
        let (mut m2, _rel2, l2, ld2) = setup(EngineMode::PimDb);
        let mut log1 = RunLog::new();
        let mut log2 = RunLog::new();
        filter_all(&mut m1, &rel1, &l1, &ld1, vec![], &mut log1);
        filter_all(&mut m2, &rel1, &l2, &ld2, vec![], &mut log2);
        let i1 = materialize_expr(
            &mut m1,
            &l1,
            &ld1,
            &all(&ld1),
            &AggExpr::Attr("lo_price".into()),
            &mut log1,
        )
        .unwrap();
        let i2 = materialize_expr(
            &mut m2,
            &l2,
            &ld2,
            &all(&ld2),
            &AggExpr::Attr("lo_price".into()),
            &mut log2,
        )
        .unwrap();
        let mut a1 = RunLog::new();
        let mut a2 = RunLog::new();
        let v1 = aggregate_masked(
            &mut m1,
            &l1,
            &ld1,
            &all(&ld1),
            EngineMode::OneXb,
            &i1,
            MASK_COL,
            PhysFunc::Sum,
            &mut a1,
        )
        .unwrap();
        let v2 = aggregate_masked(
            &mut m2,
            &l2,
            &ld2,
            &all(&ld2),
            EngineMode::PimDb,
            &i2,
            MASK_COL,
            PhysFunc::Sum,
            &mut a2,
        )
        .unwrap();
        assert_eq!(v1, v2);
        assert!(a2.total_time_ns() > a1.total_time_ns());
        assert!(a2.total_energy_pj() > a1.total_energy_pj());
    }

    #[test]
    fn scratch_reservation_leaves_room_for_more_programs() {
        let (mut module, _rel, layout, loaded) = setup(EngineMode::OneXb);
        let mut log = RunLog::new();
        let expr = AggExpr::Mul("lo_price".into(), "lo_disc".into());
        let input = materialize_expr(&mut module, &layout, &loaded, &all(&loaded), &expr, &mut log)
            .unwrap();
        // A follow-up mask program must compile inside the remaining
        // scratch without touching the materialised product.
        let prog = crate::filter_exec::build_mask_program_in(
            input.scratch_left,
            &[],
            &[crate::layout::VALID_COL],
            MASK_COL,
        );
        assert!(prog.is_ok());
        assert!(input.scratch_left.width >= crate::layout::MIN_SCRATCH_COLS);
        assert!(input.scratch_left.lo >= input.value.end());
    }
}
