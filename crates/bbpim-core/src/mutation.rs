//! Mutation API v2: INSERT/UPDATE as first-class logical operations.
//!
//! The v1 surface ([`crate::update::UpdateOp`]) hard-coded the paper's
//! narrowest useful shape — a conjunctive WHERE clause and a single SET
//! column. The HTAP streaming work needs more: OR-filters (the query
//! layer has been DNF-capable since API v2), multi-column SET (one
//! filter pass, several MUX rewrites), and INSERT (append rows to the
//! PIM-resident image so write-heavy streams grow the data online).
//! [`Mutation`] captures all of it:
//!
//! * [`Mutation::Update`] — full [`Pred`] filter tree plus a SET list.
//!   Execution reuses the query filter path (zone-planned, DNF mask
//!   program), then applies Algorithm 1's MUX once per target column
//!   under the *shared* select mask; every candidate page's zone map is
//!   widened per written attribute, so OR-filter mutations keep pruning
//!   sound (the bounds of a DNF plan are the per-attribute interval
//!   *union* of its disjuncts, and every page that union admits gets
//!   widened).
//! * [`Mutation::Insert`] — encoded rows appended behind the loaded
//!   image ([`crate::loader::append_rows`]): byte-tagged host writes,
//!   fresh pages allocated on demand, zone maps grown to cover the new
//!   rows.
//!
//! Mutations are built fluently through [`Mutation::update`] /
//! [`Mutation::insert`] (schema-validated, mirroring
//! [`bbpim_db::builder::QueryBuilder`]) and the deprecated
//! `From<UpdateOp>` shim migrates v1 call sites unchanged.

use bbpim_db::plan::{Const, Pred, Query, SelectItem};
use bbpim_db::schema::Schema;
use bbpim_db::Relation;
use bbpim_sim::compiler::{mux, CodeBuilder, ScratchPool};
use bbpim_sim::endurance;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;

use crate::error::CoreError;
use crate::filter_exec::{
    count_mask_bits, mask_bits, mask_transfer_phases, run_filter, write_transfer_bits_to,
};
use crate::layout::{RecordLayout, MASK_COL, TRANSFER_COL};
use crate::loader::{append_rows, LoadedRelation};
use crate::planner::{plan_pages, PageSet};
use bbpim_db::plan::FilterBounds;

/// One logical mutation against a PIM-resident relation.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Append rows (already dictionary-encoded, one `u64` per
    /// attribute in schema order). Built via [`Mutation::insert`],
    /// which resolves string constants at build time.
    Insert {
        /// Encoded rows to append.
        rows: Vec<Vec<u64>>,
    },
    /// `UPDATE t SET a₁ = c₁ [, a₂ = c₂…] WHERE filter` with a full
    /// `And`/`Or` filter tree.
    Update {
        /// WHERE clause (any [`Pred`] shape; normalised to DNF at
        /// execution).
        filter: Pred,
        /// SET list: `(attribute, constant)` pairs, applied under one
        /// shared select mask.
        set: Vec<(String, Const)>,
    },
}

impl Mutation {
    /// Start a fluent UPDATE builder (mirrors
    /// [`bbpim_db::plan::Query::select`]).
    pub fn update() -> MutationBuilder {
        MutationBuilder { filter: None, set: Vec::new() }
    }

    /// Start a fluent INSERT builder.
    pub fn insert() -> InsertBuilder {
        InsertBuilder { rows: Vec::new() }
    }

    /// Short label for traces and reports.
    pub fn label(&self) -> String {
        match self {
            Mutation::Insert { rows } => format!("insert[{} rows]", rows.len()),
            Mutation::Update { set, .. } => {
                let attrs: Vec<&str> = set.iter().map(|(a, _)| a.as_str()).collect();
                format!("update[{}]", attrs.join(","))
            }
        }
    }

    /// The attributes an UPDATE writes (empty for INSERT).
    pub fn set_attrs(&self) -> Vec<&str> {
        match self {
            Mutation::Insert { .. } => Vec::new(),
            Mutation::Update { set, .. } => set.iter().map(|(a, _)| a.as_str()).collect(),
        }
    }

    /// Validate against a schema: SET attributes exist with encodable
    /// constants and no duplicates, the filter resolves, INSERT rows
    /// have the right arity and in-range values.
    ///
    /// # Errors
    ///
    /// [`CoreError::Db`] / [`CoreError::Unsupported`] describing the
    /// first problem found.
    pub fn validate(&self, schema: &Schema) -> Result<(), CoreError> {
        match self {
            Mutation::Insert { rows } => {
                for (i, row) in rows.iter().enumerate() {
                    if row.len() != schema.arity() {
                        return Err(CoreError::Unsupported(format!(
                            "insert row {i} has {} values, schema {} has {}",
                            row.len(),
                            schema.name,
                            schema.arity()
                        )));
                    }
                    for (attr, &v) in schema.attrs().iter().zip(row) {
                        if attr.bits < 64 && v >> attr.bits != 0 {
                            return Err(CoreError::Unsupported(format!(
                                "insert row {i}: value {v} exceeds {} bits of {}",
                                attr.bits, attr.name
                            )));
                        }
                    }
                }
                Ok(())
            }
            Mutation::Update { filter, set } => {
                if set.is_empty() {
                    return Err(CoreError::Unsupported("UPDATE with an empty SET list".into()));
                }
                filter.resolve_dnf(schema)?;
                let mut seen: Vec<&str> = Vec::new();
                for (attr, value) in set {
                    if seen.contains(&attr.as_str()) {
                        return Err(CoreError::Unsupported(format!(
                            "duplicate SET attribute {attr}"
                        )));
                    }
                    seen.push(attr);
                    resolve_const(schema, attr, value)?;
                }
                Ok(())
            }
        }
    }

    /// Apply this mutation to a host-side [`Relation`] — the oracle's
    /// half of snapshot consistency: a replayed prefix of admitted
    /// mutations applied here must leave the catalog bit-identical to
    /// what the PIM engines hold.
    ///
    /// # Errors
    ///
    /// Resolution failures; arity/domain violations on INSERT rows.
    pub fn apply_to(&self, rel: &mut Relation) -> Result<MutationCounts, CoreError> {
        match self {
            Mutation::Insert { rows } => {
                for row in rows {
                    rel.push_row(row)?;
                }
                Ok(MutationCounts { updated: 0, inserted: rows.len() as u64 })
            }
            Mutation::Update { filter, set } => {
                let probe = probe_query(filter);
                let schema = rel.schema();
                let targets: Vec<(usize, u64)> = set
                    .iter()
                    .map(|(attr, value)| resolve_const(schema, attr, value))
                    .collect::<Result<_, CoreError>>()?;
                let hits = bbpim_db::stats::filter_bitvec(&probe, rel)?;
                let mut updated = 0u64;
                for (row, hit) in hits.into_iter().enumerate() {
                    if hit {
                        updated += 1;
                        for &(attr_idx, imm) in &targets {
                            rel.set_value(row, attr_idx, imm)?;
                        }
                    }
                }
                Ok(MutationCounts { updated, inserted: 0 })
            }
        }
    }
}

/// Row counts of one applied mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationCounts {
    /// Records rewritten.
    pub updated: u64,
    /// Records appended.
    pub inserted: u64,
}

#[allow(deprecated)]
impl From<crate::update::UpdateOp> for Mutation {
    /// v1 → v2 shim: the conjunctive filter becomes a one-disjunct
    /// [`Pred`], the single SET column a one-element SET list.
    fn from(op: crate::update::UpdateOp) -> Mutation {
        Mutation::Update { filter: Pred::all(op.filter), set: vec![(op.set_attr, op.set_value)] }
    }
}

/// Fluent UPDATE builder (schema-validated at [`MutationBuilder::build`]).
#[derive(Debug, Clone)]
pub struct MutationBuilder {
    filter: Option<Pred>,
    set: Vec<(String, Const)>,
}

impl MutationBuilder {
    /// Set the WHERE clause; calling again ANDs the predicates, exactly
    /// like [`bbpim_db::builder::QueryBuilder::filter`].
    #[must_use]
    pub fn filter(mut self, pred: Pred) -> Self {
        self.filter = Some(match self.filter.take() {
            None => pred,
            Some(existing) => existing.and(pred),
        });
        self
    }

    /// Append one SET column.
    #[must_use]
    pub fn set(mut self, attr: impl Into<String>, value: impl Into<Const>) -> Self {
        self.set.push((attr.into(), value.into()));
        self
    }

    /// Finish without validation.
    pub fn build_unchecked(self) -> Mutation {
        Mutation::Update { filter: self.filter.unwrap_or_else(Pred::always), set: self.set }
    }

    /// Finish and validate against `schema`.
    ///
    /// # Errors
    ///
    /// See [`Mutation::validate`].
    pub fn build(self, schema: &Schema) -> Result<Mutation, CoreError> {
        let m = self.build_unchecked();
        m.validate(schema)?;
        Ok(m)
    }
}

/// Fluent INSERT builder: rows are given as [`Const`]s and resolved
/// (dictionary strings encoded) against the schema at build time.
#[derive(Debug, Clone, Default)]
pub struct InsertBuilder {
    rows: Vec<Vec<Const>>,
}

impl InsertBuilder {
    /// Append one row (schema attribute order).
    #[must_use]
    pub fn row<I, C>(mut self, values: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: Into<Const>,
    {
        self.rows.push(values.into_iter().map(Into::into).collect());
        self
    }

    /// Finish: encode every constant against `schema` and validate.
    ///
    /// # Errors
    ///
    /// Arity mismatches, unknown dictionary strings, out-of-range
    /// numerics.
    pub fn build(self, schema: &Schema) -> Result<Mutation, CoreError> {
        let mut rows = Vec::with_capacity(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            if row.len() != schema.arity() {
                return Err(CoreError::Unsupported(format!(
                    "insert row {i} has {} values, schema {} has {}",
                    row.len(),
                    schema.name,
                    schema.arity()
                )));
            }
            let mut encoded = Vec::with_capacity(row.len());
            for (attr, value) in schema.attrs().iter().zip(row) {
                encoded.push(match value {
                    Const::Num(v) => *v,
                    Const::Str(s) => attr.encode_str(s)?,
                });
            }
            rows.push(encoded);
        }
        let m = Mutation::Insert { rows };
        m.validate(schema)?;
        Ok(m)
    }
}

/// Outcome of one executed mutation (v2 successor of the v1
/// `UpdateReport`, which is now an alias of this struct).
#[derive(Debug, Clone, PartialEq)]
pub struct MutationReport {
    /// Records rewritten (UPDATE).
    pub records_updated: u64,
    /// Records appended (INSERT).
    pub records_inserted: u64,
    /// Pages the planner let the mutation touch (per partition).
    pub pages_scanned: usize,
    /// Simulated time, nanoseconds.
    pub time_ns: f64,
    /// Shared host-channel occupancy (dispatch + transfer bandwidth),
    /// nanoseconds — the slice of `time_ns` serialised across shards
    /// under contention (see `QueryReport::host_bus_ns`).
    pub host_bus_ns: f64,
    /// PIM energy, picojoules.
    pub energy_pj: f64,
    /// Worst-row accumulated cell writes over the touched pages after
    /// this mutation — the endurance model's input (Fig. 9), surfaced
    /// so write-heavy streams report device wear, not just latency.
    pub max_row_cell_writes: u64,
    /// Cells per crossbar row (the endurance model's write-spread
    /// denominator).
    pub row_cells: usize,
    /// Phase log.
    pub phases: RunLog,
}

impl MutationReport {
    /// Required cell endurance (write cycles) to sustain this mutation
    /// back-to-back for `years` — mirrors
    /// [`crate::result::QueryReport::required_endurance`].
    pub fn required_endurance(&self, years: f64) -> f64 {
        if self.time_ns <= 0.0 {
            return 0.0;
        }
        endurance::required_endurance(self.max_row_cell_writes, self.row_cells, self.time_ns, years)
    }
}

/// The COUNT probe wrapping a mutation's filter for planning and
/// catalog maintenance.
fn probe_query(filter: &Pred) -> Query {
    Query {
        id: "mutation".into(),
        filter: filter.clone(),
        group_by: vec![],
        select: vec![SelectItem::count("n")],
    }
}

/// Resolve one SET target: attribute index plus encoded immediate.
fn resolve_const(schema: &Schema, attr: &str, value: &Const) -> Result<(usize, u64), CoreError> {
    let attr_idx = schema.index_of(attr)?;
    let imm = match value {
        Const::Num(v) => *v,
        Const::Str(s) => schema.attrs()[attr_idx].encode_str(s)?,
    };
    Ok((attr_idx, imm))
}

/// Execute a mutation against one module-resident relation.
///
/// **UPDATE** — plan → filter → one Algorithm 1 MUX per SET column →
/// zone widening. The WHERE tree is resolved to DNF and planned against
/// the per-page zone maps like any query filter (`prune = false` for
/// exhaustive execution); [`run_filter`] leaves one shared select mask,
/// and each SET column is rewritten under it (the mask travels to a
/// target's partition at most once). Every candidate page's zone map is
/// then widened per written attribute — for an OR filter the candidate
/// set is the interval-union plan, so every page any disjunct could
/// have touched stays soundly covered.
///
/// **INSERT** — rows are appended behind the loaded image
/// ([`append_rows`]): fresh pages allocated on demand, VALID bits set,
/// byte-tagged host-write phases charged, zone maps grown over the new
/// rows.
///
/// Both arms keep `relation` (the host-side catalog copy) in sync, so
/// catalog-derived statistics and the replay oracle stay bit-identical
/// to the PIM contents.
///
/// # Errors
///
/// Propagates resolution/compiler/simulator failures.
pub fn run_mutation(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &mut LoadedRelation,
    relation: &mut Relation,
    mutation: &Mutation,
    prune: bool,
) -> Result<MutationReport, CoreError> {
    match mutation {
        Mutation::Insert { rows } => run_insert(module, layout, loaded, relation, rows),
        Mutation::Update { filter, set } => {
            run_multi_update(module, layout, loaded, relation, filter, set, prune)
        }
    }
}

fn run_insert(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &mut LoadedRelation,
    relation: &mut Relation,
    rows: &[Vec<u64>],
) -> Result<MutationReport, CoreError> {
    let mutation = Mutation::Insert { rows: rows.to_vec() };
    mutation.validate(relation.schema())?;
    let (log, touched) = append_rows(module, layout, loaded, relation, rows)?;
    let touched_ids: Vec<_> = touched
        .iter()
        .flat_map(|&pg| (0..layout.partitions()).map(move |p| (p, pg)))
        .map(|(p, pg)| loaded.pages(p)[pg])
        .collect();
    Ok(MutationReport {
        records_updated: 0,
        records_inserted: rows.len() as u64,
        pages_scanned: touched.len(),
        time_ns: log.total_time_ns(),
        host_bus_ns: bbpim_sim::hostbus::log_occupancy_ns(&module.config().host, &log),
        energy_pj: log.total_energy_pj(),
        max_row_cell_writes: module.max_row_cell_writes(&touched_ids),
        row_cells: module.config().crossbar_cols,
        phases: log,
    })
}

fn run_multi_update(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &mut LoadedRelation,
    relation: &mut Relation,
    filter: &Pred,
    set: &[(String, Const)],
    prune: bool,
) -> Result<MutationReport, CoreError> {
    let mut log = RunLog::new();

    // Filter (reusing the query path, zone maps included): the resolved
    // DNF may have several disjuncts; planning unions their bounds.
    let probe = probe_query(filter);
    let schema = relation.schema();
    let dnf = probe.resolve_filter(schema)?;
    let disjuncts: Vec<Vec<_>> = dnf
        .iter()
        .map(|conj| {
            conj.iter()
                .map(|a| {
                    let name = &schema.attrs()[a.attr_index()].name;
                    Ok((a.clone(), layout.placement(name)?))
                })
                .collect::<Result<Vec<_>, CoreError>>()
        })
        .collect::<Result<_, CoreError>>()?;
    let pages = if prune {
        plan_pages(&FilterBounds::from_dnf(&dnf), loaded)
    } else {
        PageSet::all(loaded.page_count())
    };
    log.push(pages.dispatch_phase(&module.config().host, module.policy(), layout.partitions()));
    run_filter(module, layout, loaded, &disjuncts, &pages, &mut log)?;

    // Resolve every SET target up front (placement + immediate).
    let targets: Vec<(crate::layout::AttrPlacement, usize, u64)> = set
        .iter()
        .map(|(attr, value)| {
            let placement = layout.placement(attr)?;
            let (attr_idx, imm) = resolve_const(relation.schema(), attr, value)?;
            Ok((placement, attr_idx, imm))
        })
        .collect::<Result<_, CoreError>>()?;

    let updated = if pages.is_empty() {
        0
    } else {
        // The select bit lives in partition 0's mask column; transfer
        // it at most once per other partition a target lives in, then
        // rewrite each SET column under the shared mask (Algorithm 1).
        let mut transferred: Vec<usize> = Vec::new();
        for &(placement, _, imm) in &targets {
            let select_col = if placement.partition == 0 {
                MASK_COL
            } else {
                if !transferred.contains(&placement.partition) {
                    let bits = mask_bits(module, loaded, &pages, 0, MASK_COL);
                    for phase in mask_transfer_phases(module, loaded, &pages, &bits) {
                        log.push(phase);
                    }
                    write_transfer_bits_to(module, loaded, &bits, placement.partition, &pages)?;
                    transferred.push(placement.partition);
                }
                TRANSFER_COL
            };
            let mut pool = ScratchPool::new(layout.scratch(placement.partition));
            let mut b = CodeBuilder::new(&mut pool);
            mux::compile_mux_update(&mut b, placement.range, imm, select_col)?;
            let prog = b.finish();
            let phase = module.exec_program(&pages.ids(loaded, placement.partition), &prog)?;
            log.push(phase);
        }

        // Zone maintenance: every candidate page may now hold each
        // written immediate.
        for &(_, attr_idx, imm) in &targets {
            loaded.widen_zones(pages.indices(), attr_idx, imm);
        }

        count_mask_bits(module, &pages.ids(loaded, 0), MASK_COL)
    };

    // Keep the host-side catalog copy in sync (hits computed against
    // pre-mutation values, then every SET column patched).
    let selected = bbpim_db::stats::filter_bitvec(&probe, relation)?;
    for (row, hit) in selected.into_iter().enumerate() {
        if hit {
            for &(_, attr_idx, imm) in &targets {
                relation.set_value(row, attr_idx, imm)?;
            }
        }
    }

    let touched_ids: Vec<_> = (0..layout.partitions()).flat_map(|p| pages.ids(loaded, p)).collect();
    Ok(MutationReport {
        records_updated: updated,
        records_inserted: 0,
        pages_scanned: pages.len(),
        time_ns: log.total_time_ns(),
        host_bus_ns: bbpim_sim::hostbus::log_occupancy_ns(&module.config().host, &log),
        energy_pj: log.total_energy_pj(),
        max_row_cell_writes: module.max_row_cell_writes(&touched_ids),
        row_cells: module.config().crossbar_cols,
        phases: log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RecordLayout;
    use crate::loader::load_relation;
    use crate::modes::EngineMode;
    use bbpim_db::builder::col;
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_sim::timeline::PhaseKind;
    use bbpim_sim::SimConfig;

    fn setup(mode: EngineMode) -> (PimModule, Relation, RecordLayout, LoadedRelation) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_city", 6)]);
        let mut rel = Relation::new(schema);
        for i in 0..500u64 {
            rel.push_row(&[i % 256, i % 40]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, mode, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        (module, rel, layout, loaded)
    }

    fn read_attr(
        module: &PimModule,
        layout: &RecordLayout,
        loaded: &LoadedRelation,
        record: usize,
        name: &str,
    ) -> u64 {
        crate::groupby::host_gb::read_attr_value(module, layout, loaded, record, name).unwrap()
    }

    #[test]
    fn or_filter_update_rewrites_both_branches() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        let m = Mutation::update()
            .filter(col("d_city").eq(7u64).or(col("d_city").eq(11u64)))
            .set("d_city", 39u64)
            .build(rel.schema())
            .unwrap();
        let before: Vec<u64> = (0..rel.len()).map(|r| rel.value(r, 1)).collect();
        let rep = run_mutation(&mut module, &layout, &mut loaded, &mut rel, &m, true).unwrap();
        let expected_hits = before.iter().filter(|v| **v == 7 || **v == 11).count() as u64;
        assert_eq!(rep.records_updated, expected_hits);
        for (record, prior) in before.iter().enumerate() {
            let got = read_attr(&module, &layout, &loaded, record, "d_city");
            let expected = if *prior == 7 || *prior == 11 { 39 } else { *prior };
            assert_eq!(got, expected, "record {record}");
            assert_eq!(rel.value(record, 1), expected);
        }
    }

    #[test]
    fn multi_column_set_shares_one_filter_pass() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        let m = Mutation::update()
            .filter(col("lo_v").lt(10u64))
            .set("lo_v", 255u64)
            .set("d_city", 3u64)
            .build(rel.schema())
            .unwrap();
        let hit: Vec<bool> = (0..rel.len()).map(|r| rel.value(r, 0) < 10).collect();
        let rep = run_mutation(&mut module, &layout, &mut loaded, &mut rel, &m, true).unwrap();
        assert_eq!(rep.records_updated, hit.iter().filter(|h| **h).count() as u64);
        for (record, was_hit) in hit.iter().enumerate() {
            if *was_hit {
                assert_eq!(read_attr(&module, &layout, &loaded, record, "lo_v"), 255);
                assert_eq!(read_attr(&module, &layout, &loaded, record, "d_city"), 3);
            }
        }
        // one shared mask: exactly one filter's worth of PIM programs
        // before the two MUX rewrites — the mask is computed once.
        assert!(rep.phases.time_in(PhaseKind::PimLogic) > 0.0);
    }

    #[test]
    fn insert_appends_rows_and_widens_zones() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        let before = loaded.records();
        let zone_before = loaded.zone_map();
        assert!(zone_before.range(1).unwrap().1 < 63);
        let m = Mutation::insert()
            .row(vec![200u64, 63u64])
            .row(vec![201u64, 62u64])
            .build(rel.schema())
            .unwrap();
        let rep = run_mutation(&mut module, &layout, &mut loaded, &mut rel, &m, true).unwrap();
        assert_eq!(rep.records_inserted, 2);
        assert_eq!(loaded.records(), before + 2);
        assert_eq!(rel.len(), before + 2);
        assert_eq!(read_attr(&module, &layout, &loaded, before, "d_city"), 63);
        assert_eq!(read_attr(&module, &layout, &loaded, before + 1, "lo_v"), 201);
        // zones grew to cover the new value
        assert_eq!(loaded.zone_map().range(1).unwrap().1, 63);
        // inserts cross the host channel as byte-tagged writes
        assert!(rep.phases.time_in(PhaseKind::HostWrite) > 0.0);
        assert!(rep.phases.host_bytes_in(PhaseKind::HostWrite) > 0);
    }

    #[test]
    fn insert_allocates_fresh_pages_when_the_image_is_full() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        let rpp = loaded.records_per_page();
        let pages_before = loaded.page_count();
        let free = pages_before * rpp - loaded.records();
        let mut b = Mutation::insert();
        for i in 0..(free + 3) as u64 {
            b = b.row(vec![i % 256, i % 40]);
        }
        let m = b.build(rel.schema()).unwrap();
        run_mutation(&mut module, &layout, &mut loaded, &mut rel, &m, true).unwrap();
        assert_eq!(loaded.page_count(), pages_before + 1);
        assert_eq!(loaded.records(), rel.len());
        // new rows are readable from the fresh page
        let last = loaded.records() - 1;
        assert_eq!(read_attr(&module, &layout, &loaded, last, "lo_v"), ((free + 2) % 256) as u64);
    }

    #[test]
    fn inserted_rows_are_selected_by_later_filters() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        // no existing row has d_city == 63
        let m = Mutation::insert().row(vec![9u64, 63u64]).build(rel.schema()).unwrap();
        run_mutation(&mut module, &layout, &mut loaded, &mut rel, &m, true).unwrap();
        let upd = Mutation::update()
            .filter(col("d_city").eq(63u64))
            .set("lo_v", 77u64)
            .build(rel.schema())
            .unwrap();
        let rep = run_mutation(&mut module, &layout, &mut loaded, &mut rel, &upd, true).unwrap();
        assert_eq!(rep.records_updated, 1);
        assert_eq!(read_attr(&module, &layout, &loaded, loaded.records() - 1, "lo_v"), 77);
    }

    #[test]
    fn builder_validates_against_schema() {
        let (_, rel, _, _) = setup(EngineMode::OneXb);
        let schema = rel.schema();
        assert!(Mutation::update().set("nope", 1u64).build(schema).is_err());
        assert!(Mutation::update().filter(col("lo_v").eq(1u64)).build(schema).is_err());
        assert!(Mutation::update().set("lo_v", 1u64).set("lo_v", 2u64).build(schema).is_err());
        assert!(Mutation::insert().row(vec![1u64]).build(schema).is_err());
        assert!(Mutation::insert().row(vec![1u64, 999u64]).build(schema).is_err());
        assert!(Mutation::update()
            .filter(col("lo_v").eq(1u64))
            .set("d_city", 5u64)
            .build(schema)
            .is_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn update_op_shim_round_trips() {
        use bbpim_db::plan::Atom;
        let op = crate::update::UpdateOp {
            filter: vec![Atom::Eq { attr: "d_city".into(), value: 7u64.into() }],
            set_attr: "d_city".into(),
            set_value: 39u64.into(),
        };
        let m: Mutation = op.into();
        match &m {
            Mutation::Update { filter, set } => {
                assert_eq!(set, &vec![("d_city".to_string(), Const::from(39u64))]);
                assert_eq!(filter.dnf().len(), 1);
            }
            _ => panic!("shim must produce an Update"),
        }
    }

    #[test]
    fn oracle_apply_matches_pim_state() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        let mut oracle = rel.clone();
        let ms = vec![
            Mutation::update()
                .filter(col("d_city").eq(5u64).or(col("lo_v").gt(250u64)))
                .set("d_city", 1u64)
                .build(rel.schema())
                .unwrap(),
            Mutation::insert().row(vec![130u64, 22u64]).build(rel.schema()).unwrap(),
            Mutation::update()
                .filter(col("lo_v").eq(130u64))
                .set("lo_v", 131u64)
                .set("d_city", 2u64)
                .build(rel.schema())
                .unwrap(),
        ];
        for m in &ms {
            run_mutation(&mut module, &layout, &mut loaded, &mut rel, m, true).unwrap();
            m.apply_to(&mut oracle).unwrap();
        }
        assert_eq!(rel.len(), oracle.len());
        for row in 0..rel.len() {
            assert_eq!(rel.row(row), oracle.row(row), "row {row}");
        }
        // and the PIM image agrees with both
        for row in 0..rel.len() {
            assert_eq!(read_attr(&module, &layout, &loaded, row, "lo_v"), oracle.value(row, 0));
            assert_eq!(read_attr(&module, &layout, &loaded, row, "d_city"), oracle.value(row, 1));
        }
    }
}
