//! The physical planner: which pages must a query touch?
//!
//! The engine used to run every bulk-bitwise program over *all* pages
//! holding the relation. This module plans a [`PageSet`] instead: the
//! query's [`FilterBounds`] are tested against every page's
//! [`bbpim_db::zonemap::ZoneMap`] (built at load time, widened by
//! UPDATEs), and pages whose
//! value ranges cannot satisfy the conjunction are *pruned* — no
//! request descriptor is posted, no crossbar switches, no result line is
//! read. Pruning is a proof of absence, so pruned pages behave exactly
//! as if their mask column were all-false: downstream filter,
//! aggregation, GROUP BY and UPDATE stages simply never visit them.
//!
//! Page indices are shared across vertical partitions (record *i* sits
//! at the same page offset in every partition), so one `PageSet` plans
//! all partitions of a query.

use bbpim_db::plan::FilterBounds;
use bbpim_sim::config::HostConfig;
use bbpim_sim::module::{PageId, XferPolicy};
use bbpim_sim::timeline::Phase;

use crate::loader::LoadedRelation;

/// The planned subset of page indices (per partition) a query touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageSet {
    /// Candidate page indices, ascending and deduplicated.
    indices: Vec<usize>,
    /// Pages per partition in the loaded relation.
    total: usize,
}

impl PageSet {
    /// The exhaustive plan: every one of `total` pages is a candidate.
    pub fn all(total: usize) -> Self {
        PageSet { indices: (0..total).collect(), total }
    }

    /// A plan from explicit page indices (sorted and deduplicated).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of `0..total`.
    pub fn from_indices(mut indices: Vec<usize>, total: usize) -> Self {
        indices.sort_unstable();
        indices.dedup();
        assert!(indices.last().is_none_or(|&i| i < total), "page index out of range");
        PageSet { indices, total }
    }

    /// Candidate page count.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when every page was pruned.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Pages per partition the plan was made over.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Pages proven irrelevant (`total − len`).
    pub fn pruned(&self) -> usize {
        self.total - self.indices.len()
    }

    /// True when nothing was pruned.
    pub fn is_exhaustive(&self) -> bool {
        self.indices.len() == self.total
    }

    /// The candidate page indices, ascending.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The first candidate page index, if any.
    pub fn first(&self) -> Option<usize> {
        self.indices.first().copied()
    }

    /// The candidate pages of one partition, as simulator page ids.
    pub fn ids(&self, loaded: &LoadedRelation, partition: usize) -> Vec<PageId> {
        let pages = loaded.pages(partition);
        self.indices.iter().map(|&i| pages[i]).collect()
    }

    /// Iterate `(page_index, page_id)` over one partition's candidates.
    pub fn entries<'a>(
        &'a self,
        loaded: &'a LoadedRelation,
        partition: usize,
    ) -> impl Iterator<Item = (usize, PageId)> + 'a {
        let pages = loaded.pages(partition);
        self.indices.iter().map(move |&i| (i, pages[i]))
    }

    /// Maximal runs of consecutive candidate page indices, as inclusive
    /// `[lo, hi]` ranges — the run-list a batched dispatch descriptor
    /// carries.
    pub fn runs(&self) -> Vec<(usize, usize)> {
        let mut runs: Vec<(usize, usize)> = Vec::new();
        for &i in &self.indices {
            match runs.last_mut() {
                Some((_, hi)) if *hi + 1 == i => *hi = i,
                _ => runs.push((i, i)),
            }
        }
        runs
    }

    /// Number of contiguous runs in the candidate set.
    pub fn run_count(&self) -> usize {
        self.runs().len()
    }

    /// The host-dispatch phase for posting this plan to `partitions`
    /// vertical partitions under `policy`.
    ///
    /// Legacy: one doorbell per page per partition
    /// (`len × partitions × dispatch_ns_per_page`, no byte tag — the
    /// occupancy is the duration). Batched: one descriptor per
    /// partition whose run-list covers the candidate set, costing one
    /// doorbell per *run* and tagging the descriptor bytes
    /// (`header + runs × run_bytes`) for the ledger. All-singleton runs
    /// degenerate to exactly the legacy cost.
    pub fn dispatch_phase(
        &self,
        host: &HostConfig,
        policy: XferPolicy,
        partitions: usize,
    ) -> Phase {
        if self.indices.is_empty() {
            return Phase::host_dispatch(0.0);
        }
        if !policy.batch_dispatch {
            return Phase::host_dispatch(
                (self.indices.len() * partitions) as f64 * host.dispatch_ns_per_page,
            );
        }
        let runs = self.run_count() as u64;
        let time_ns = (runs as usize * partitions) as f64 * host.dispatch_ns_per_page;
        let bytes =
            partitions as u64 * (host.dispatch_header_bytes + runs * host.dispatch_run_bytes);
        Phase::host_dispatch_batched(time_ns, bytes)
    }
}

/// Plan the candidate pages of a conjunction: pages whose zone map could
/// satisfy `bounds`. An unsatisfiable conjunction plans the empty set.
pub fn plan_pages(bounds: &FilterBounds, loaded: &LoadedRelation) -> PageSet {
    let total = loaded.page_count();
    if !bounds.satisfiable() {
        return PageSet::from_indices(Vec::new(), total);
    }
    let indices = (0..total).filter(|&i| bounds.can_match(loaded.page_zone(i))).collect::<Vec<_>>();
    PageSet::from_indices(indices, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RecordLayout;
    use crate::loader::load_relation;
    use crate::modes::EngineMode;
    use bbpim_db::plan::{Atom, Query};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::Relation;
    use bbpim_sim::module::PimModule;
    use bbpim_sim::SimConfig;

    /// A relation sorted by `lo_v` so page zones are tight and disjoint.
    fn sorted_setup() -> (PimModule, Relation, LoadedRelation) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 10), Attribute::numeric("d_g", 4)]);
        let mut rel = Relation::new(schema);
        for i in 0..1000u64 {
            rel.push_row(&[i, i % 10]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, EngineMode::OneXb, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        (module, rel, loaded)
    }

    fn bounds(rel: &Relation, filter: Vec<Atom>) -> FilterBounds {
        let q = Query::single(
            "t",
            filter,
            vec![],
            bbpim_db::plan::AggFunc::Sum,
            bbpim_db::plan::AggExpr::attr("lo_v"),
        );
        FilterBounds::of_query(&q, rel.schema()).unwrap()
    }

    #[test]
    fn eq_on_sorted_attribute_plans_one_page() {
        let (_m, rel, loaded) = sorted_setup();
        // 256 records/page in the small config → value 300 is on page 1
        let b = bounds(&rel, vec![Atom::Eq { attr: "lo_v".into(), value: 300u64.into() }]);
        let plan = plan_pages(&b, &loaded);
        assert_eq!(plan.indices(), &[1]);
        assert_eq!(plan.pruned(), loaded.page_count() - 1);
        assert!(!plan.is_exhaustive());
    }

    #[test]
    fn range_filter_plans_the_covering_pages() {
        let (_m, rel, loaded) = sorted_setup();
        let b = bounds(
            &rel,
            vec![Atom::Between { attr: "lo_v".into(), lo: 200u64.into(), hi: 600u64.into() }],
        );
        let plan = plan_pages(&b, &loaded);
        assert_eq!(plan.indices(), &[0, 1, 2]);
    }

    #[test]
    fn unconstrained_attribute_plans_everything() {
        let (_m, rel, loaded) = sorted_setup();
        // every page holds all d_g values 0..10
        let b = bounds(&rel, vec![Atom::Eq { attr: "d_g".into(), value: 3u64.into() }]);
        assert!(plan_pages(&b, &loaded).is_exhaustive());
        let b = bounds(&rel, vec![]);
        assert!(plan_pages(&b, &loaded).is_exhaustive());
    }

    #[test]
    fn unsatisfiable_filter_plans_nothing() {
        let (_m, rel, loaded) = sorted_setup();
        let b = bounds(&rel, vec![Atom::Lt { attr: "lo_v".into(), value: 0u64.into() }]);
        let plan = plan_pages(&b, &loaded);
        assert!(plan.is_empty());
        assert_eq!(plan.pruned(), loaded.page_count());
    }

    #[test]
    fn page_set_surface() {
        let set = PageSet::from_indices(vec![3, 1, 3], 5);
        assert_eq!(set.indices(), &[1, 3]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total(), 5);
        assert_eq!(set.pruned(), 3);
        assert_eq!(set.first(), Some(1));
        assert!(PageSet::all(4).is_exhaustive());
        assert!(PageSet::from_indices(vec![], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_set_rejects_out_of_range() {
        let _ = PageSet::from_indices(vec![5], 5);
    }
}
