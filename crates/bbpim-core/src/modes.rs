//! Engine modes — the three systems Fig. 6–9 of the paper compare.

use serde::{Deserialize, Serialize};

/// Which variant of the PIM engine executes queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineMode {
    /// `one-xb`: the whole pre-joined record in a single crossbar row;
    /// aggregation through the peripheral circuit (the paper's best
    /// configuration).
    OneXb,
    /// `two-xb`: vertical partitioning — fact attributes in one
    /// crossbar, dimension attributes in an aligned second crossbar;
    /// intermediate masks travel through the host (the paper's
    /// worst-case partitioning study).
    TwoXb,
    /// `pimdb`: identical to `one-xb` except aggregation runs as pure
    /// bulk-bitwise logic (the prior-work baseline the aggregation
    /// circuit improves on).
    PimDb,
}

impl EngineMode {
    /// Number of vertical partitions (crossbars per record).
    pub fn partitions(&self) -> usize {
        match self {
            EngineMode::OneXb | EngineMode::PimDb => 1,
            EngineMode::TwoXb => 2,
        }
    }

    /// Does aggregation use the peripheral circuit (vs pure bitwise)?
    pub fn uses_agg_circuit(&self) -> bool {
        !matches!(self, EngineMode::PimDb)
    }

    /// Label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            EngineMode::OneXb => "one_xb",
            EngineMode::TwoXb => "two_xb",
            EngineMode::PimDb => "pimdb",
        }
    }

    /// All three modes in figure order.
    pub fn all() -> [EngineMode; 3] {
        [EngineMode::OneXb, EngineMode::TwoXb, EngineMode::PimDb]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_and_circuit() {
        assert_eq!(EngineMode::OneXb.partitions(), 1);
        assert_eq!(EngineMode::TwoXb.partitions(), 2);
        assert_eq!(EngineMode::PimDb.partitions(), 1);
        assert!(EngineMode::OneXb.uses_agg_circuit());
        assert!(!EngineMode::PimDb.uses_agg_circuit());
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(EngineMode::OneXb.label(), "one_xb");
        assert_eq!(EngineMode::TwoXb.label(), "two_xb");
        assert_eq!(EngineMode::PimDb.label(), "pimdb");
    }
}
