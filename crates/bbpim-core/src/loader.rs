//! Loading a relation into the PIM module.
//!
//! Records fill pages in order; every partition gets its own page run
//! (aligned: record *i* sits at the same page offset and slot in every
//! partition). Padding rows of the last page keep `VALID = 0`, so
//! filters never select them.
//!
//! Loading is a one-time cost outside query measurement; endurance
//! counters are reset after the load.

use bbpim_db::relation::Relation;
use bbpim_db::zonemap::ZoneMap;
use bbpim_sim::module::{PageId, PimModule};
use bbpim_sim::timeline::{Phase, RunLog};

use crate::error::CoreError;
use crate::layout::{RecordLayout, VALID_COL};

/// A relation resident in PIM.
///
/// Besides the page runs, the loader keeps one [`ZoneMap`] per page
/// index — the per-attribute min/max over the records the page holds —
/// which is what the physical planner tests filters against
/// ([`crate::planner::plan_pages`]). UPDATEs widen these maps (see
/// [`LoadedRelation::widen_zones`]) so pruning stays sound after writes.
#[derive(Debug, Clone)]
pub struct LoadedRelation {
    /// Pages per partition: `pages[partition][page_index]`.
    pages: Vec<Vec<PageId>>,
    /// Per page index (shared across partitions): min/max per attribute.
    page_zones: Vec<ZoneMap>,
    records: usize,
    records_per_page: usize,
}

impl LoadedRelation {
    /// Number of loaded records.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Pages of one partition.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn pages(&self, partition: usize) -> &[PageId] {
        &self.pages[partition]
    }

    /// Page count per partition (the paper's `M`).
    pub fn page_count(&self) -> usize {
        self.pages[0].len()
    }

    /// Records per page.
    pub fn records_per_page(&self) -> usize {
        self.records_per_page
    }

    /// All pages of all partitions (for endurance resets).
    pub fn all_pages(&self) -> Vec<PageId> {
        self.pages.iter().flatten().copied().collect()
    }

    /// Page index and in-page slot of a record.
    pub fn locate(&self, record: usize) -> (usize, usize) {
        (record / self.records_per_page, record % self.records_per_page)
    }

    /// Global record index from page index and in-page slot.
    pub fn record_at(&self, page_index: usize, slot: usize) -> usize {
        page_index * self.records_per_page + slot
    }

    /// The zone map of one page index.
    ///
    /// # Panics
    ///
    /// Panics if `page_index` is out of range.
    pub fn page_zone(&self, page_index: usize) -> &ZoneMap {
        &self.page_zones[page_index]
    }

    /// All per-page zone maps, in page order.
    pub fn page_zones(&self) -> &[ZoneMap] {
        &self.page_zones
    }

    /// The whole loaded relation's zone map (merge over pages).
    pub fn zone_map(&self) -> ZoneMap {
        let arity = self.page_zones.first().map(ZoneMap::arity).unwrap_or(0);
        let mut zm = ZoneMap::empty(arity);
        for page in &self.page_zones {
            zm.merge(page);
        }
        zm
    }

    /// Widen the given pages' zones so attribute `attr_idx` also covers
    /// `value` — UPDATE maintenance: after a MUX rewrite the affected
    /// pages may hold the new value, and the maps must keep
    /// over-approximating the live contents.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range page index or attribute.
    pub fn widen_zones(&mut self, page_indices: &[usize], attr_idx: usize, value: u64) {
        for &idx in page_indices {
            self.page_zones[idx].widen(attr_idx, value);
        }
    }
}

/// Write `rel` into `module` under `layout`.
///
/// # Errors
///
/// Propagates allocation failures ([`bbpim_sim::SimError::OutOfCapacity`])
/// and placement errors.
pub fn load_relation(
    module: &mut PimModule,
    rel: &Relation,
    layout: &RecordLayout,
) -> Result<LoadedRelation, CoreError> {
    let records_per_page = module.config().records_per_page();
    let page_count = rel.len().div_ceil(records_per_page).max(1);
    let mut pages = Vec::with_capacity(layout.partitions());
    for _ in 0..layout.partitions() {
        pages.push(module.alloc_pages(page_count)?);
    }

    // Resolve attribute columns once.
    let mut cols: Vec<(usize, crate::layout::AttrPlacement)> = Vec::new();
    for (idx, attr) in rel.schema().attrs().iter().enumerate() {
        if layout.is_excluded(&attr.name) {
            continue;
        }
        cols.push((idx, layout.placement(&attr.name)?));
    }

    let mut page_zones = vec![ZoneMap::empty(rel.schema().arity()); page_count];
    for record in 0..rel.len() {
        let page_idx = record / records_per_page;
        let slot = record % records_per_page;
        for partition_pages in &pages {
            let page = module.page_mut(partition_pages[page_idx]);
            page.write_record_bits(slot, VALID_COL, 1, 1)?;
        }
        for &(col_idx, placement) in &cols {
            let value = rel.value(record, col_idx);
            let page = module.page_mut(pages[placement.partition][page_idx]);
            page.write_record_bits(slot, placement.range.lo, placement.range.width, value)?;
        }
        for attr_idx in 0..rel.schema().arity() {
            page_zones[page_idx].widen(attr_idx, rel.value(record, attr_idx));
        }
    }

    let loaded = LoadedRelation { pages, page_zones, records: rel.len(), records_per_page };
    // Loading is not part of query endurance.
    module.reset_endurance(&loaded.all_pages());
    Ok(loaded)
}

/// Append encoded rows behind an already-loaded relation.
///
/// Unlike [`load_relation`] this is an *online* operation — part of the
/// measured workload, charged on the host channel as byte-tagged writes
/// (INSERT data crosses the bus) plus a dispatch phase for the touched
/// pages, and it does **not** reset endurance counters: streamed
/// inserts wear cells, which is exactly what the endurance model wants
/// to see. Fresh pages are allocated on demand when the current image
/// is full; new rows keep the aligned slot/page invariant and the
/// touched pages' zone maps are widened over the new values. The
/// host-side catalog copy `rel` is appended in lockstep.
///
/// Returns the phase log and the touched page indices (in page order).
///
/// # Errors
///
/// Row arity/domain violations, allocation failures
/// ([`bbpim_sim::SimError::OutOfCapacity`]), and placement errors. On
/// error some rows may already be applied (mutations are not atomic);
/// callers treat this as fatal for the stream.
pub fn append_rows(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &mut LoadedRelation,
    rel: &mut Relation,
    rows: &[Vec<u64>],
) -> Result<(RunLog, Vec<usize>), CoreError> {
    let mut log = RunLog::new();
    if rows.is_empty() {
        return Ok((log, Vec::new()));
    }

    let mut cols: Vec<(usize, crate::layout::AttrPlacement)> = Vec::new();
    for (idx, attr) in rel.schema().attrs().iter().enumerate() {
        if layout.is_excluded(&attr.name) {
            continue;
        }
        cols.push((idx, layout.placement(&attr.name)?));
    }

    let mut touched: Vec<usize> = Vec::new();
    for row in rows {
        // catalog first: push_row validates arity and bit domains
        rel.push_row(row)?;
        let record = loaded.records;
        let page_idx = record / loaded.records_per_page;
        let slot = record % loaded.records_per_page;
        if page_idx == loaded.page_count() {
            // image full: grow every partition by one aligned page
            for partition_pages in &mut loaded.pages {
                partition_pages.push(module.alloc_pages(1)?[0]);
            }
            loaded.page_zones.push(ZoneMap::empty(rel.schema().arity()));
        }
        for partition_pages in &loaded.pages {
            let page = module.page_mut(partition_pages[page_idx]);
            page.write_record_bits(slot, VALID_COL, 1, 1)?;
        }
        for &(col_idx, placement) in &cols {
            let page = module.page_mut(loaded.pages[placement.partition][page_idx]);
            page.write_record_bits(slot, placement.range.lo, placement.range.width, row[col_idx])?;
        }
        for (attr_idx, &value) in row.iter().enumerate() {
            loaded.page_zones[page_idx].widen(attr_idx, value);
        }
        loaded.records += 1;
        if touched.last() != Some(&page_idx) {
            touched.push(page_idx);
        }
    }

    // Host-channel accounting: one dispatch over the touched pages plus
    // the row payload itself, written per partition as memory lines.
    let host = &module.config().host;
    log.push(Phase::host_dispatch(
        touched.len() as f64 * layout.partitions() as f64 * host.dispatch_ns_per_page,
    ));
    let row_bytes = module.config().crossbar_cols.div_ceil(8) as u64;
    let lines = (rows.len() as u64 * row_bytes).div_ceil(host.line_bytes as u64).max(1);
    for _ in 0..layout.partitions() {
        log.push(module.host_write_phase(lines));
    }
    Ok((log, touched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RecordLayout;
    use crate::modes::EngineMode;
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_sim::SimConfig;

    fn small_setup(records: usize) -> (PimModule, Relation, RecordLayout) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_a", 8), Attribute::numeric("d_b", 6)]);
        let mut rel = Relation::new(schema);
        for i in 0..records {
            rel.push_row(&[(i % 251) as u64, (i % 61) as u64]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, EngineMode::OneXb, &[]).unwrap();
        (PimModule::new(cfg), rel, layout)
    }

    #[test]
    fn roundtrip_values_through_pim() {
        let (mut module, rel, layout) = small_setup(300);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        assert_eq!(loaded.records(), 300);
        let a = layout.placement("lo_a").unwrap();
        for record in [0usize, 1, 255, 299] {
            let (pg, slot) = loaded.locate(record);
            let page = module.page(loaded.pages(0)[pg]);
            let got = page.read_record_bits(slot, a.range.lo, a.range.width).unwrap();
            assert_eq!(got, rel.value(record, 0), "record {record}");
        }
    }

    #[test]
    fn valid_bits_set_for_records_only() {
        let (mut module, rel, layout) = small_setup(300);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        // capacity = 256 records/page in the small config (4 xb × 64 rows)
        let rpp = loaded.records_per_page();
        let last_page = module.page(loaded.pages(0)[loaded.page_count() - 1]);
        let in_last = 300 - rpp; // records in the final page
        for slot in 0..rpp {
            let valid = last_page.read_record_bits(slot, VALID_COL, 1).unwrap();
            assert_eq!(valid == 1, slot < in_last, "slot {slot}");
        }
    }

    #[test]
    fn page_count_covers_records() {
        let (mut module, rel, layout) = small_setup(513);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        assert_eq!(loaded.page_count(), 513usize.div_ceil(loaded.records_per_page()));
        assert_eq!(loaded.record_at(1, 3), loaded.records_per_page() + 3);
    }

    #[test]
    fn two_partition_load_is_aligned() {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_a", 8), Attribute::numeric("d_b", 6)]);
        let mut rel = Relation::new(schema);
        for i in 0..100 {
            rel.push_row(&[i % 256, i % 60]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, EngineMode::TwoXb, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        let b = layout.placement("d_b").unwrap();
        assert_eq!(b.partition, 1);
        for record in [0usize, 57, 99] {
            let (pg, slot) = loaded.locate(record);
            let page = module.page(loaded.pages(1)[pg]);
            let got = page.read_record_bits(slot, b.range.lo, b.range.width).unwrap();
            assert_eq!(got, rel.value(record, 1));
        }
    }

    #[test]
    fn module_capacity_exhaustion_is_reported() {
        // shrink the module to 2 pages, then load 3 pages worth
        let mut cfg = SimConfig::small_for_tests();
        cfg.module_capacity_bytes = (cfg.page_bytes as u64) * 2;
        let schema = Schema::new("t", vec![Attribute::numeric("lo_a", 8)]);
        let mut rel = Relation::new(schema);
        let rpp = cfg.records_per_page();
        for i in 0..(3 * rpp) {
            rel.push_row(&[(i % 251) as u64]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, EngineMode::OneXb, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let err = load_relation(&mut module, &rel, &layout).unwrap_err();
        assert!(matches!(
            err,
            crate::error::CoreError::Sim(bbpim_sim::SimError::OutOfCapacity { .. })
        ));
    }

    #[test]
    fn page_zones_cover_each_pages_records() {
        let (mut module, rel, layout) = small_setup(600);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        assert_eq!(loaded.page_zones().len(), loaded.page_count());
        let rpp = loaded.records_per_page();
        for (pg, zone) in loaded.page_zones().iter().enumerate() {
            let recs = (pg * rpp)..((pg + 1) * rpp).min(loaded.records());
            for attr in 0..rel.schema().arity() {
                let lo = recs.clone().map(|r| rel.value(r, attr)).min().unwrap();
                let hi = recs.clone().map(|r| rel.value(r, attr)).max().unwrap();
                assert_eq!(zone.range(attr), Some((lo, hi)), "page {pg} attr {attr}");
            }
        }
        // merged zone equals the relation's own
        assert_eq!(loaded.zone_map(), rel.zone_map());
    }

    #[test]
    fn widen_zones_grows_the_named_pages_only() {
        let (mut module, rel, layout) = small_setup(600);
        let mut loaded = load_relation(&mut module, &rel, &layout).unwrap();
        let before: Vec<_> = loaded.page_zones().to_vec();
        loaded.widen_zones(&[1], 0, 255);
        assert_eq!(loaded.page_zone(0), &before[0]);
        assert_eq!(loaded.page_zone(1).range(0).unwrap().1, 255);
    }

    #[test]
    fn endurance_reset_after_load() {
        let (mut module, rel, layout) = small_setup(100);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        assert_eq!(module.max_row_cell_writes(&loaded.all_pages()), 0);
    }
}
