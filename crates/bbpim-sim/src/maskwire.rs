//! The host-channel wire format for mask/bitmap transfers.
//!
//! Every bit-vector that crosses the host↔module channel (semijoin key
//! bitmaps, two-crossbar per-disjunct mask transfers) is sent as a fixed
//! 8-byte header (origin, length, encoding tag) plus whichever payload
//! encoding is smaller:
//!
//! * **bit-packed** — `⌈len/8⌉` bytes, the dense fallback scattered
//!   masks degrade to;
//! * **run-length** — per run of set bits, the zero-gap before it and
//!   its length, both LEB128 varints. Selective filters set long runs,
//!   which this collapses to a handful of bytes.
//!
//! The codec lives in `bbpim-sim` so both storage engines can charge
//! the shared bus wire bytes instead of raw mask lines; `bbpim-join`'s
//! `KeyBitmap` delegates here for its own wire accounting.

/// Fixed per-transfer header bytes (origin + length + encoding tag).
pub const WIRE_HEADER_BYTES: u64 = 8;

/// Append a LEB128 varint.
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; `None` on truncated input.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maximal runs of consecutive set bits, as inclusive `[lo, hi]` index
/// ranges, ascending.
pub fn bit_runs(bits: &[bool]) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for (i, &set) in bits.iter().enumerate() {
        if !set {
            continue;
        }
        let i = i as u64;
        match runs.last_mut() {
            Some((_, hi)) if *hi + 1 == i => *hi = i,
            _ => runs.push((i, i)),
        }
    }
    runs
}

/// Bit-packed payload size, bytes.
pub fn raw_bytes(len: u64) -> u64 {
    len.div_ceil(8)
}

/// Run-length payload: per run, (gap since previous run's end, run
/// length) as varints.
pub fn encode_rle(bits: &[bool]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut cursor = 0u64;
    for (lo, hi) in bit_runs(bits) {
        push_varint(&mut out, lo - cursor);
        push_varint(&mut out, hi - lo + 1);
        cursor = hi + 1;
    }
    out
}

/// Rebuild a bit-vector of length `len` from its run-length payload;
/// `None` on corrupt input (truncated varint, runs past `len`, zero-run).
pub fn decode_rle(len: u64, payload: &[u8]) -> Option<Vec<bool>> {
    let mut bits = vec![false; len as usize];
    let mut pos = 0usize;
    let mut cursor = 0u64;
    while pos < payload.len() {
        let gap = read_varint(payload, &mut pos)?;
        let run = read_varint(payload, &mut pos)?;
        let start = cursor.checked_add(gap)?;
        let end = start.checked_add(run)?;
        if end > len || run == 0 {
            return None;
        }
        for b in &mut bits[start as usize..end as usize] {
            *b = true;
        }
        cursor = end;
    }
    Some(bits)
}

/// Bytes actually sent for `bits`: the header plus the smaller encoding.
pub fn wire_bytes(bits: &[bool]) -> u64 {
    WIRE_HEADER_BYTES + raw_bytes(bits.len() as u64).min(encode_rle(bits).len() as u64)
}

/// Host-channel lines the transfer occupies at `line_bytes` per line.
pub fn wire_lines(bits: &[bool], line_bytes: u64) -> u64 {
    wire_bytes(bits).div_ceil(line_bytes.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(set: &[usize], len: usize) -> Vec<bool> {
        let mut v = vec![false; len];
        for &i in set {
            v[i] = true;
        }
        v
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        assert_eq!(read_varint(&[0x80], &mut 0), None);
    }

    #[test]
    fn rle_roundtrips_adversarial_shapes() {
        let len = 2048usize;
        let shapes: Vec<Vec<usize>> = vec![
            vec![],                        // empty
            (0..len).collect(),            // full
            (0..len).step_by(2).collect(), // alternating
            vec![0],                       // lone head
            vec![len - 1],                 // lone tail
            (100..1700).collect(),         // one long run
            vec![0, 1, 2, 700, 701, 2000], // mixed
        ];
        for set in shapes {
            let b = bits(&set, len);
            let back = decode_rle(len as u64, &encode_rle(&b)).unwrap();
            assert_eq!(back, b);
        }
    }

    #[test]
    fn wire_never_exceeds_header_plus_bitpacked() {
        for set in [vec![], (0..512).step_by(2).collect::<Vec<_>>(), (5..400).collect()] {
            let b = bits(&set, 512);
            assert!(wire_bytes(&b) <= WIRE_HEADER_BYTES + raw_bytes(512));
        }
    }

    #[test]
    fn long_runs_collapse() {
        let b = bits(&(365..730).collect::<Vec<_>>(), 2556);
        assert_eq!(raw_bytes(b.len() as u64), 320);
        assert!(encode_rle(&b).len() <= 4);
        assert_eq!(wire_lines(&b, 64), 1);
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(decode_rle(10, &[0x80]).is_none()); // truncated
        assert!(decode_rle(10, &[0, 11]).is_none()); // past end
        assert!(decode_rle(10, &[0, 0]).is_none()); // zero run
    }
}
