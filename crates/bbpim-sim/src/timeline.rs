//! Phase-based time / energy / power accounting.
//!
//! Query execution decomposes into sequential *phases* (issue + PIM
//! logic, aggregation-circuit runs, host line reads, host compute…).
//! Each [`Phase`] carries its simulated duration, the PIM-module energy
//! it consumed, and the instantaneous power one PIM chip draws while the
//! phase runs. A [`RunLog`] accumulates phases and yields the three
//! quantities the paper reports per query: execution latency (Fig. 6),
//! PIM energy (Fig. 7) and peak per-chip power (Fig. 8).

use serde::{Deserialize, Serialize};

/// What a phase was doing (used for reporting breakdowns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Bulk-bitwise logic executing a microprogram (incl. request issue).
    PimLogic,
    /// The peripheral aggregation circuits are running.
    PimAggCircuit,
    /// Pure bulk-bitwise reduction (PIMDB-style aggregation).
    PimReduce,
    /// Page controllers expanding a compressed mask transfer into
    /// crossbar mask columns (module-local: the wire bytes already
    /// crossed the channel in the preceding host read/write phases).
    PimUnpack,
    /// Page controllers streaming a crossbar mask column into its wire
    /// encoding before a compressed host read — the module-local mirror
    /// of [`PhaseKind::PimUnpack`] for the read direction.
    PimPack,
    /// Page controllers folding per-crossbar aggregation partials into
    /// one finalised partial per physical aggregate, so only that
    /// partial crosses the channel instead of per-page result lines.
    PimCombine,
    /// Host reading cache lines from the PIM rank.
    HostRead,
    /// Host writing cache lines into the PIM rank.
    HostWrite,
    /// Host-only computation (hash aggregation, model evaluation…).
    HostCompute,
    /// Host-side query orchestration: planning the page set and posting
    /// one PIM request descriptor per huge page to be touched. The
    /// journal extension of the paper measures this host work dominating
    /// end-to-end time for selective queries, which is what zone-map
    /// pruning removes for pages proven irrelevant.
    HostDispatch,
}

impl PhaseKind {
    /// Every phase kind, in declaration order — for exhaustive
    /// per-kind breakdowns (metrics, reports).
    pub const ALL: [PhaseKind; 10] = [
        PhaseKind::PimLogic,
        PhaseKind::PimAggCircuit,
        PhaseKind::PimReduce,
        PhaseKind::PimUnpack,
        PhaseKind::PimPack,
        PhaseKind::PimCombine,
        PhaseKind::HostRead,
        PhaseKind::HostWrite,
        PhaseKind::HostCompute,
        PhaseKind::HostDispatch,
    ];

    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::PimLogic => "pim-logic",
            PhaseKind::PimAggCircuit => "pim-agg-circuit",
            PhaseKind::PimReduce => "pim-reduce",
            PhaseKind::PimUnpack => "pim-unpack",
            PhaseKind::PimPack => "pim-pack",
            PhaseKind::PimCombine => "pim-combine",
            PhaseKind::HostRead => "host-read",
            PhaseKind::HostWrite => "host-write",
            PhaseKind::HostCompute => "host-compute",
            PhaseKind::HostDispatch => "host-dispatch",
        }
    }
}

/// One sequential slice of a query's execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// What was running.
    pub kind: PhaseKind,
    /// Simulated duration in nanoseconds.
    pub time_ns: f64,
    /// PIM-module energy consumed, picojoules (host-only phases: 0).
    pub energy_pj: f64,
    /// Power drawn by a single PIM chip during the phase, watts.
    pub chip_power_w: f64,
    /// Bytes this phase moved over the host↔module channel (cache-line
    /// transfers: reads, writes). Zero for phases that never touch the
    /// channel (PIM logic, host compute). Host-dispatch phases carry
    /// their descriptor bytes for the ledger, but their channel
    /// occupancy stays their duration, not a data volume. The shared
    /// host bus ([`crate::hostbus`]) turns these byte tags into
    /// contention grants.
    pub host_bytes: u64,
}

impl Phase {
    /// A host-compute phase: time passes, the PIM module idles.
    pub fn host_compute(time_ns: f64) -> Self {
        Phase {
            kind: PhaseKind::HostCompute,
            time_ns,
            energy_pj: 0.0,
            chip_power_w: 0.0,
            host_bytes: 0,
        }
    }

    /// A host-dispatch phase (query orchestration): the host works, the
    /// PIM module idles, so no module energy is drawn.
    pub fn host_dispatch(time_ns: f64) -> Self {
        Phase {
            kind: PhaseKind::HostDispatch,
            time_ns,
            energy_pj: 0.0,
            chip_power_w: 0.0,
            host_bytes: 0,
        }
    }

    /// A batched host-dispatch phase: one descriptor per (query, shard)
    /// carrying a page-ID run-list instead of one doorbell per page.
    /// `descriptor_bytes` tags the descriptor size for the byte ledger;
    /// channel occupancy remains the phase duration.
    pub fn host_dispatch_batched(time_ns: f64, descriptor_bytes: u64) -> Self {
        Phase {
            kind: PhaseKind::HostDispatch,
            time_ns,
            energy_pj: 0.0,
            chip_power_w: 0.0,
            host_bytes: descriptor_bytes,
        }
    }
}

/// Accumulated phases of one query (or one calibration run).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    phases: Vec<Phase>,
}

impl RunLog {
    /// Empty log.
    pub fn new() -> Self {
        RunLog::default()
    }

    /// Append a phase.
    pub fn push(&mut self, phase: Phase) {
        self.phases.push(phase);
    }

    /// Append every phase of `other`.
    pub fn extend(&mut self, other: &RunLog) {
        self.phases.extend_from_slice(&other.phases);
    }

    /// The recorded phases, in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total simulated time (phases are sequential), nanoseconds.
    pub fn total_time_ns(&self) -> f64 {
        self.phases.iter().map(|p| p.time_ns).sum()
    }

    /// Total PIM-module energy, picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.phases.iter().map(|p| p.energy_pj).sum()
    }

    /// Peak instantaneous power of one PIM chip, watts (Fig. 8).
    pub fn peak_chip_power_w(&self) -> f64 {
        self.phases.iter().map(|p| p.chip_power_w).fold(0.0, f64::max)
    }

    /// Time spent in a given phase kind, nanoseconds.
    pub fn time_in(&self, kind: PhaseKind) -> f64 {
        self.phases.iter().filter(|p| p.kind == kind).map(|p| p.time_ns).sum()
    }

    /// Energy spent in a given phase kind, picojoules.
    pub fn energy_in(&self, kind: PhaseKind) -> f64 {
        self.phases.iter().filter(|p| p.kind == kind).map(|p| p.energy_pj).sum()
    }

    /// Bytes moved over the host↔module channel in a given phase kind.
    pub fn host_bytes_in(&self, kind: PhaseKind) -> u64 {
        self.phases.iter().filter(|p| p.kind == kind).map(|p| p.host_bytes).sum()
    }

    /// Total bytes moved over the host↔module channel.
    pub fn host_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.host_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(kind: PhaseKind, t: f64, e: f64, p: f64) -> Phase {
        Phase { kind, time_ns: t, energy_pj: e, chip_power_w: p, host_bytes: 0 }
    }

    #[test]
    fn totals_accumulate() {
        let mut log = RunLog::new();
        log.push(phase(PhaseKind::PimLogic, 100.0, 10.0, 2.0));
        log.push(phase(PhaseKind::HostRead, 50.0, 5.0, 0.5));
        assert!((log.total_time_ns() - 150.0).abs() < 1e-12);
        assert!((log.total_energy_pj() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn peak_power_is_max_over_phases() {
        let mut log = RunLog::new();
        log.push(phase(PhaseKind::PimLogic, 1.0, 0.0, 2.0));
        log.push(phase(PhaseKind::PimAggCircuit, 1.0, 0.0, 7.5));
        log.push(phase(PhaseKind::HostRead, 1.0, 0.0, 1.0));
        assert!((log.peak_chip_power_w() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn per_kind_breakdown() {
        let mut log = RunLog::new();
        log.push(phase(PhaseKind::PimLogic, 10.0, 1.0, 0.0));
        log.push(phase(PhaseKind::PimLogic, 20.0, 2.0, 0.0));
        log.push(phase(PhaseKind::HostRead, 5.0, 0.5, 0.0));
        assert!((log.time_in(PhaseKind::PimLogic) - 30.0).abs() < 1e-12);
        assert!((log.energy_in(PhaseKind::HostRead) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn host_compute_has_no_pim_energy() {
        let p = Phase::host_compute(42.0);
        assert_eq!(p.energy_pj, 0.0);
        assert_eq!(p.kind, PhaseKind::HostCompute);
    }

    #[test]
    fn empty_log_is_all_zero() {
        let log = RunLog::new();
        assert_eq!(log.total_time_ns(), 0.0);
        assert_eq!(log.peak_chip_power_w(), 0.0);
    }
}
