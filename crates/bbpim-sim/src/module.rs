//! The PIM module: pages, chips, request dispatch, and the accounting
//! glue that turns micro-ops into time / energy / power phases.
//!
//! A [`PimModule`] is one memory rank of PIM-enabled chips (Fig. 1b).
//! Pages operate independently and concurrently — the host issues one
//! PIM request per page per operation (serialised on the memory bus at
//! [`crate::config::SimConfig::request_issue_ns`] apiece), after which
//! all targeted pages run the program in parallel. Each page is
//! interleaved over all chips, `crossbars_per_page / chips` crossbars
//! per chip, which determines the per-chip power draw.

use crate::aggcircuit::AggRequest;
use crate::compiler::reduce::{masked_reduce, reduce_cost};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::hostmem;
use crate::isa::Microprogram;
use crate::page::PimPage;
use crate::timeline::{Phase, PhaseKind};

/// Identifier of an allocated page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub usize);

/// Independent toggles for the host-channel byte-diet levers. Each can
/// be flipped on its own (like the cluster's `set_contention`) so the
/// bench tables can attribute byte/time savings per lever. All levers
/// are on by default; [`XferPolicy::legacy`] is the pre-diet model.
///
/// Answers are bit-identical under every combination — the levers move
/// bytes and time, never bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XferPolicy {
    /// Send two-crossbar per-disjunct mask transfers in the compressed
    /// wire format ([`crate::maskwire`]) instead of one line per page
    /// row; decompression is a module-local [`PhaseKind::PimUnpack`]
    /// phase.
    pub compress_masks: bool,
    /// Dispatch one descriptor per (query, shard) carrying a page-ID
    /// run-list instead of one doorbell per page.
    pub batch_dispatch: bool,
    /// Fold per-page aggregation partials inside the module
    /// ([`PhaseKind::PimCombine`]) so one finalised partial per
    /// physical aggregate crosses the channel.
    pub module_reduce: bool,
}

impl Default for XferPolicy {
    fn default() -> Self {
        XferPolicy { compress_masks: true, batch_dispatch: true, module_reduce: true }
    }
}

impl XferPolicy {
    /// The pre-diet transfer model: per-row mask lines, per-page
    /// doorbells, per-page result reads.
    pub fn legacy() -> Self {
        XferPolicy { compress_masks: false, batch_dispatch: false, module_reduce: false }
    }
}

/// A bulk-bitwise PIM module.
///
/// ```
/// use bbpim_sim::{PimModule, SimConfig};
/// use bbpim_sim::isa::Microprogram;
///
/// let mut module = PimModule::new(SimConfig::small_for_tests());
/// let pages = module.alloc_pages(2)?;
/// let mut prog = Microprogram::new();
/// prog.gate_not(0, 1);
/// let phase = module.exec_program(&pages, &prog)?;
/// assert!(phase.time_ns > 0.0);
/// # Ok::<(), bbpim_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct PimModule {
    cfg: SimConfig,
    pages: Vec<PimPage>,
    policy: XferPolicy,
}

impl PimModule {
    /// Create an empty module.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`] — a
    /// module cannot exist with inconsistent geometry.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid simulator configuration");
        PimModule { cfg, pages: Vec::new(), policy: XferPolicy::default() }
    }

    /// The configuration this module was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The host-channel transfer policy in effect.
    pub fn policy(&self) -> XferPolicy {
        self.policy
    }

    /// Set the host-channel transfer policy (A/B attribution of the
    /// byte-diet levers).
    pub fn set_policy(&mut self, policy: XferPolicy) {
        self.policy = policy;
    }

    /// Pages currently allocated.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Allocate `n` zeroed pages.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfCapacity`] when the module is full.
    pub fn alloc_pages(&mut self, n: usize) -> Result<Vec<PageId>, SimError> {
        let available = self.cfg.module_pages() - self.pages.len();
        if n > available {
            return Err(SimError::OutOfCapacity { requested: n, available });
        }
        let start = self.pages.len();
        for _ in 0..n {
            self.pages.push(PimPage::new(&self.cfg));
        }
        Ok((start..start + n).map(PageId).collect())
    }

    /// Borrow a page.
    ///
    /// # Panics
    ///
    /// Panics on an unallocated id (ids come from
    /// [`PimModule::alloc_pages`], so this indicates a caller bug).
    pub fn page(&self, id: PageId) -> &PimPage {
        &self.pages[id.0]
    }

    /// Mutably borrow a page.
    ///
    /// # Panics
    ///
    /// Panics on an unallocated id.
    pub fn page_mut(&mut self, id: PageId) -> &mut PimPage {
        &mut self.pages[id.0]
    }

    /// Fallible page lookup.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPage`] for an unallocated id.
    pub fn try_page(&self, id: PageId) -> Result<&PimPage, SimError> {
        self.pages.get(id.0).ok_or(SimError::NoSuchPage(id.0))
    }

    // ------------------------------------------------------------------
    // PIM operations
    // ------------------------------------------------------------------

    /// Execute a microprogram on every crossbar of the given pages.
    ///
    /// Time: one bus issue per page plus the program length (pages run in
    /// parallel). Energy: output cells written × logic energy, plus the
    /// per-page controllers. Power: every targeted crossbar switches one
    /// cell per row per cycle.
    ///
    /// # Errors
    ///
    /// Propagates program validation failures and unknown page ids.
    pub fn exec_program(
        &mut self,
        pages: &[PageId],
        program: &Microprogram,
    ) -> Result<Phase, SimError> {
        program.validate(self.cfg.crossbar_rows, self.cfg.crossbar_cols)?;
        let mut cells_total = 0u64;
        for id in pages {
            self.try_page(*id)?;
            let summary = self.pages[id.0].execute(program)?;
            cells_total += summary.cells_written * self.pages[id.0].crossbar_count() as u64;
        }
        let time_ns =
            self.issue_time_ns(pages.len()) + program.cycles() as f64 * self.cfg.logic_cycle_ns;
        let logic_pj = cells_total as f64 * self.cfg.logic_energy_fj_per_bit * 1e-3;
        let controller_pj = self.controller_energy_pj(pages.len(), time_ns);
        Ok(Phase {
            kind: PhaseKind::PimLogic,
            time_ns,
            energy_pj: logic_pj + controller_pj,
            chip_power_w: self.logic_chip_power_w(pages.len()),
            host_bytes: 0,
        })
    }

    /// Run the peripheral aggregation circuit on every crossbar of the
    /// given pages; returns the per-crossbar partials (outer index:
    /// position in `pages`) alongside the phase.
    ///
    /// # Errors
    ///
    /// Propagates aggregation validation failures and unknown page ids.
    pub fn agg_circuit(
        &mut self,
        pages: &[PageId],
        req: &AggRequest,
    ) -> Result<(Vec<Vec<u64>>, Phase), SimError> {
        req.validate(self.cfg.crossbar_rows, self.cfg.crossbar_cols)?;
        let cost = req.cost(&self.cfg);
        let mut partials = Vec::with_capacity(pages.len());
        let mut crossbars_total = 0u64;
        for id in pages {
            self.try_page(*id)?;
            let page = &mut self.pages[id.0];
            let mut page_partials = Vec::with_capacity(page.crossbar_count());
            for xb in page.crossbars_mut() {
                page_partials.push(req.apply(xb)?);
            }
            crossbars_total += page_partials.len() as u64;
            partials.push(page_partials);
        }
        let time_ns = self.issue_time_ns(pages.len()) + cost.time_ns;
        let per_xb_pj = cost.bits_read as f64 * self.cfg.read_energy_pj_per_bit
            + cost.bits_written as f64 * self.cfg.write_energy_pj_per_bit
            + self.cfg.agg_circuit_power_uw * cost.time_ns * 1e-3;
        let energy_pj =
            per_xb_pj * crossbars_total as f64 + self.controller_energy_pj(pages.len(), time_ns);
        Ok((
            partials,
            Phase {
                kind: PhaseKind::PimAggCircuit,
                time_ns,
                energy_pj,
                chip_power_w: self.agg_chip_power_w(pages.len(), req),
                host_bytes: 0,
            },
        ))
    }

    /// [`PimModule::agg_circuit`] with the ALU's count register enabled:
    /// the same serial pass also writes the selected-row count to
    /// `count_dst` of each crossbar. Returns `(sums, counts)` partials.
    ///
    /// # Errors
    ///
    /// Propagates aggregation validation failures and unknown page ids.
    #[allow(clippy::type_complexity)]
    pub fn agg_circuit_counted(
        &mut self,
        pages: &[PageId],
        req: &AggRequest,
        count_dst: crate::compiler::ColRange,
    ) -> Result<((Vec<Vec<u64>>, Vec<Vec<u64>>), Phase), SimError> {
        req.validate(self.cfg.crossbar_rows, self.cfg.crossbar_cols)?;
        let cost = req.cost(&self.cfg);
        let extra_bits = AggRequest::counted_extra_bits(count_dst);
        let mut sums = Vec::with_capacity(pages.len());
        let mut counts = Vec::with_capacity(pages.len());
        let mut crossbars_total = 0u64;
        for id in pages {
            self.try_page(*id)?;
            let page = &mut self.pages[id.0];
            let mut page_sums = Vec::with_capacity(page.crossbar_count());
            let mut page_counts = Vec::with_capacity(page.crossbar_count());
            for xb in page.crossbars_mut() {
                let (s, c) = req.apply_counted(xb, count_dst)?;
                page_sums.push(s);
                page_counts.push(c);
            }
            crossbars_total += page_sums.len() as u64;
            sums.push(page_sums);
            counts.push(page_counts);
        }
        let time_ns = self.issue_time_ns(pages.len()) + cost.time_ns + self.cfg.write_latency_ns; // the count write-back
        let per_xb_pj = cost.bits_read as f64 * self.cfg.read_energy_pj_per_bit
            + (cost.bits_written + extra_bits) as f64 * self.cfg.write_energy_pj_per_bit
            + self.cfg.agg_circuit_power_uw * cost.time_ns * 1e-3;
        let energy_pj =
            per_xb_pj * crossbars_total as f64 + self.controller_energy_pj(pages.len(), time_ns);
        Ok((
            (sums, counts),
            Phase {
                kind: PhaseKind::PimAggCircuit,
                time_ns,
                energy_pj,
                chip_power_w: self.agg_chip_power_w(pages.len(), req),
                host_bytes: 0,
            },
        ))
    }

    /// Pure bulk-bitwise aggregation (the PIMDB baseline): functionally
    /// identical to [`PimModule::agg_circuit`] but costed as the
    /// in-crossbar reduction tree of [`crate::compiler::reduce`].
    ///
    /// # Errors
    ///
    /// Propagates aggregation validation failures and unknown page ids.
    pub fn bitwise_reduce(
        &mut self,
        pages: &[PageId],
        req: &AggRequest,
    ) -> Result<(Vec<Vec<u64>>, Phase), SimError> {
        req.validate(self.cfg.crossbar_rows, self.cfg.crossbar_cols)?;
        let rows = self.cfg.crossbar_rows;
        let cols = self.cfg.crossbar_cols;
        let cost = reduce_cost(rows, cols, req.value.width, req.op);
        let levels = rows.trailing_zeros() as u64;
        let mut partials = Vec::with_capacity(pages.len());
        let mut crossbars_total = 0u64;
        for id in pages {
            self.try_page(*id)?;
            let page = &mut self.pages[id.0];
            let mut page_partials = Vec::with_capacity(page.crossbar_count());
            for xb in page.crossbars_mut() {
                // Functional result identical to the tree's output.
                let mut values = Vec::with_capacity(rows);
                let mut mask = Vec::with_capacity(rows);
                for r in 0..rows {
                    values.push(xb.read_row_bits(r, req.value.lo, req.value.width));
                    mask.push(xb.bits().get(r, req.mask_col));
                }
                let width = req.dst.width.max(req.value.width).min(64);
                let result = masked_reduce(&values, &mask, width, req.op);
                let result = if req.dst.width == 64 {
                    result
                } else {
                    result & ((1u64 << req.dst.width) - 1)
                };
                xb.bits_mut_unaccounted().write_row_bits(
                    req.dst_row,
                    req.dst.lo,
                    req.dst.width,
                    result,
                );
                // Endurance of the modeled tree: every row takes the
                // column ops; the fold's copy destinations additionally
                // take 4 row-ops × cols cells per level.
                xb.note_all_rows_writes(cost.col_ops);
                xb.note_row_writes(req.dst_row, 4 * levels * cols as u64);
                page_partials.push(result);
            }
            crossbars_total += page_partials.len() as u64;
            partials.push(page_partials);
        }
        let time_ns =
            self.issue_time_ns(pages.len()) + cost.cycles as f64 * self.cfg.logic_cycle_ns;
        let bits = cost.col_ops * rows as u64 + cost.row_ops * cols as u64;
        let energy_pj =
            bits as f64 * crossbars_total as f64 * self.cfg.logic_energy_fj_per_bit * 1e-3
                + self.controller_energy_pj(pages.len(), time_ns);
        Ok((
            partials,
            Phase {
                kind: PhaseKind::PimReduce,
                time_ns,
                energy_pj,
                chip_power_w: self.logic_chip_power_w(pages.len()),
                host_bytes: 0,
            },
        ))
    }

    /// [`PimModule::bitwise_reduce`] plus a second reduction tree that
    /// counts the selected rows (PIMDB has no count register, so the
    /// count costs another full tree over `log₂(rows)+1`-bit partials).
    ///
    /// # Errors
    ///
    /// Propagates aggregation validation failures and unknown page ids.
    #[allow(clippy::type_complexity)]
    pub fn bitwise_reduce_counted(
        &mut self,
        pages: &[PageId],
        req: &AggRequest,
        count_dst: crate::compiler::ColRange,
    ) -> Result<((Vec<Vec<u64>>, Vec<Vec<u64>>), Phase), SimError> {
        let (sums, mut phase) = self.bitwise_reduce(pages, req)?;
        let rows = self.cfg.crossbar_rows;
        let cols = self.cfg.crossbar_cols;
        let count_width = (rows.trailing_zeros() as usize + 1).min(count_dst.width);
        let extra = reduce_cost(rows, cols, count_width, crate::compiler::reduce::ReduceOp::Sum);
        let mut crossbars_total = 0u64;
        let mut counts = Vec::with_capacity(pages.len());
        for id in pages {
            let page = &mut self.pages[id.0];
            let mut page_counts = Vec::with_capacity(page.crossbar_count());
            for xb in page.crossbars_mut() {
                let mut count = 0u64;
                for r in 0..rows {
                    if xb.bits().get(r, req.mask_col) {
                        count += 1;
                    }
                }
                xb.bits_mut_unaccounted().write_row_bits(
                    req.dst_row,
                    count_dst.lo,
                    count_dst.width,
                    count,
                );
                xb.note_all_rows_writes(extra.col_ops);
                xb.note_row_writes(req.dst_row, count_dst.width as u64);
                page_counts.push(count);
            }
            crossbars_total += page_counts.len() as u64;
            counts.push(page_counts);
        }
        let extra_time = extra.cycles as f64 * self.cfg.logic_cycle_ns;
        let extra_bits = extra.col_ops * rows as u64 + extra.row_ops * cols as u64;
        phase.time_ns += extra_time;
        phase.energy_pj +=
            extra_bits as f64 * crossbars_total as f64 * self.cfg.logic_energy_fj_per_bit * 1e-3;
        Ok(((sums, counts), phase))
    }

    /// Phase for the host reading `lines` cache lines from this module.
    /// The phase is byte-tagged (`lines × line_bytes`) so the shared
    /// host channel can account its bus occupancy under contention.
    pub fn host_read_phase(&self, lines: u64) -> Phase {
        let time_ns = hostmem::read_time_ns(&self.cfg, lines);
        let energy_pj = hostmem::read_energy_pj(&self.cfg, lines);
        Phase {
            kind: PhaseKind::HostRead,
            time_ns,
            energy_pj,
            chip_power_w: hostmem::chip_power_w(&self.cfg, energy_pj, time_ns),
            host_bytes: lines * self.cfg.host.line_bytes as u64,
        }
    }

    /// Phase for the host reading `lines` *scattered* (data-dependent)
    /// cache lines from this module — see
    /// [`hostmem::scattered_read_time_ns`]. Byte-tagged like
    /// [`PimModule::host_read_phase`]; the latency-stall excess over
    /// the bandwidth term does not occupy the shared channel.
    pub fn host_read_scattered_phase(&self, lines: u64) -> Phase {
        let time_ns = hostmem::scattered_read_time_ns(&self.cfg, lines);
        let energy_pj = hostmem::read_energy_pj(&self.cfg, lines);
        Phase {
            kind: PhaseKind::HostRead,
            time_ns,
            energy_pj,
            chip_power_w: hostmem::chip_power_w(&self.cfg, energy_pj, time_ns),
            host_bytes: lines * self.cfg.host.line_bytes as u64,
        }
    }

    /// Phase for the host writing `lines` cache lines into this module
    /// (byte-tagged, see [`PimModule::host_read_phase`]).
    pub fn host_write_phase(&self, lines: u64) -> Phase {
        let time_ns = hostmem::write_time_ns(&self.cfg, lines);
        let energy_pj = hostmem::write_energy_pj(&self.cfg, lines);
        Phase {
            kind: PhaseKind::HostWrite,
            time_ns,
            energy_pj,
            chip_power_w: hostmem::chip_power_w(&self.cfg, energy_pj, time_ns),
            host_bytes: lines * self.cfg.host.line_bytes as u64,
        }
    }

    /// Phases of one compressed mask transfer: the wire-sized host read
    /// and write that actually cross the channel, plus the module-local
    /// pack/unpack phase covering the same crossbar cell traffic the
    /// legacy raw-line transfer would have driven from the host.
    ///
    /// Constructed so the three phases together cost exactly what the
    /// legacy `host_read_phase(raw_lines)` + `host_write_phase(raw_lines)`
    /// pair did in time and energy — the lever moves work off the shared
    /// channel (only `wire_lines` are byte-tagged), it does not change
    /// the cell reads/writes the mask movement requires. When the wire
    /// format does not win (`wire_lines ≥ raw_lines`, tiny masks where
    /// the header dominates) callers should fall back to the raw
    /// transfer.
    pub fn compressed_mask_phases(&self, raw_lines: u64, wire_lines: u64) -> (Phase, Phase, Phase) {
        let read = self.host_read_phase(wire_lines);
        let write = self.host_write_phase(wire_lines);
        let time_ns = (hostmem::read_time_ns(&self.cfg, raw_lines) - read.time_ns
            + hostmem::write_time_ns(&self.cfg, raw_lines)
            - write.time_ns)
            .max(0.0);
        let energy_pj = (hostmem::read_energy_pj(&self.cfg, raw_lines) - read.energy_pj
            + hostmem::write_energy_pj(&self.cfg, raw_lines)
            - write.energy_pj)
            .max(0.0);
        let unpack = Phase {
            kind: PhaseKind::PimUnpack,
            time_ns,
            energy_pj,
            chip_power_w: hostmem::chip_power_w(&self.cfg, energy_pj, time_ns),
            host_bytes: 0,
        };
        (read, write, unpack)
    }

    /// Phases of one compressed mask *read* (module → host): the
    /// wire-sized host read that actually crosses the channel plus the
    /// module-local pack phase covering the same crossbar cell traffic
    /// the legacy raw-line read would have driven from the host. Same
    /// conservation as [`PimModule::compressed_mask_phases`]: the two
    /// phases together cost exactly what `host_read_phase(raw_lines)`
    /// did in time and energy; only `wire_lines` occupy the channel.
    pub fn compressed_mask_read_phases(&self, raw_lines: u64, wire_lines: u64) -> (Phase, Phase) {
        let read = self.host_read_phase(wire_lines);
        let time_ns = (hostmem::read_time_ns(&self.cfg, raw_lines) - read.time_ns).max(0.0);
        let energy_pj = (hostmem::read_energy_pj(&self.cfg, raw_lines) - read.energy_pj).max(0.0);
        let pack = Phase {
            kind: PhaseKind::PimPack,
            time_ns,
            energy_pj,
            chip_power_w: hostmem::chip_power_w(&self.cfg, energy_pj, time_ns),
            host_bytes: 0,
        };
        (read, pack)
    }

    /// Module-side fold of `partials` aggregation partials into one
    /// finalised partial per physical aggregate: the page controllers
    /// combine their crossbars' results locally so only the final slot
    /// is read over the channel.
    pub fn partial_combine_phase(&self, pages: usize, partials: u64) -> Phase {
        let time_ns = partials as f64 * self.cfg.combine_ns_per_partial;
        let energy_pj = self.controller_energy_pj(pages, time_ns);
        Phase {
            kind: PhaseKind::PimCombine,
            time_ns,
            energy_pj,
            chip_power_w: pages as f64 * self.cfg.controller_power_uw * 1e-6,
            host_bytes: 0,
        }
    }

    // ------------------------------------------------------------------
    // Endurance
    // ------------------------------------------------------------------

    /// Worst per-row cell-write count over the given pages.
    pub fn max_row_cell_writes(&self, pages: &[PageId]) -> u64 {
        pages.iter().map(|id| self.pages[id.0].max_row_cell_writes()).max().unwrap_or(0)
    }

    /// Reset endurance counters on the given pages.
    pub fn reset_endurance(&mut self, pages: &[PageId]) {
        for id in pages {
            self.pages[id.0].reset_endurance();
        }
    }

    // ------------------------------------------------------------------
    // Internal accounting helpers
    // ------------------------------------------------------------------

    fn issue_time_ns(&self, pages: usize) -> f64 {
        pages as f64 * self.cfg.request_issue_ns
    }

    fn controller_energy_pj(&self, pages: usize, time_ns: f64) -> f64 {
        // One controller per page per chip; µW × ns = fJ → ×1e-3 pJ.
        pages as f64 * self.cfg.chips as f64 * self.cfg.controller_power_uw * time_ns * 1e-3
    }

    /// Power of one chip while `pages` run bulk-bitwise logic: each
    /// active crossbar writes one cell per row per cycle
    /// (fJ/ns = µW, so 1024 × 81.6 fJ / 30 ns ≈ 2785 µW per crossbar).
    fn logic_chip_power_w(&self, pages: usize) -> f64 {
        let active_xb = pages as f64 * self.cfg.page_crossbars_per_chip() as f64;
        let op_uw = self.cfg.crossbar_rows as f64 * self.cfg.logic_energy_fj_per_bit
            / self.cfg.logic_cycle_ns;
        let controllers_uw = pages as f64 * self.cfg.controller_power_uw;
        (active_xb * op_uw + controllers_uw) * 1e-6
    }

    /// Power of one chip while the aggregation circuits run: per active
    /// crossbar, the serial read stream (pJ/ns = mW) plus the ALU.
    fn agg_chip_power_w(&self, pages: usize, _req: &AggRequest) -> f64 {
        let active_xb = pages as f64 * self.cfg.page_crossbars_per_chip() as f64;
        let read_uw = self.cfg.read_width_bits as f64 * self.cfg.read_energy_pj_per_bit
            / self.cfg.read_latency_ns
            * 1e3;
        let per_xb_uw = read_uw + self.cfg.agg_circuit_power_uw;
        let controllers_uw = pages as f64 * self.cfg.controller_power_uw;
        (active_xb * per_xb_uw + controllers_uw) * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::reduce::ReduceOp;
    use crate::compiler::ColRange;

    fn module() -> PimModule {
        PimModule::new(SimConfig::small_for_tests())
    }

    #[test]
    fn alloc_respects_capacity() {
        let mut m = module();
        let total = m.config().module_pages();
        let pages = m.alloc_pages(total).unwrap();
        assert_eq!(pages.len(), total);
        assert!(matches!(m.alloc_pages(1), Err(SimError::OutOfCapacity { .. })));
    }

    #[test]
    fn exec_program_runs_on_all_pages() {
        let mut m = module();
        let pages = m.alloc_pages(2).unwrap();
        for &p in &pages {
            for r in 0..m.page(p).record_capacity() {
                m.page_mut(p).write_record_bits(r, 0, 1, 1).unwrap();
            }
        }
        let mut prog = Microprogram::new();
        prog.gate_not(0, 1);
        let phase = m.exec_program(&pages, &prog).unwrap();
        assert_eq!(phase.kind, PhaseKind::PimLogic);
        // time = 2 issues + 2 cycles
        let cfg = m.config();
        let expected = 2.0 * cfg.request_issue_ns + 2.0 * cfg.logic_cycle_ns;
        assert!((phase.time_ns - expected).abs() < 1e-9);
        for &p in &pages {
            for r in 0..m.page(p).record_capacity() {
                assert_eq!(m.page(p).read_record_bits(r, 1, 1).unwrap(), 0);
            }
        }
    }

    #[test]
    fn exec_program_energy_scales_with_pages() {
        let mut m = module();
        let one = m.alloc_pages(1).unwrap();
        let two = m.alloc_pages(2).unwrap();
        let mut prog = Microprogram::new();
        prog.gate_not(0, 1);
        let e1 = m.exec_program(&one, &prog).unwrap().energy_pj;
        let e2 = m.exec_program(&two, &prog).unwrap().energy_pj;
        assert!(e2 > 1.8 * e1, "two pages should spend ~2x the energy");
    }

    #[test]
    fn agg_circuit_produces_per_crossbar_partials() {
        let mut m = module();
        let pages = m.alloc_pages(1).unwrap();
        let p = pages[0];
        // value = record index, mask = all records
        for r in 0..m.page(p).record_capacity() {
            m.page_mut(p).write_record_bits(r, 0, 16, r as u64).unwrap();
            m.page_mut(p).write_record_bits(r, 20, 1, 1).unwrap();
        }
        let req = AggRequest {
            op: ReduceOp::Sum,
            value: ColRange::new(0, 16),
            mask_col: 20,
            dst_row: 0,
            dst: ColRange::new(32, 32),
        };
        let (partials, phase) = m.agg_circuit(&pages, &req).unwrap();
        assert_eq!(phase.kind, PhaseKind::PimAggCircuit);
        assert_eq!(partials.len(), 1);
        assert_eq!(partials[0].len(), 4);
        let total: u64 = partials[0].iter().sum();
        let expected: u64 = (0..m.page(p).record_capacity() as u64).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn counted_aggregation_returns_exact_counts() {
        let mut m = module();
        let pages = m.alloc_pages(1).unwrap();
        let p = pages[0];
        for r in 0..m.page(p).record_capacity() {
            m.page_mut(p).write_record_bits(r, 0, 16, (r % 13) as u64).unwrap();
            m.page_mut(p).write_record_bits(r, 20, 1, (r % 4 == 0) as u64).unwrap();
        }
        let req = AggRequest {
            op: ReduceOp::Sum,
            value: ColRange::new(0, 16),
            mask_col: 20,
            dst_row: 0,
            dst: ColRange::new(32, 32),
        };
        let count_dst = ColRange::new(80, 16);
        let ((sums, counts), phase) = m.agg_circuit_counted(&pages, &req, count_dst).unwrap();
        let expected_count = m.page(p).record_capacity() as u64 / 4;
        assert_eq!(counts[0].iter().sum::<u64>(), expected_count);
        let expected_sum: u64 =
            (0..m.page(p).record_capacity() as u64).filter(|r| r % 4 == 0).map(|r| r % 13).sum();
        assert_eq!(sums[0].iter().sum::<u64>(), expected_sum);
        assert!(phase.time_ns > 0.0);

        // the pimdb path agrees functionally and costs more
        let pages2 = m.alloc_pages(1).unwrap();
        let p2 = pages2[0];
        for r in 0..m.page(p2).record_capacity() {
            m.page_mut(p2).write_record_bits(r, 0, 16, (r % 13) as u64).unwrap();
            m.page_mut(p2).write_record_bits(r, 20, 1, (r % 4 == 0) as u64).unwrap();
        }
        let ((sums2, counts2), phase2) =
            m.bitwise_reduce_counted(&pages2, &req, count_dst).unwrap();
        assert_eq!(sums2, sums);
        assert_eq!(counts2, counts);
        assert!(phase2.time_ns > phase.time_ns);
    }

    #[test]
    fn counted_aggregation_rejects_overlapping_slots() {
        let mut m = module();
        let pages = m.alloc_pages(1).unwrap();
        let req = AggRequest {
            op: ReduceOp::Sum,
            value: ColRange::new(0, 16),
            mask_col: 20,
            dst_row: 0,
            dst: ColRange::new(32, 32),
        };
        let overlapping = ColRange::new(40, 16);
        assert!(m.agg_circuit_counted(&pages, &req, overlapping).is_err());
    }

    #[test]
    fn bitwise_reduce_same_result_much_slower() {
        let mut m = module();
        let a = m.alloc_pages(1).unwrap();
        let b = m.alloc_pages(1).unwrap();
        for &pg in a.iter().chain(b.iter()) {
            for r in 0..m.page(pg).record_capacity() {
                m.page_mut(pg).write_record_bits(r, 0, 16, (r % 50) as u64).unwrap();
                m.page_mut(pg).write_record_bits(r, 20, 1, (r % 3 == 0) as u64).unwrap();
            }
        }
        let req = AggRequest {
            op: ReduceOp::Sum,
            value: ColRange::new(0, 16),
            mask_col: 20,
            dst_row: 0,
            dst: ColRange::new(32, 32),
        };
        let (p_circ, t_circ) = m.agg_circuit(&a, &req).unwrap();
        let (p_red, t_red) = m.bitwise_reduce(&b, &req).unwrap();
        assert_eq!(p_circ, p_red, "both paths must aggregate identically");
        assert!(t_red.time_ns > t_circ.time_ns, "reduction tree must be slower");
        assert!(t_red.energy_pj > t_circ.energy_pj, "and cost more energy");
    }

    #[test]
    fn bitwise_reduce_wears_cells_harder() {
        let mut m = module();
        let a = m.alloc_pages(1).unwrap();
        let b = m.alloc_pages(1).unwrap();
        let req = AggRequest {
            op: ReduceOp::Sum,
            value: ColRange::new(0, 16),
            mask_col: 20,
            dst_row: 0,
            dst: ColRange::new(32, 16),
        };
        m.reset_endurance(&a);
        m.reset_endurance(&b);
        m.agg_circuit(&a, &req).unwrap();
        m.bitwise_reduce(&b, &req).unwrap();
        assert!(m.max_row_cell_writes(&b) > 10 * m.max_row_cell_writes(&a));
    }

    #[test]
    fn host_phases_have_energy_and_time() {
        let m = module();
        let rd = m.host_read_phase(1000);
        assert!(rd.time_ns > 0.0 && rd.energy_pj > 0.0);
        let wr = m.host_write_phase(1000);
        assert!(wr.energy_pj > rd.energy_pj);
        assert_eq!(m.host_read_phase(0).time_ns, 0.0);
    }

    #[test]
    fn logic_power_scales_with_active_pages() {
        let mut m = module();
        let one = m.alloc_pages(1).unwrap();
        let four = m.alloc_pages(4).unwrap();
        let mut prog = Microprogram::new();
        prog.gate_not(0, 1);
        let p1 = m.exec_program(&one, &prog).unwrap().chip_power_w;
        let p4 = m.exec_program(&four, &prog).unwrap().chip_power_w;
        assert!(p4 > 3.5 * p1);
    }

    #[test]
    fn paper_geometry_chip_power_is_plausible() {
        // SF=10-scale: ~1832 pages active → the paper reports < 44 W
        // peak per chip; our logic-phase model must land in that order.
        let m = PimModule::new(SimConfig::default());
        let w = m.logic_chip_power_w(1832);
        assert!(w > 1.0 && w < 60.0, "got {w} W");
    }

    #[test]
    fn try_page_rejects_unknown() {
        let m = module();
        assert!(matches!(m.try_page(PageId(7)), Err(SimError::NoSuchPage(7))));
    }
}
