//! The paper's per-crossbar aggregation circuit (Fig. 3).
//!
//! A small CMOS ALU sits at each crossbar's periphery. On an aggregation
//! PIM request it serially reads the selected attribute — one fixed
//! 16-bit crossbar read per cycle — through SUM/MIN/MAX logic (with the
//! shift/mask needed for words wider than one read), then writes the
//! final value back to a result slot in the crossbar, where the host
//! fetches it with a standard memory read.
//!
//! Compared to the pure bulk-bitwise reduction
//! ([`crate::compiler::reduce`]) this trades ~13 k logic cycles of cell
//! writes for ~2 k cell *reads* — the source of the paper's 1.83×
//! latency, 4.31× energy and 3.21× lifetime improvements.

use serde::{Deserialize, Serialize};

use crate::compiler::reduce::{masked_reduce, ReduceOp};
use crate::compiler::ColRange;
use crate::config::SimConfig;
use crate::crossbar::Crossbar;
use crate::error::SimError;

/// One aggregation request, executed by every crossbar of the targeted
/// pages in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggRequest {
    /// Aggregation operator.
    pub op: ReduceOp,
    /// Columns of the aggregated attribute (may live in the scratch
    /// region when aggregating a computed expression).
    pub value: ColRange,
    /// Column holding the selection bit (1 = record participates).
    pub mask_col: usize,
    /// Row receiving the result.
    pub dst_row: usize,
    /// Columns receiving the result (the partial wraps at this width).
    pub dst: ColRange,
}

/// Per-crossbar cost of serving one [`AggRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggCost {
    /// Serial crossbar reads performed (rows × (value chunks + mask)).
    pub reads: u64,
    /// Bits read from the array.
    pub bits_read: u64,
    /// Bits written back (the result slot).
    pub bits_written: u64,
    /// Circuit-busy time in nanoseconds.
    pub time_ns: f64,
}

impl AggRequest {
    /// Crossbar reads needed per row: one per 16-bit chunk the value
    /// spans, plus one for the chunk holding the mask bit.
    pub fn reads_per_row(&self, cfg: &SimConfig) -> u64 {
        let value_chunks = span_chunks(self.value, cfg.read_width_bits);
        value_chunks + 1
    }

    /// Validate against a crossbar geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAggregation`] for zero/oversized widths,
    /// out-of-range columns, or a destination overlapping the source.
    pub fn validate(&self, rows: usize, cols: usize) -> Result<(), SimError> {
        if self.value.width == 0 || self.value.width > 64 {
            return Err(SimError::InvalidAggregation(format!(
                "value width {} not in 1..=64",
                self.value.width
            )));
        }
        if self.dst.width == 0 || self.dst.width > 64 {
            return Err(SimError::InvalidAggregation(format!(
                "result width {} not in 1..=64",
                self.dst.width
            )));
        }
        if self.value.end() > cols || self.dst.end() > cols || self.mask_col >= cols {
            return Err(SimError::InvalidAggregation("columns out of range".into()));
        }
        if self.dst_row >= rows {
            return Err(SimError::InvalidAggregation(format!(
                "destination row {} out of range",
                self.dst_row
            )));
        }
        Ok(())
    }

    /// Cost of this request on one crossbar.
    ///
    /// Reads proceed back-to-back at the crossbar read latency (the ALU
    /// is pipelined behind them); the write-back pays the RRAM write
    /// latency per result chunk.
    pub fn cost(&self, cfg: &SimConfig) -> AggCost {
        let rows = cfg.crossbar_rows as u64;
        let reads = rows * self.reads_per_row(cfg);
        let bits_read = reads * cfg.read_width_bits as u64;
        let result_chunks = span_chunks(self.dst, cfg.read_width_bits);
        let bits_written = result_chunks * cfg.read_width_bits as u64;
        let time_ns =
            reads as f64 * cfg.read_latency_ns + result_chunks as f64 * cfg.write_latency_ns;
        AggCost { reads, bits_read, bits_written, time_ns }
    }

    /// Like [`AggRequest::apply`], but the ALU also keeps a *count*
    /// register (selected rows), written back to `count_dst` in the same
    /// row. One serial pass yields both — the circuit already reads the
    /// mask bit of every row, so the extra cost is only the second
    /// write-back (see [`AggRequest::counted_extra_bits`]).
    ///
    /// # Errors
    ///
    /// Propagates [`AggRequest::validate`]; the count slot must not
    /// overlap the value slot.
    pub fn apply_counted(
        &self,
        xb: &mut Crossbar,
        count_dst: ColRange,
    ) -> Result<(u64, u64), SimError> {
        if count_dst.lo < self.dst.end() && self.dst.lo < count_dst.end() {
            return Err(SimError::InvalidAggregation("count slot overlaps the value slot".into()));
        }
        if count_dst.width == 0 || count_dst.end() > xb.cols() {
            return Err(SimError::InvalidAggregation("bad count slot".into()));
        }
        let value = self.apply(xb)?;
        let mut count = 0u64;
        for r in 0..xb.rows() {
            if xb.bits().get(r, self.mask_col) {
                count += 1;
            }
        }
        let wrapped =
            if count_dst.width >= 64 { count } else { count & ((1 << count_dst.width) - 1) };
        xb.bits_mut_unaccounted().write_row_bits(
            self.dst_row,
            count_dst.lo,
            count_dst.width,
            wrapped,
        );
        xb.note_row_writes(self.dst_row, count_dst.width as u64);
        Ok((value, wrapped))
    }

    /// Extra bits written when the count register is used (the serial
    /// read stream is unchanged).
    pub fn counted_extra_bits(count_dst: ColRange) -> u64 {
        count_dst.width as u64
    }

    /// Execute functionally on one crossbar: fold the masked values and
    /// write the (width-wrapped) result into the destination slot.
    ///
    /// Endurance is charged for the result write-back only — serial reads
    /// do not wear RRAM cells.
    ///
    /// # Errors
    ///
    /// Propagates [`AggRequest::validate`].
    pub fn apply(&self, xb: &mut Crossbar) -> Result<u64, SimError> {
        self.validate(xb.rows(), xb.cols())?;
        let rows = xb.rows();
        let mut values = Vec::with_capacity(rows);
        let mut mask = Vec::with_capacity(rows);
        for r in 0..rows {
            values.push(xb.read_row_bits(r, self.value.lo, self.value.width));
            mask.push(xb.bits().get(r, self.mask_col));
        }
        // The ALU register is dst.width wide; MIN's identity must match it.
        let wrapped: Vec<u64> = values.to_vec();
        let result = masked_reduce(&wrapped, &mask, self.dst.width.max(self.value.width), self.op);
        let result =
            if self.dst.width == 64 { result } else { result & ((1u64 << self.dst.width) - 1) };
        xb.bits_mut_unaccounted().write_row_bits(self.dst_row, self.dst.lo, self.dst.width, result);
        xb.note_row_writes(self.dst_row, self.dst.width as u64);
        Ok(result)
    }
}

/// Number of 16-bit read chunks a column range spans (alignment-aware).
fn span_chunks(range: ColRange, chunk_bits: usize) -> u64 {
    if range.width == 0 {
        return 0;
    }
    let first = range.lo / chunk_bits;
    let last = (range.end() - 1) / chunk_bits;
    (last - first + 1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::small_for_tests()
    }

    fn request() -> AggRequest {
        AggRequest {
            op: ReduceOp::Sum,
            value: ColRange::new(0, 16),
            mask_col: 20,
            dst_row: 0,
            dst: ColRange::new(32, 32),
        }
    }

    #[test]
    fn sum_of_masked_rows_lands_in_slot() {
        let mut xb = Crossbar::new(64, 64);
        for r in 0..64 {
            xb.write_row_bits(r, 0, 16, r as u64 * 10);
            xb.bits_mut_unaccounted().set(r, 20, r % 2 == 0);
        }
        let req = request();
        let result = req.apply(&mut xb).unwrap();
        let expected: u64 = (0..64).filter(|r| r % 2 == 0).map(|r| r * 10).sum();
        assert_eq!(result, expected);
        assert_eq!(xb.read_row_bits(0, 32, 32), expected);
    }

    #[test]
    fn min_max_variants() {
        let mut xb = Crossbar::new(64, 64);
        for r in 0..64 {
            xb.write_row_bits(r, 0, 16, 1000 - r as u64);
            xb.bits_mut_unaccounted().set(r, 20, (10..20).contains(&r));
        }
        let mut req = request();
        req.op = ReduceOp::Min;
        assert_eq!(req.apply(&mut xb).unwrap(), 1000 - 19);
        req.op = ReduceOp::Max;
        req.dst_row = 1;
        assert_eq!(req.apply(&mut xb).unwrap(), 1000 - 10);
    }

    #[test]
    fn empty_mask_gives_sum_identity() {
        let mut xb = Crossbar::new(64, 64);
        for r in 0..64 {
            xb.write_row_bits(r, 0, 16, 7);
        }
        assert_eq!(request().apply(&mut xb).unwrap(), 0);
    }

    #[test]
    fn reads_per_row_counts_value_chunks_plus_mask() {
        let c = cfg();
        let mut req = request();
        assert_eq!(req.reads_per_row(&c), 1 + 1); // 16-bit value, aligned
        req.value = ColRange::new(0, 32);
        assert_eq!(req.reads_per_row(&c), 2 + 1);
        req.value = ColRange::new(8, 16); // straddles two chunks
        assert_eq!(req.reads_per_row(&c), 2 + 1);
    }

    #[test]
    fn cost_scales_with_rows_and_chunks() {
        let c = cfg();
        let req = request();
        let cost = req.cost(&c);
        assert_eq!(cost.reads, 64 * 2);
        assert_eq!(cost.bits_read, 64 * 2 * 16);
        assert!(cost.time_ns > 0.0);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut req = request();
        req.mask_col = 200;
        assert!(req.validate(64, 64).is_err());
        let mut req = request();
        req.dst_row = 64;
        assert!(req.validate(64, 64).is_err());
        let mut req = request();
        req.value = ColRange::new(0, 0);
        assert!(req.validate(64, 64).is_err());
    }

    #[test]
    fn writeback_charges_endurance_on_dst_row_only() {
        let mut xb = Crossbar::new(64, 64);
        xb.bits_mut_unaccounted().set(3, 20, true);
        xb.write_row_bits(3, 0, 16, 42);
        xb.reset_endurance();
        request().apply(&mut xb).unwrap();
        assert_eq!(xb.max_row_cell_writes(), 32); // the 32-bit result slot
    }

    #[test]
    fn agg_circuit_reads_far_fewer_cells_than_bitwise_writes() {
        use crate::compiler::reduce::reduce_cost;
        let c = SimConfig::default();
        let req = AggRequest {
            op: ReduceOp::Sum,
            value: ColRange::new(0, 32),
            mask_col: 40,
            dst_row: 0,
            dst: ColRange::new(448, 48),
        };
        let circuit = req.cost(&c);
        let bitwise = reduce_cost(1024, 512, 32, ReduceOp::Sum);
        let circuit_time = circuit.time_ns;
        let bitwise_time = bitwise.cycles as f64 * c.logic_cycle_ns;
        assert!(
            bitwise_time > 5.0 * circuit_time,
            "bitwise {bitwise_time} ns should dwarf circuit {circuit_time} ns"
        );
    }
}
