//! A single memory crossbar: cells, MAGIC execution, reads/writes, and
//! per-row endurance counters.
//!
//! Records are stored one per crossbar row; attributes occupy fixed
//! column ranges (managed by higher layers). The crossbar executes
//! [`Microprogram`]s gate-by-gate on its real bits and keeps count of the
//! cell writes each row has experienced, which feeds the paper's
//! endurance analysis (Fig. 9).

use crate::bitmat::BitMatrix;
use crate::error::SimError;
use crate::isa::{MicroOp, Microprogram};

/// Outcome of running a microprogram on one crossbar (identical across
/// the crossbars of a page, since they execute in lock-step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecSummary {
    /// Logic cycles consumed (one per micro-op).
    pub cycles: u64,
    /// Cells written on this crossbar.
    pub cells_written: u64,
}

/// A `rows × cols` RRAM crossbar with endurance bookkeeping.
///
/// ```
/// use bbpim_sim::crossbar::Crossbar;
/// use bbpim_sim::isa::Microprogram;
///
/// let mut xb = Crossbar::new(64, 32);
/// xb.write_row_bits(0, 0, 8, 0b1010_0110);
/// assert_eq!(xb.read_row_bits(0, 0, 8), 0b1010_0110);
///
/// let mut p = Microprogram::new();
/// p.gate_not(0, 8); // col 8 := NOT col 0
/// p.validate(64, 32)?;
/// xb.execute(&p)?;
/// // row 0's col 0 held the value's LSB (0), so its NOT is 1:
/// assert!(xb.bits().get(0, 8));
/// # Ok::<(), bbpim_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    bits: BitMatrix,
    /// Cumulative cell writes per row (wear-leveling spreads them over
    /// the row's cells, per the paper's endurance assumption).
    row_cell_writes: Vec<u64>,
}

impl Crossbar {
    /// Create a zeroed crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a positive multiple of 64 or `cols` is 0
    /// (see [`BitMatrix::new`]).
    pub fn new(rows: usize, cols: usize) -> Self {
        Crossbar { bits: BitMatrix::new(rows, cols), row_cell_writes: vec![0; rows] }
    }

    /// Rows (records) in this crossbar.
    pub fn rows(&self) -> usize {
        self.bits.rows()
    }

    /// Columns (bits per record slot).
    pub fn cols(&self) -> usize {
        self.bits.cols()
    }

    /// Read-only view of the raw cells.
    pub fn bits(&self) -> &BitMatrix {
        &self.bits
    }

    /// Mutable view of the raw cells *without* endurance accounting.
    ///
    /// Intended for test setup and for modeled operations that do their
    /// own accounting (the bulk-bitwise reduction fast path and the
    /// aggregation circuit).
    pub fn bits_mut_unaccounted(&mut self) -> &mut BitMatrix {
        &mut self.bits
    }

    /// Execute a microprogram gate-by-gate on the stored bits.
    ///
    /// Updates per-row endurance counters: a column op writes one cell in
    /// every row, a row op writes `cols` cells of its destination row.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProgram`] if the program references
    /// cells outside this crossbar.
    pub fn execute(&mut self, program: &Microprogram) -> Result<ExecSummary, SimError> {
        program.validate(self.rows(), self.cols())?;
        let mut cells = 0u64;
        for op in program.ops() {
            match *op {
                MicroOp::InitCol { dst } => {
                    self.bits.fill_col(dst, true);
                    for w in self.row_cell_writes.iter_mut() {
                        *w += 1;
                    }
                    cells += self.rows() as u64;
                }
                MicroOp::NorCols { a, b, dst } => {
                    self.bits.magic_nor_cols(a, b, dst);
                    for w in self.row_cell_writes.iter_mut() {
                        *w += 1;
                    }
                    cells += self.rows() as u64;
                }
                MicroOp::NorManyCols { ref inputs, dst } => {
                    self.bits.magic_nor_many_cols(inputs, dst);
                    for w in self.row_cell_writes.iter_mut() {
                        *w += 1;
                    }
                    cells += self.rows() as u64;
                }
                MicroOp::InitRow { dst } => {
                    self.bits.fill_row(dst, true);
                    self.row_cell_writes[dst] += self.cols() as u64;
                    cells += self.cols() as u64;
                }
                MicroOp::NorRows { a, b, dst } => {
                    self.bits.magic_nor_rows(a, b, dst);
                    self.row_cell_writes[dst] += self.cols() as u64;
                    cells += self.cols() as u64;
                }
            }
        }
        Ok(ExecSummary { cycles: program.cycles(), cells_written: cells })
    }

    /// Host/loader write of `width` bits into a row (endurance-counted).
    pub fn write_row_bits(&mut self, row: usize, col_lo: usize, width: usize, value: u64) {
        self.bits.write_row_bits(row, col_lo, width, value);
        self.row_cell_writes[row] += width as u64;
    }

    /// Read `width ≤ 64` bits of a row (no endurance impact).
    pub fn read_row_bits(&self, row: usize, col_lo: usize, width: usize) -> u64 {
        self.bits.read_row_bits(row, col_lo, width)
    }

    /// Record `width` cell writes against `row` without touching bits —
    /// used by modeled operations (aggregation-circuit write-back,
    /// reduction trees) that mutate bits through
    /// [`Crossbar::bits_mut_unaccounted`].
    pub fn note_row_writes(&mut self, row: usize, width: u64) {
        self.row_cell_writes[row] += width;
    }

    /// Record `per_row` cell writes against *every* row (modeled
    /// column-parallel work).
    pub fn note_all_rows_writes(&mut self, per_row: u64) {
        for w in self.row_cell_writes.iter_mut() {
            *w += per_row;
        }
    }

    /// The largest cell-write count any row has accumulated.
    pub fn max_row_cell_writes(&self) -> u64 {
        self.row_cell_writes.iter().copied().max().unwrap_or(0)
    }

    /// Reset endurance counters (e.g. after load, before measuring a query).
    pub fn reset_endurance(&mut self) {
        self.row_cell_writes.iter_mut().for_each(|w| *w = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nor_reference(a: bool, b: bool) -> bool {
        !(a | b)
    }

    #[test]
    fn execute_not_gate_matches_reference() {
        let mut xb = Crossbar::new(64, 8);
        for r in 0..64 {
            xb.bits_mut_unaccounted().set(r, 0, r % 3 == 0);
        }
        let mut p = Microprogram::new();
        p.gate_not(0, 1);
        xb.execute(&p).unwrap();
        for r in 0..64 {
            assert_eq!(xb.bits().get(r, 1), !xb.bits().get(r, 0), "row {r}");
        }
    }

    #[test]
    fn execute_nor_gate_matches_reference() {
        let mut xb = Crossbar::new(64, 8);
        for r in 0..64 {
            xb.bits_mut_unaccounted().set(r, 0, r & 1 == 1);
            xb.bits_mut_unaccounted().set(r, 1, r & 2 == 2);
        }
        let mut p = Microprogram::new();
        p.gate_nor(0, 1, 2);
        let s = xb.execute(&p).unwrap();
        assert_eq!(s.cycles, 2);
        for r in 0..64 {
            assert_eq!(
                xb.bits().get(r, 2),
                nor_reference(xb.bits().get(r, 0), xb.bits().get(r, 1)),
                "row {r}"
            );
        }
    }

    #[test]
    fn endurance_counts_column_ops_per_row() {
        let mut xb = Crossbar::new(64, 8);
        let mut p = Microprogram::new();
        p.gate_nor(0, 1, 2); // 2 column ops
        p.gate_not(2, 3); // 2 more
        xb.execute(&p).unwrap();
        assert_eq!(xb.max_row_cell_writes(), 4);
    }

    #[test]
    fn endurance_counts_host_writes() {
        let mut xb = Crossbar::new(64, 32);
        xb.write_row_bits(5, 0, 16, 0xffff);
        xb.write_row_bits(5, 16, 16, 0x0);
        assert_eq!(xb.max_row_cell_writes(), 32);
        xb.reset_endurance();
        assert_eq!(xb.max_row_cell_writes(), 0);
    }

    #[test]
    fn execute_rejects_invalid_program() {
        let mut xb = Crossbar::new(64, 8);
        let mut p = Microprogram::new();
        p.nor_cols(0, 1, 9);
        assert!(xb.execute(&p).is_err());
    }

    #[test]
    fn row_op_endurance_hits_destination_row_only() {
        let mut xb = Crossbar::new(64, 8);
        let mut p = Microprogram::new();
        p.push(MicroOp::InitRow { dst: 7 });
        xb.execute(&p).unwrap();
        assert_eq!(xb.max_row_cell_writes(), 8);
    }
}
