//! Host-side view of PIM memory: cache-line reads with the paper's 32×
//! read amplification, and a DDR4 latency/bandwidth timing model.
//!
//! ## Line layout
//!
//! A 2 MB page interleaves its 32 crossbars so that the 64-byte cache
//! line at *(row ρ, chunk γ)* concatenates the 16-bit chunk γ of row ρ
//! from **every** crossbar of the page. Consequences (Section V-B of the
//! paper):
//!
//! * reading a filter-result bit-vector costs one line per row — 1024
//!   lines (64 KB) per 2 MB page, a 32× reduction over the raw data;
//! * reading *one whole record* touches as many lines as the record has
//!   chunks, and every one of those lines drags in the same chunk of the
//!   31 sibling records — "reading a single record brings 32 records";
//! * reading the same attribute of many records amortises: one line
//!   serves up to 32 records.
//!
//! [`LineSet`] computes exact unique-line counts from real selections.
//! [`read_time_ns`]/[`write_time_ns`] convert line counts to time with a
//! `max(bandwidth, latency/MLP)` model across the configured threads.

use std::collections::BTreeSet;

use crate::config::SimConfig;

/// Address of one cache line inside the PIM rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr {
    /// Page index (engine-level id).
    pub page: usize,
    /// Crossbar row.
    pub row: usize,
    /// 16-bit chunk index within the row.
    pub chunk: usize,
}

/// A deduplicating set of line addresses touched by a host phase.
///
/// ```
/// use bbpim_sim::hostmem::{LineAddr, LineSet};
/// let mut s = LineSet::new();
/// s.touch(LineAddr { page: 0, row: 5, chunk: 2 });
/// s.touch(LineAddr { page: 0, row: 5, chunk: 2 }); // same line
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LineSet {
    lines: BTreeSet<LineAddr>,
}

impl LineSet {
    /// Empty set.
    pub fn new() -> Self {
        LineSet::default()
    }

    /// Record that a line is needed.
    pub fn touch(&mut self, addr: LineAddr) {
        self.lines.insert(addr);
    }

    /// Record every chunk line a `[lo, lo+width)` bit range of `row`
    /// spans.
    pub fn touch_bit_range(
        &mut self,
        cfg: &SimConfig,
        page: usize,
        row: usize,
        col_lo: usize,
        width: usize,
    ) {
        if width == 0 {
            return;
        }
        let first = col_lo / cfg.read_width_bits;
        let last = (col_lo + width - 1) / cfg.read_width_bits;
        for chunk in first..=last {
            self.touch(LineAddr { page, row, chunk });
        }
    }

    /// Unique lines.
    pub fn len(&self) -> u64 {
        self.lines.len() as u64
    }

    /// True when no lines were touched.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Iterate the unique lines in address order.
    pub fn iter(&self) -> impl Iterator<Item = &LineAddr> {
        self.lines.iter()
    }
}

/// Time for the host to read `lines` cache lines from the PIM rank with
/// a *streaming* access pattern (sequential addresses the prefetchers
/// cover: filter-result bit-vectors, aggregation result slots),
/// nanoseconds.
///
/// Bandwidth bound: `lines × line_bytes / BW`. Latency bound: each
/// thread keeps `mlp` misses in flight, so `lines / threads × lat / mlp`.
/// The phase takes the larger of the two.
pub fn read_time_ns(cfg: &SimConfig, lines: u64) -> f64 {
    transfer_time_ns(cfg, lines)
}

/// Time for *scattered* (data-dependent) line reads — the host-gb record
/// fetches, whose addresses come from just-read mask bits, defeating
/// prefetch. Effective parallelism is only the thread count
/// (`scatter_mlp` ≈ 1 in-flight miss per thread), which is what makes
/// host-gb latency-dominated and the paper's `a(s)·√r + b(s)` slopes
/// large.
pub fn scattered_read_time_ns(cfg: &SimConfig, lines: u64) -> f64 {
    if lines == 0 {
        return 0.0;
    }
    let per_line = cfg.host.dram_latency_ns / (cfg.host.threads as f64 * cfg.host.scatter_mlp);
    (lines as f64 * per_line).max(transfer_time_ns(cfg, lines))
}

/// Time for the host to write `lines` cache lines into the PIM rank,
/// nanoseconds. Writes are posted, so the same pipe model applies; the
/// RRAM write latency is paid inside the module, overlapped per line.
pub fn write_time_ns(cfg: &SimConfig, lines: u64) -> f64 {
    transfer_time_ns(cfg, lines).max(lines as f64 * cfg.write_latency_ns / cfg.host.mlp)
}

fn transfer_time_ns(cfg: &SimConfig, lines: u64) -> f64 {
    if lines == 0 {
        return 0.0;
    }
    let bytes = lines as f64 * cfg.host.line_bytes as f64;
    let bw_ns = bytes / (cfg.host.dram_bandwidth_gib_s * 1.073_741_824) * 1.0; // GiB/s → B/ns
    let lat_ns = lines as f64 / cfg.host.threads as f64 * cfg.host.dram_latency_ns / cfg.host.mlp;
    bw_ns.max(lat_ns)
}

/// PIM-module energy of reading `lines` lines (every bit of a line is a
/// crossbar cell read), picojoules.
pub fn read_energy_pj(cfg: &SimConfig, lines: u64) -> f64 {
    lines as f64 * (cfg.host.line_bytes * 8) as f64 * cfg.read_energy_pj_per_bit
}

/// PIM-module energy of writing `lines` lines, picojoules.
pub fn write_energy_pj(cfg: &SimConfig, lines: u64) -> f64 {
    lines as f64 * (cfg.host.line_bytes * 8) as f64 * cfg.write_energy_pj_per_bit
}

/// Power one PIM chip draws while the host streams `lines` lines over
/// `time_ns`, watts (the read/write energy is spread over the module's
/// chips).
pub fn chip_power_w(cfg: &SimConfig, energy_pj: f64, time_ns: f64) -> f64 {
    if time_ns <= 0.0 {
        return 0.0;
    }
    energy_pj / time_ns / 1000.0 / cfg.chips as f64 // pJ/ns = mW
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn dedup_same_line() {
        let mut s = LineSet::new();
        for _ in 0..10 {
            s.touch(LineAddr { page: 1, row: 2, chunk: 3 });
        }
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bit_range_spanning_chunks() {
        let c = cfg();
        let mut s = LineSet::new();
        // bits 10..40 with 16-bit chunks → chunks 0, 1, 2
        s.touch_bit_range(&c, 0, 7, 10, 30);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn zero_width_range_touches_nothing() {
        let c = cfg();
        let mut s = LineSet::new();
        s.touch_bit_range(&c, 0, 0, 0, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn same_attribute_of_sibling_records_shares_a_line() {
        // Records at the same row of different crossbars of one page all
        // live behind the same (page, row, chunk) lines — the LineSet
        // only keys on those three, so 32 sibling reads count once.
        let c = cfg();
        let mut s = LineSet::new();
        for _crossbar in 0..32 {
            s.touch_bit_range(&c, 0, 99, 32, 16);
        }
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn read_time_zero_lines() {
        assert_eq!(read_time_ns(&cfg(), 0), 0.0);
    }

    #[test]
    fn read_time_bandwidth_bound_for_many_lines() {
        let c = cfg();
        let lines = 1_000_000;
        let t = read_time_ns(&c, lines);
        let bytes = lines as f64 * 64.0;
        let bw_ns = bytes / (c.host.dram_bandwidth_gib_s * 1.073_741_824);
        assert!((t - bw_ns).abs() / bw_ns < 0.5, "expected ≈ bandwidth bound");
    }

    #[test]
    fn scattered_reads_cost_more_than_streaming() {
        let c = cfg();
        let lines = 10_000;
        assert!(scattered_read_time_ns(&c, lines) > 2.0 * read_time_ns(&c, lines));
        assert_eq!(scattered_read_time_ns(&c, 0), 0.0);
    }

    #[test]
    fn scattered_read_latency_per_line() {
        let c = cfg();
        // 80 ns / (4 threads × 1 in-flight) = 20 ns per line
        let t = scattered_read_time_ns(&c, 1000);
        assert!((t - 20_000.0).abs() < 1.0, "got {t}");
    }

    #[test]
    fn read_time_monotone_in_lines() {
        let c = cfg();
        let t1 = read_time_ns(&c, 1000);
        let t2 = read_time_ns(&c, 2000);
        assert!(t2 > t1);
    }

    #[test]
    fn energy_proportional_to_lines() {
        let c = cfg();
        let e1 = read_energy_pj(&c, 100);
        let e2 = read_energy_pj(&c, 200);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        // one line = 512 bits at 0.84 pJ/bit
        assert!((e1 / 100.0 - 512.0 * 0.84).abs() < 1e-9);
    }

    #[test]
    fn write_energy_exceeds_read_energy() {
        let c = cfg();
        assert!(write_energy_pj(&c, 10) > read_energy_pj(&c, 10));
    }

    #[test]
    fn chip_power_spreads_over_chips() {
        let c = cfg();
        // 8 chips: 8000 pJ over 1000 ns = 8 mW module → 1 mW per chip
        let p = chip_power_w(&c, 8000.0, 1000.0);
        assert!((p - 0.001).abs() < 1e-9);
    }
}
