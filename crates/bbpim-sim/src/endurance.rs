//! Cell endurance and lifetime accounting (Fig. 9 of the paper).
//!
//! RRAM cells survive a bounded number of writes (~10¹² per \[22\] in the
//! paper). The paper's metric: run one query back-to-back for ten years
//! at 100 % duty cycle, assume wear-leveling spreads a row's writes
//! uniformly over its cells, and report the per-cell write count that
//! the worst row requires.

/// Seconds in one (Julian) year.
pub const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Endurance RRAM provides per the paper's reference \[22\].
pub const RRAM_ENDURANCE_WRITES: f64 = 1e12;

/// Writes-per-cell one query charges: the worst row's cell writes spread
/// over the row's `cols` cells.
pub fn writes_per_cell_per_query(max_row_cell_writes: u64, cols: usize) -> f64 {
    max_row_cell_writes as f64 / cols as f64
}

/// Required cell endurance (write cycles) to run a query back-to-back
/// for `years` at 100 % duty cycle (Fig. 9).
///
/// Returns 0 for a query that performs no PIM writes.
///
/// # Panics
///
/// Panics if `query_time_ns` is not positive.
pub fn required_endurance(
    max_row_cell_writes: u64,
    cols: usize,
    query_time_ns: f64,
    years: f64,
) -> f64 {
    assert!(query_time_ns > 0.0, "query time must be positive");
    let per_query = writes_per_cell_per_query(max_row_cell_writes, cols);
    let queries = years * SECONDS_PER_YEAR * 1e9 / query_time_ns;
    per_query * queries
}

/// Expected lifetime in years before a cell exhausts `endurance` writes
/// when the query runs back-to-back.
///
/// Returns `f64::INFINITY` for a query that performs no PIM writes.
///
/// # Panics
///
/// Panics if `query_time_ns` is not positive.
pub fn lifetime_years(
    max_row_cell_writes: u64,
    cols: usize,
    query_time_ns: f64,
    endurance: f64,
) -> f64 {
    assert!(query_time_ns > 0.0, "query time must be positive");
    let per_query = writes_per_cell_per_query(max_row_cell_writes, cols);
    if per_query == 0.0 {
        return f64::INFINITY;
    }
    let queries = endurance / per_query;
    queries * query_time_ns / 1e9 / SECONDS_PER_YEAR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wear_leveling_divides_by_row_cells() {
        assert!((writes_per_cell_per_query(512, 512) - 1.0).abs() < 1e-12);
        assert!((writes_per_cell_per_query(256, 512) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn endurance_matches_paper_magnitude() {
        // A filter-dominated query: ~200 ops per row (0.39 writes/cell)
        // at 10 ms per query for 10 years ≈ 1.2e10 — the order Fig. 9
        // reports.
        let e = required_endurance(200, 512, 10e6, 10.0);
        assert!(e > 1e9 && e < 1e11, "got {e}");
    }

    #[test]
    fn endurance_inversely_proportional_to_query_time() {
        let fast = required_endurance(100, 512, 1e6, 10.0);
        let slow = required_endurance(100, 512, 2e6, 10.0);
        assert!((fast / slow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_writes_means_infinite_lifetime() {
        assert!(lifetime_years(0, 512, 1e6, RRAM_ENDURANCE_WRITES).is_infinite());
    }

    #[test]
    fn lifetime_and_required_endurance_are_inverse() {
        let writes = 300u64;
        let t = 5e6;
        let required = required_endurance(writes, 512, t, 10.0);
        let life = lifetime_years(writes, 512, t, required);
        assert!((life - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_query_time_rejected() {
        let _ = required_endurance(1, 512, 0.0, 10.0);
    }
}
