//! Error type for the PIM simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the PIM simulator.
///
/// Every fallible public function in this crate returns `Result<_, SimError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A column index was outside the crossbar geometry.
    ColumnOutOfRange {
        /// Offending column index.
        col: usize,
        /// Number of columns in the crossbar.
        cols: usize,
    },
    /// A row index was outside the crossbar geometry.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
        /// Number of rows in the crossbar.
        rows: usize,
    },
    /// A microprogram referenced a column outside its declared frame.
    InvalidProgram(String),
    /// The module has no free pages left.
    OutOfCapacity {
        /// Pages requested.
        requested: usize,
        /// Pages still available.
        available: usize,
    },
    /// A page id did not refer to an allocated page.
    NoSuchPage(usize),
    /// A crossbar index was outside the page.
    CrossbarOutOfRange {
        /// Offending crossbar index.
        crossbar: usize,
        /// Crossbars per page.
        per_page: usize,
    },
    /// An aggregation request was malformed (empty source, bad widths…).
    InvalidAggregation(String),
    /// A configuration value was inconsistent (e.g. rows not a multiple of 64).
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ColumnOutOfRange { col, cols } => {
                write!(f, "column {col} out of range (crossbar has {cols} columns)")
            }
            SimError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (crossbar has {rows} rows)")
            }
            SimError::InvalidProgram(msg) => write!(f, "invalid microprogram: {msg}"),
            SimError::OutOfCapacity { requested, available } => write!(
                f,
                "module out of capacity: requested {requested} pages, {available} available"
            ),
            SimError::NoSuchPage(id) => write!(f, "no such page: {id}"),
            SimError::CrossbarOutOfRange { crossbar, per_page } => {
                write!(f, "crossbar {crossbar} out of range (page has {per_page})")
            }
            SimError::InvalidAggregation(msg) => write!(f, "invalid aggregation: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = SimError::ColumnOutOfRange { col: 600, cols: 512 };
        let s = e.to_string();
        assert!(s.contains("column 600"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(SimError::NoSuchPage(3));
        assert!(e.to_string().contains("page"));
    }
}
