//! Energy unit helpers.
//!
//! The simulator accounts internally in picojoules and nanoseconds;
//! reports use millijoules and watts (Figs. 7 and 8). These helpers keep
//! unit conversions in one place.

/// Picojoules → millijoules.
pub fn pj_to_mj(pj: f64) -> f64 {
    pj * 1e-9
}

/// Picojoules → joules.
pub fn pj_to_j(pj: f64) -> f64 {
    pj * 1e-12
}

/// Energy (pJ) over a duration (ns) → average power in watts.
/// Returns 0 for a zero-length interval.
pub fn pj_per_ns_to_w(energy_pj: f64, time_ns: f64) -> f64 {
    if time_ns <= 0.0 {
        0.0
    } else {
        energy_pj / time_ns * 1e-3
    }
}

/// Microwatts → watts.
pub fn uw_to_w(uw: f64) -> f64 {
    uw * 1e-6
}

/// Nanoseconds → seconds.
pub fn ns_to_s(ns: f64) -> f64 {
    ns * 1e-9
}

/// Nanoseconds → milliseconds.
pub fn ns_to_ms(ns: f64) -> f64 {
    ns * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert!((pj_to_mj(1e9) - 1.0).abs() < 1e-12);
        assert!((pj_to_j(1e12) - 1.0).abs() < 1e-12);
        assert!((uw_to_w(1e6) - 1.0).abs() < 1e-12);
        assert!((ns_to_s(1e9) - 1.0).abs() < 1e-12);
        assert!((ns_to_ms(1e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_conversion() {
        // 1000 pJ over 1 ns = 1 µJ/µs = 1 W
        assert!((pj_per_ns_to_w(1000.0, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(pj_per_ns_to_w(1000.0, 0.0), 0.0);
    }
}
