//! Column-major bit matrix — the raw cell array of a crossbar.
//!
//! Bulk-bitwise PIM executes the *same* logic operation on every row of a
//! crossbar simultaneously (Fig. 1a of the paper), so the natural storage
//! is column-major: one column of cells is a contiguous `[u64]` bit
//! vector and a column-parallel MAGIC NOR is a handful of word ops.
//!
//! [`BitMatrix`] is purely functional storage — timing, energy and
//! endurance accounting live in [`crate::crossbar::Crossbar`].

/// A `rows × cols` bit matrix stored column-major.
///
/// ```
/// use bbpim_sim::bitmat::BitMatrix;
/// let mut m = BitMatrix::new(64, 8);
/// m.set(3, 5, true);
/// assert!(m.get(3, 5));
/// assert_eq!(m.popcount_col(5), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    /// 64-bit words per column.
    wpc: usize,
    /// `data[col * wpc .. (col + 1) * wpc]` is column `col`, LSB = row 0.
    data: Vec<u64>,
}

impl BitMatrix {
    /// Create a zeroed matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a positive multiple of 64 or `cols` is 0.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && rows.is_multiple_of(64), "rows must be a positive multiple of 64");
        assert!(cols > 0, "cols must be positive");
        let wpc = rows / 64;
        BitMatrix { rows, cols, wpc, data: vec![0; wpc * cols] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, col: usize) -> std::ops::Range<usize> {
        debug_assert!(col < self.cols);
        col * self.wpc..(col + 1) * self.wpc
    }

    /// Borrow a column as words (LSB of word 0 = row 0).
    pub fn col(&self, col: usize) -> &[u64] {
        &self.data[self.idx(col)]
    }

    /// Mutably borrow a column.
    pub fn col_mut(&mut self, col: usize) -> &mut [u64] {
        let r = self.idx(col);
        &mut self.data[r]
    }

    /// Read a single cell.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.rows);
        let w = self.data[col * self.wpc + row / 64];
        (w >> (row % 64)) & 1 == 1
    }

    /// Write a single cell.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        debug_assert!(row < self.rows);
        let w = &mut self.data[col * self.wpc + row / 64];
        if value {
            *w |= 1u64 << (row % 64);
        } else {
            *w &= !(1u64 << (row % 64));
        }
    }

    /// Set every cell of a column to `value`.
    pub fn fill_col(&mut self, col: usize, value: bool) {
        let fill = if value { u64::MAX } else { 0 };
        for w in self.col_mut(col) {
            *w = fill;
        }
    }

    /// MAGIC column-parallel NOR: `dst &= !(a | b)`.
    ///
    /// MAGIC's stateful NOR can only switch a pre-initialised `1` output
    /// cell to `0`; an output cell already at `0` stays `0`. Callers that
    /// want a true NOR must [`BitMatrix::fill_col`] `dst` with `1` first
    /// (that is exactly what the `INIT` micro-op does).
    pub fn magic_nor_cols(&mut self, a: usize, b: usize, dst: usize) {
        debug_assert!(a != dst && b != dst, "MAGIC output must differ from inputs");
        let (ar, br, dr) = (self.idx(a), self.idx(b), self.idx(dst));
        for i in 0..self.wpc {
            let v = !(self.data[ar.start + i] | self.data[br.start + i]);
            self.data[dr.start + i] &= v;
        }
    }

    /// MAGIC column-parallel multi-input NOR: `dst &= !(c₀ | c₁ | …)`.
    ///
    /// Same stateful-output semantics as [`BitMatrix::magic_nor_cols`].
    pub fn magic_nor_many_cols(&mut self, inputs: &[usize], dst: usize) {
        debug_assert!(inputs.iter().all(|c| *c != dst));
        let dr = self.idx(dst);
        for i in 0..self.wpc {
            let mut acc = 0u64;
            for &c in inputs {
                acc |= self.data[c * self.wpc + i];
            }
            self.data[dr.start + i] &= !acc;
        }
    }

    /// MAGIC row-parallel NOR: for every column `c`,
    /// `cell[dst_row][c] &= !(cell[a_row][c] | cell[b_row][c])`.
    pub fn magic_nor_rows(&mut self, a_row: usize, b_row: usize, dst_row: usize) {
        debug_assert!(a_row != dst_row && b_row != dst_row);
        for c in 0..self.cols {
            let v = !(self.get(a_row, c) | self.get(b_row, c));
            if !v {
                self.set(dst_row, c, false);
            }
        }
    }

    /// Set every cell of a row to `value`.
    pub fn fill_row(&mut self, row: usize, value: bool) {
        for c in 0..self.cols {
            self.set(row, c, value);
        }
    }

    /// Read `width ≤ 64` bits of a row starting at `col_lo` (LSB first).
    pub fn read_row_bits(&self, row: usize, col_lo: usize, width: usize) -> u64 {
        debug_assert!(width <= 64 && col_lo + width <= self.cols);
        let mut v = 0u64;
        for i in 0..width {
            if self.get(row, col_lo + i) {
                v |= 1 << i;
            }
        }
        v
    }

    /// Write `width ≤ 64` bits into a row starting at `col_lo` (LSB first).
    pub fn write_row_bits(&mut self, row: usize, col_lo: usize, width: usize, value: u64) {
        debug_assert!(width <= 64 && col_lo + width <= self.cols);
        for i in 0..width {
            self.set(row, col_lo + i, (value >> i) & 1 == 1);
        }
    }

    /// Count set cells in a column.
    pub fn popcount_col(&self, col: usize) -> usize {
        self.col(col).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the row indices whose cell in `col` is set.
    pub fn ones_in_col(&self, col: usize) -> impl Iterator<Item = usize> + '_ {
        let words = self.col(col);
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let m = BitMatrix::new(64, 4);
        for c in 0..4 {
            assert_eq!(m.popcount_col(c), 0);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn rejects_unaligned_rows() {
        let _ = BitMatrix::new(100, 4);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = BitMatrix::new(128, 3);
        m.set(127, 2, true);
        assert!(m.get(127, 2));
        m.set(127, 2, false);
        assert!(!m.get(127, 2));
    }

    #[test]
    fn magic_nor_cols_on_initialized_output_is_true_nor() {
        let mut m = BitMatrix::new(64, 3);
        // a = rows 0..32 set, b = even rows set
        for r in 0..32 {
            m.set(r, 0, true);
        }
        for r in (0..64).step_by(2) {
            m.set(r, 1, true);
        }
        m.fill_col(2, true); // INIT
        m.magic_nor_cols(0, 1, 2);
        for r in 0..64 {
            let expected = !(m.get(r, 0) | m.get(r, 1));
            assert_eq!(m.get(r, 2), expected, "row {r}");
        }
    }

    #[test]
    fn magic_nor_cols_without_init_only_clears() {
        let mut m = BitMatrix::new(64, 3);
        // dst starts all-zero; NOR of two zero inputs would be 1, but MAGIC
        // cannot switch 0 → 1.
        m.magic_nor_cols(0, 1, 2);
        assert_eq!(m.popcount_col(2), 0);
    }

    #[test]
    fn magic_nor_rows_matches_reference() {
        let mut m = BitMatrix::new(64, 8);
        for c in 0..8 {
            m.set(1, c, c % 2 == 0);
            m.set(2, c, c < 4);
        }
        m.fill_row(5, true);
        m.magic_nor_rows(1, 2, 5);
        for c in 0..8 {
            let expected = !(m.get(1, c) | m.get(2, c));
            assert_eq!(m.get(5, c), expected, "col {c}");
        }
    }

    #[test]
    fn row_bits_roundtrip() {
        let mut m = BitMatrix::new(64, 40);
        m.write_row_bits(10, 3, 17, 0x1_ABCD);
        assert_eq!(m.read_row_bits(10, 3, 17), 0x1_ABCD);
        // neighbours untouched
        assert!(!m.get(10, 2));
        assert!(!m.get(10, 20));
    }

    #[test]
    fn ones_in_col_lists_rows() {
        let mut m = BitMatrix::new(128, 1);
        for r in [0usize, 63, 64, 127] {
            m.set(r, 0, true);
        }
        let ones: Vec<usize> = m.ones_in_col(0).collect();
        assert_eq!(ones, vec![0, 63, 64, 127]);
    }
}
