//! PIM chip area model (Fig. 5 of the paper).
//!
//! The paper sizes the aggregation circuit with a Synopsys/Cadence flow
//! at TSMC 28 nm and the rest of the chip with a modified NVSim, giving
//! a 346 mm² chip whose breakdown Fig. 5 reports. We cannot synthesize
//! CMOS here, so the model is *calibrated*: per-component areas are
//! derived from the published chip total and breakdown percentages, with
//! a first-principles crossbar-array estimate (4F² cells) exposed
//! alongside as a sanity check. All downstream uses in the paper are
//! additive bookkeeping, which this reproduces exactly.

use serde::{Deserialize, Serialize};

use crate::config::SimConfig;

/// One chip-area component.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AreaComponent {
    /// Component name as in Fig. 5.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
}

/// Chip area breakdown.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AreaBreakdown {
    /// Components, largest first.
    pub components: Vec<AreaComponent>,
    /// Chip total in mm².
    pub total_mm2: f64,
}

impl AreaBreakdown {
    /// Percentage share of a component (0 if absent).
    pub fn percent(&self, name: &str) -> f64 {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map(|c| 100.0 * c.area_mm2 / self.total_mm2)
            .unwrap_or(0.0)
    }
}

/// Area model calibrated to the paper's Fig. 5 / 28 nm numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Chip area in mm² (paper: 346 mm² per chip, 8 chips per module).
    pub chip_mm2: f64,
    /// Fig. 5 shares, in percent of the chip.
    pub crossbar_peripherals_pct: f64,
    /// Aggregation circuits (one per crossbar).
    pub agg_circuits_pct: f64,
    /// The memory crossbar arrays themselves.
    pub crossbars_pct: f64,
    /// Bank-level peripherals.
    pub bank_peripherals_pct: f64,
    /// PIM (page) controllers.
    pub pim_controllers_pct: f64,
    /// Global wiring.
    pub wires_pct: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            chip_mm2: 346.0,
            crossbar_peripherals_pct: 40.4,
            agg_circuits_pct: 13.9,
            crossbars_pct: 19.24,
            bank_peripherals_pct: 18.83,
            pim_controllers_pct: 6.84,
            wires_pct: 0.76,
        }
    }
}

impl AreaModel {
    /// The Fig. 5 breakdown for this model.
    pub fn breakdown(&self) -> AreaBreakdown {
        let mut components = vec![
            AreaComponent {
                name: "crossbar peripherals",
                area_mm2: self.chip_mm2 * self.crossbar_peripherals_pct / 100.0,
            },
            AreaComponent {
                name: "crossbars",
                area_mm2: self.chip_mm2 * self.crossbars_pct / 100.0,
            },
            AreaComponent {
                name: "bank peripherals",
                area_mm2: self.chip_mm2 * self.bank_peripherals_pct / 100.0,
            },
            AreaComponent {
                name: "aggregation circuits",
                area_mm2: self.chip_mm2 * self.agg_circuits_pct / 100.0,
            },
            AreaComponent {
                name: "PIM controllers",
                area_mm2: self.chip_mm2 * self.pim_controllers_pct / 100.0,
            },
            AreaComponent { name: "wires", area_mm2: self.chip_mm2 * self.wires_pct / 100.0 },
        ];
        components.sort_by(|a, b| b.area_mm2.total_cmp(&a.area_mm2));
        AreaBreakdown { components, total_mm2: self.chip_mm2 }
    }

    /// Crossbars per chip for a module configuration.
    pub fn crossbars_per_chip(&self, cfg: &SimConfig) -> usize {
        (cfg.module_capacity_bytes / cfg.chips as u64 / cfg.crossbar_bytes() as u64) as usize
    }

    /// Area of one aggregation circuit in µm² implied by the calibration
    /// (paper geometry: ≈ 0.139 × 346 mm² / 65536 ≈ 734 µm² — a credible
    /// 28 nm ALU-plus-register footprint).
    pub fn agg_circuit_um2(&self, cfg: &SimConfig) -> f64 {
        self.chip_mm2 * self.agg_circuits_pct / 100.0 * 1e6 / self.crossbars_per_chip(cfg) as f64
    }

    /// First-principles crossbar-array area per chip (4F² RRAM cells at
    /// `feature_nm`), mm² — a sanity check on the calibrated share.
    pub fn crossbar_array_mm2_first_principles(&self, cfg: &SimConfig, feature_nm: f64) -> f64 {
        let cell_mm2 = 4.0 * (feature_nm * 1e-6) * (feature_nm * 1e-6);
        let cells = cfg.crossbar_rows as f64 * cfg.crossbar_cols as f64;
        cell_mm2 * cells * self.crossbars_per_chip(cfg) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_percentages_sum_to_about_100() {
        let b = AreaModel::default().breakdown();
        let sum: f64 = b.components.iter().map(|c| 100.0 * c.area_mm2 / b.total_mm2).sum();
        assert!((sum - 100.0).abs() < 0.2, "sum {sum}");
    }

    #[test]
    fn agg_circuits_take_13_9_percent() {
        let b = AreaModel::default().breakdown();
        assert!((b.percent("aggregation circuits") - 13.9).abs() < 1e-9);
    }

    #[test]
    fn components_sorted_descending() {
        let b = AreaModel::default().breakdown();
        for w in b.components.windows(2) {
            assert!(w[0].area_mm2 >= w[1].area_mm2);
        }
        assert_eq!(b.components[0].name, "crossbar peripherals");
    }

    #[test]
    fn paper_geometry_has_65536_crossbars_per_chip() {
        let cfg = SimConfig::default();
        assert_eq!(AreaModel::default().crossbars_per_chip(&cfg), 65536);
    }

    #[test]
    fn agg_circuit_footprint_is_credible_28nm() {
        let cfg = SimConfig::default();
        let um2 = AreaModel::default().agg_circuit_um2(&cfg);
        assert!(um2 > 400.0 && um2 < 1200.0, "got {um2} µm²");
    }

    #[test]
    fn first_principles_crossbar_area_same_order_as_calibrated() {
        let cfg = SimConfig::default();
        let model = AreaModel::default();
        let fp = model.crossbar_array_mm2_first_principles(&cfg, 28.0);
        let calibrated = model.chip_mm2 * model.crossbars_pct / 100.0;
        let ratio = fp / calibrated;
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
    }
}
