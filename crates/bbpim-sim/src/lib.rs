//! # bbpim-sim — a bit-accurate bulk-bitwise PIM simulator
//!
//! This crate is the hardware substrate for the `bbpim` workspace, a
//! clean-room reproduction of *"Enabling Relational Database Analytical
//! Processing in Bulk-Bitwise Processing-In-Memory"* (Perach, Ronen,
//! Kvatinsky — SOCC 2023). It models an RRAM-based bulk-bitwise PIM
//! module used as part of a host's main memory:
//!
//! * [`crossbar::Crossbar`] — a 1024×512 memory crossbar whose cells are
//!   real bits; MAGIC-style stateful logic is executed on them.
//! * [`isa`] — the micro-operation set a PIM page controller executes
//!   (column-parallel and row-parallel `INIT`/`NOR`).
//! * [`compiler`] — predicate and arithmetic compilers that lower
//!   equality, comparison, addition, subtraction, multiplication, and the
//!   paper's Algorithm 1 multiplexer to NOR-only microprograms.
//! * [`aggcircuit`] — the paper's per-crossbar peripheral aggregation
//!   circuit (masked serial 16-bit reads through a SUM/MIN/MAX ALU).
//! * [`module::PimModule`] — huge pages (2 MB = 32 crossbars), per-page
//!   PIM controllers, an 8-chip module, and request dispatch.
//! * [`hostmem`] — the host-side view of PIM memory: 64-byte cache lines
//!   that gather the same 16-bit chunk from all 32 crossbars of a page
//!   (the paper's 32× read amplification), with a DDR4 timing model.
//! * [`hostbus`] — a single-server FIFO resource modeling contention on
//!   a shared host channel (the streaming scheduler in `bbpim-sched`
//!   serialises per-page dispatch of concurrent queries through it).
//! * [`timeline`], [`energy`], [`endurance`], [`area`] — simulated time,
//!   energy, peak per-chip power, cell endurance, and chip area
//!   accounting (Table I constants, Figs. 5 and 9).
//!
//! ## Quick start
//!
//! ```
//! use bbpim_sim::config::SimConfig;
//! use bbpim_sim::module::PimModule;
//!
//! let cfg = SimConfig::default();
//! let mut module = PimModule::new(cfg);
//! let pages = module.alloc_pages(1).expect("module has capacity");
//! assert_eq!(module.config().crossbars_per_page(), 32);
//! assert_eq!(module.page(pages[0]).crossbar_count(), 32);
//! ```

pub mod aggcircuit;
pub mod area;
pub mod bitmat;
pub mod compiler;
pub mod config;
pub mod crossbar;
pub mod endurance;
pub mod energy;
pub mod error;
pub mod hostbus;
pub mod hostmem;
pub mod isa;
pub mod maskwire;
pub mod module;
pub mod page;
pub mod timeline;

pub use config::SimConfig;
pub use error::SimError;
pub use module::{PimModule, XferPolicy};
