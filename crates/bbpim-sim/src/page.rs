//! A huge page: the unit of PIM execution.
//!
//! A 2 MB page consists of 32 crossbars that its PIM controller drives
//! in lock-step — one PIM request executes the same microprogram on all
//! of them concurrently (Section II-B). Records fill a page
//! *interleaved*: record `r` lives in crossbar `r mod 32` at row
//! `r div 32`, so 32 consecutive records share one row index and hence
//! one cache line per chunk — the layout behind both the read
//! amplification and the dense-scan amortisation the paper describes.

use crate::config::SimConfig;
use crate::crossbar::{Crossbar, ExecSummary};
use crate::error::SimError;
use crate::isa::Microprogram;

/// A record's physical slot inside a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordSlot {
    /// Crossbar index within the page.
    pub crossbar: usize,
    /// Row within the crossbar.
    pub row: usize,
}

/// One huge page: `crossbars_per_page` crossbars driven in lock-step.
#[derive(Debug, Clone)]
pub struct PimPage {
    crossbars: Vec<Crossbar>,
    rows: usize,
}

impl PimPage {
    /// Create a zeroed page for a configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        let n = cfg.crossbars_per_page();
        let crossbars =
            (0..n).map(|_| Crossbar::new(cfg.crossbar_rows, cfg.crossbar_cols)).collect();
        PimPage { crossbars, rows: cfg.crossbar_rows }
    }

    /// Crossbars in this page.
    pub fn crossbar_count(&self) -> usize {
        self.crossbars.len()
    }

    /// Records this page can hold.
    pub fn record_capacity(&self) -> usize {
        self.crossbars.len() * self.rows
    }

    /// Borrow a crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn crossbar(&self, i: usize) -> &Crossbar {
        &self.crossbars[i]
    }

    /// Mutably borrow a crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn crossbar_mut(&mut self, i: usize) -> &mut Crossbar {
        &mut self.crossbars[i]
    }

    /// Iterate the crossbars.
    pub fn crossbars(&self) -> impl Iterator<Item = &Crossbar> {
        self.crossbars.iter()
    }

    /// Mutably iterate the crossbars.
    pub fn crossbars_mut(&mut self) -> impl Iterator<Item = &mut Crossbar> {
        self.crossbars.iter_mut()
    }

    /// Physical slot of record `r` (interleaved mapping).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RowOutOfRange`] past the page capacity.
    pub fn record_slot(&self, r: usize) -> Result<RecordSlot, SimError> {
        if r >= self.record_capacity() {
            return Err(SimError::RowOutOfRange { row: r, rows: self.record_capacity() });
        }
        Ok(RecordSlot { crossbar: r % self.crossbars.len(), row: r / self.crossbars.len() })
    }

    /// Inverse of [`PimPage::record_slot`].
    pub fn slot_record(&self, slot: RecordSlot) -> usize {
        slot.row * self.crossbars.len() + slot.crossbar
    }

    /// Execute one microprogram on every crossbar (lock-step).
    ///
    /// Returns the per-crossbar summary (identical for all of them) and
    /// the page's crossbar count for energy scaling.
    ///
    /// # Errors
    ///
    /// Propagates program validation failures.
    pub fn execute(&mut self, program: &Microprogram) -> Result<ExecSummary, SimError> {
        let mut summary = ExecSummary::default();
        for xb in self.crossbars.iter_mut() {
            summary = xb.execute(program)?;
        }
        Ok(summary)
    }

    /// Write `width` bits of a record's row at bit offset `col_lo`
    /// (endurance-counted; used by the loader and host-side writes).
    ///
    /// # Errors
    ///
    /// Propagates slot errors.
    pub fn write_record_bits(
        &mut self,
        record: usize,
        col_lo: usize,
        width: usize,
        value: u64,
    ) -> Result<(), SimError> {
        let slot = self.record_slot(record)?;
        self.crossbars[slot.crossbar].write_row_bits(slot.row, col_lo, width, value);
        Ok(())
    }

    /// Read `width` bits of a record's row at bit offset `col_lo`.
    ///
    /// # Errors
    ///
    /// Propagates slot errors.
    pub fn read_record_bits(
        &self,
        record: usize,
        col_lo: usize,
        width: usize,
    ) -> Result<u64, SimError> {
        let slot = self.record_slot(record)?;
        Ok(self.crossbars[slot.crossbar].read_row_bits(slot.row, col_lo, width))
    }

    /// The worst per-row cell-write count over all crossbars.
    pub fn max_row_cell_writes(&self) -> u64 {
        self.crossbars.iter().map(Crossbar::max_row_cell_writes).max().unwrap_or(0)
    }

    /// Reset endurance counters on every crossbar.
    pub fn reset_endurance(&mut self) {
        for xb in self.crossbars.iter_mut() {
            xb.reset_endurance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> PimPage {
        PimPage::new(&SimConfig::small_for_tests())
    }

    #[test]
    fn geometry_from_config() {
        let p = page();
        assert_eq!(p.crossbar_count(), 4);
        assert_eq!(p.record_capacity(), 4 * 64);
    }

    #[test]
    fn interleaved_slot_mapping() {
        let p = page();
        assert_eq!(p.record_slot(0).unwrap(), RecordSlot { crossbar: 0, row: 0 });
        assert_eq!(p.record_slot(1).unwrap(), RecordSlot { crossbar: 1, row: 0 });
        assert_eq!(p.record_slot(4).unwrap(), RecordSlot { crossbar: 0, row: 1 });
        assert_eq!(p.record_slot(255).unwrap(), RecordSlot { crossbar: 3, row: 63 });
    }

    #[test]
    fn slot_roundtrip() {
        let p = page();
        for r in [0usize, 1, 5, 100, 255] {
            assert_eq!(p.slot_record(p.record_slot(r).unwrap()), r);
        }
    }

    #[test]
    fn slot_out_of_capacity_errors() {
        assert!(page().record_slot(256).is_err());
    }

    #[test]
    fn consecutive_records_share_row_index() {
        // 32-consecutive-record amortisation (here 4 per row): records
        // 0..4 are at row 0 of the 4 crossbars.
        let p = page();
        for r in 0..4 {
            assert_eq!(p.record_slot(r).unwrap().row, 0);
        }
    }

    #[test]
    fn record_bits_roundtrip() {
        let mut p = page();
        p.write_record_bits(37, 8, 16, 0xBEEF).unwrap();
        assert_eq!(p.read_record_bits(37, 8, 16).unwrap(), 0xBEEF);
        // sibling record untouched
        assert_eq!(p.read_record_bits(36, 8, 16).unwrap(), 0);
    }

    #[test]
    fn execute_runs_on_all_crossbars() {
        let mut p = page();
        // set column 0 of every record, derive NOT into column 1
        for r in 0..p.record_capacity() {
            p.write_record_bits(r, 0, 1, 1).unwrap();
        }
        let mut prog = Microprogram::new();
        prog.gate_not(0, 1);
        p.execute(&prog).unwrap();
        for r in 0..p.record_capacity() {
            assert_eq!(p.read_record_bits(r, 1, 1).unwrap(), 0, "record {r}");
        }
    }

    #[test]
    fn endurance_rollup_is_max_over_crossbars() {
        let mut p = page();
        p.write_record_bits(0, 0, 8, 0xFF).unwrap(); // crossbar 0, row 0: 8 writes
        p.write_record_bits(1, 0, 4, 0xF).unwrap(); // crossbar 1: 4 writes
        assert_eq!(p.max_row_cell_writes(), 8);
        p.reset_endurance();
        assert_eq!(p.max_row_cell_writes(), 0);
    }
}
