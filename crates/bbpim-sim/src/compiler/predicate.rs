//! Predicate compilers: `=`, `<`, `>`, `BETWEEN`, `IN` against constants.
//!
//! A compiled predicate leaves a one-bit *result column* (1 = record
//! matches) that higher layers AND into the page's filter mask. All
//! programs are column-parallel, so one execution evaluates the
//! predicate for every record of every crossbar of a page.

use crate::compiler::{CodeBuilder, ColRange};
use crate::error::SimError;

/// Compile `attr == value` into a fresh result column.
///
/// Uses the multi-input NOR form `AND_i t_i = NOR_i ¬t_i` where `t_i` is
/// the attribute bit (for a 1 in `value`) or its complement (for a 0):
/// cost is 2 cycles per set bit of `value` plus one wide NOR.
///
/// # Errors
///
/// Returns [`SimError::InvalidProgram`] if `value` does not fit in
/// `attr.width` bits, or on scratch exhaustion.
pub fn compile_eq_const(
    b: &mut CodeBuilder<'_>,
    attr: ColRange,
    value: u64,
) -> Result<usize, SimError> {
    check_fits(attr, value)?;
    if attr.width == 0 {
        return Err(SimError::InvalidProgram("equality on zero-width attribute".into()));
    }
    // ¬t_i: for value bit 1 → ¬b_i (needs a NOT); for value bit 0 → b_i.
    let mut nor_inputs = Vec::with_capacity(attr.width);
    let mut temporaries = Vec::new();
    for i in 0..attr.width {
        let bit_col = attr.bit(i);
        if (value >> i) & 1 == 1 {
            let n = b.emit_not(bit_col)?;
            temporaries.push(n);
            nor_inputs.push(n);
        } else {
            nor_inputs.push(bit_col);
        }
    }
    let out = b.emit_nor_many(nor_inputs)?;
    for t in temporaries {
        b.release(t);
    }
    Ok(out)
}

/// Compile `attr != value` into a fresh result column.
///
/// # Errors
///
/// Same conditions as [`compile_eq_const`].
pub fn compile_neq_const(
    b: &mut CodeBuilder<'_>,
    attr: ColRange,
    value: u64,
) -> Result<usize, SimError> {
    let eq = compile_eq_const(b, attr, value)?;
    let out = b.emit_not(eq)?;
    b.release(eq);
    Ok(out)
}

/// Compile `attr < value` (unsigned) into a fresh result column.
///
/// MSB-to-LSB scan maintaining `lt` (already strictly less) and `eq`
/// (prefix equal so far):
/// for a constant bit 1: `lt |= eq & ¬b_i; eq &= b_i`;
/// for a constant bit 0: `eq &= ¬b_i`.
///
/// # Errors
///
/// Returns [`SimError::InvalidProgram`] if `value` does not fit, or on
/// scratch exhaustion.
pub fn compile_lt_const(
    b: &mut CodeBuilder<'_>,
    attr: ColRange,
    value: u64,
) -> Result<usize, SimError> {
    check_fits(attr, value)?;
    let one = b.one()?;
    let zero = b.zero()?;
    // lt starts false, eq starts true.
    let mut lt = b.emit_not(one)?; // 0
    let mut eq = b.emit_not(zero)?; // 1
    for i in (0..attr.width).rev() {
        let bit_col = attr.bit(i);
        if (value >> i) & 1 == 1 {
            let nb = b.emit_not(bit_col)?;
            let eq_and_nb = b.emit_and(eq, nb)?;
            let new_lt = b.emit_or(lt, eq_and_nb)?;
            let new_eq = b.emit_and(eq, bit_col)?;
            b.release(nb);
            b.release(eq_and_nb);
            b.release(lt);
            b.release(eq);
            lt = new_lt;
            eq = new_eq;
        } else {
            let nb = b.emit_not(bit_col)?;
            let new_eq = b.emit_and(eq, nb)?;
            b.release(nb);
            b.release(eq);
            eq = new_eq;
        }
    }
    b.release(eq);
    Ok(lt)
}

/// Compile `attr > value` (unsigned) into a fresh result column.
///
/// Symmetric scan: for a constant bit 0: `gt |= eq & b_i; eq &= ¬b_i`;
/// for a constant bit 1: `eq &= b_i`.
///
/// # Errors
///
/// Same conditions as [`compile_lt_const`].
pub fn compile_gt_const(
    b: &mut CodeBuilder<'_>,
    attr: ColRange,
    value: u64,
) -> Result<usize, SimError> {
    check_fits(attr, value)?;
    let one = b.one()?;
    let zero = b.zero()?;
    let mut gt = b.emit_not(one)?; // 0
    let mut eq = b.emit_not(zero)?; // 1
    for i in (0..attr.width).rev() {
        let bit_col = attr.bit(i);
        if (value >> i) & 1 == 1 {
            let new_eq = b.emit_and(eq, bit_col)?;
            b.release(eq);
            eq = new_eq;
        } else {
            let eq_and_b = b.emit_and(eq, bit_col)?;
            let new_gt = b.emit_or(gt, eq_and_b)?;
            let nb = b.emit_not(bit_col)?;
            let new_eq = b.emit_and(eq, nb)?;
            b.release(eq_and_b);
            b.release(nb);
            b.release(gt);
            b.release(eq);
            gt = new_gt;
            eq = new_eq;
        }
    }
    b.release(eq);
    Ok(gt)
}

/// Compile `lo <= attr <= hi` (unsigned, inclusive) into a fresh result
/// column: `¬(attr < lo) AND ¬(attr > hi)`.
///
/// # Errors
///
/// Returns [`SimError::InvalidProgram`] if `lo > hi`, a bound does not
/// fit, or on scratch exhaustion.
pub fn compile_between_const(
    b: &mut CodeBuilder<'_>,
    attr: ColRange,
    lo: u64,
    hi: u64,
) -> Result<usize, SimError> {
    if lo > hi {
        return Err(SimError::InvalidProgram(format!("BETWEEN with lo {lo} > hi {hi}")));
    }
    let lt_lo = compile_lt_const(b, attr, lo)?;
    let gt_hi = compile_gt_const(b, attr, hi)?;
    let below = b.emit_not(lt_lo)?;
    let above = b.emit_not(gt_hi)?;
    let out = b.emit_and(below, above)?;
    b.release(lt_lo);
    b.release(gt_hi);
    b.release(below);
    b.release(above);
    Ok(out)
}

/// Compile `attr IN (set…)` into a fresh result column (OR of equalities).
///
/// # Errors
///
/// Returns [`SimError::InvalidProgram`] on an empty set, a non-fitting
/// member, or scratch exhaustion.
pub fn compile_in_set(
    b: &mut CodeBuilder<'_>,
    attr: ColRange,
    set: &[u64],
) -> Result<usize, SimError> {
    if set.is_empty() {
        return Err(SimError::InvalidProgram("IN over empty set".into()));
    }
    let mut eqs = Vec::with_capacity(set.len());
    for &v in set {
        eqs.push(compile_eq_const(b, attr, v)?);
    }
    let out = b.emit_or_many(eqs.clone())?;
    for c in eqs {
        b.release(c);
    }
    Ok(out)
}

fn check_fits(attr: ColRange, value: u64) -> Result<(), SimError> {
    if attr.width < 64 && value >> attr.width != 0 {
        return Err(SimError::InvalidProgram(format!(
            "constant {value} does not fit in {}-bit attribute",
            attr.width
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::ScratchPool;
    use crate::crossbar::Crossbar;

    const ATTR: ColRange = ColRange { lo: 0, width: 8 };
    const SCRATCH: ColRange = ColRange { lo: 16, width: 100 };

    /// Crossbar whose row r stores value r in an 8-bit attribute.
    fn identity_crossbar() -> Crossbar {
        let mut xb = Crossbar::new(256, 128);
        for r in 0..256 {
            xb.write_row_bits(r, ATTR.lo, ATTR.width, r as u64);
        }
        xb
    }

    fn run(
        emit: impl FnOnce(&mut CodeBuilder<'_>) -> Result<usize, SimError>,
    ) -> (Crossbar, usize) {
        let mut xb = identity_crossbar();
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        let out = emit(&mut b).unwrap();
        let prog = b.finish();
        prog.validate(xb.rows(), xb.cols()).unwrap();
        xb.execute(&prog).unwrap();
        (xb, out)
    }

    #[test]
    fn eq_const_selects_exactly_one_row() {
        let (xb, out) = run(|b| compile_eq_const(b, ATTR, 0xA5));
        for r in 0..256 {
            assert_eq!(xb.bits().get(r, out), r == 0xA5, "row {r}");
        }
    }

    #[test]
    fn eq_zero_matches_row_zero_only() {
        let (xb, out) = run(|b| compile_eq_const(b, ATTR, 0));
        assert_eq!(xb.bits().popcount_col(out), 1);
        assert!(xb.bits().get(0, out));
    }

    #[test]
    fn neq_const_is_complement() {
        let (xb, out) = run(|b| compile_neq_const(b, ATTR, 7));
        for r in 0..256 {
            assert_eq!(xb.bits().get(r, out), r != 7, "row {r}");
        }
    }

    #[test]
    fn lt_const_matches_reference() {
        for threshold in [0u64, 1, 2, 100, 128, 255] {
            let (xb, out) = run(|b| compile_lt_const(b, ATTR, threshold));
            for r in 0..256 {
                assert_eq!(xb.bits().get(r, out), (r as u64) < threshold, "r={r} t={threshold}");
            }
        }
    }

    #[test]
    fn gt_const_matches_reference() {
        for threshold in [0u64, 1, 127, 254, 255] {
            let (xb, out) = run(|b| compile_gt_const(b, ATTR, threshold));
            for r in 0..256 {
                assert_eq!(xb.bits().get(r, out), (r as u64) > threshold, "r={r} t={threshold}");
            }
        }
    }

    #[test]
    fn between_is_inclusive() {
        let (xb, out) = run(|b| compile_between_const(b, ATTR, 10, 20));
        for r in 0..256 {
            assert_eq!(xb.bits().get(r, out), (10..=20).contains(&r), "row {r}");
        }
    }

    #[test]
    fn between_rejects_inverted_bounds() {
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        assert!(compile_between_const(&mut b, ATTR, 30, 10).is_err());
    }

    #[test]
    fn in_set_matches_members_only() {
        let set = [3u64, 77, 200];
        let (xb, out) = run(|b| compile_in_set(b, ATTR, &set));
        for r in 0..256 {
            assert_eq!(xb.bits().get(r, out), set.contains(&(r as u64)), "row {r}");
        }
    }

    #[test]
    fn in_set_rejects_empty() {
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        assert!(compile_in_set(&mut b, ATTR, &[]).is_err());
    }

    #[test]
    fn eq_rejects_oversized_constant() {
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        assert!(compile_eq_const(&mut b, ATTR, 256).is_err());
    }

    #[test]
    fn conjunction_of_predicates() {
        // (attr > 50) AND (attr < 60): rows 51..=59
        let (xb, out) = run(|b| {
            let gt = compile_gt_const(b, ATTR, 50)?;
            let lt = compile_lt_const(b, ATTR, 60)?;
            let out = b.emit_and(gt, lt)?;
            b.release(gt);
            b.release(lt);
            Ok(out)
        });
        for r in 0..256 {
            assert_eq!(xb.bits().get(r, out), (51..=59).contains(&r), "row {r}");
        }
    }

    #[test]
    fn eq_cost_scales_with_set_bits() {
        // value with no set bits: just the wide NOR (2 cycles)
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        compile_eq_const(&mut b, ATTR, 0).unwrap();
        assert_eq!(b.finish().cycles(), 2);

        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        compile_eq_const(&mut b, ATTR, 0xFF).unwrap();
        // 8 NOTs (2 cycles each) + wide NOR (2 cycles)
        assert_eq!(b.finish().cycles(), 8 * 2 + 2);
    }
}
