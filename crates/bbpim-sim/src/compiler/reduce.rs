//! Pure bulk-bitwise aggregation — the PIMDB baseline.
//!
//! PIMDB (the system the paper extends) aggregates *inside* the crossbar
//! with logic operations only: the selected values are masked, then a
//! binary reduction tree folds the upper half of the live rows into the
//! lower half — a row-parallel copy into scratch rows followed by a
//! column-parallel ripple add (or compare-and-select for MIN/MAX) — for
//! `log₂(rows)` levels. This is exactly the cost the paper's aggregation
//! circuit removes (Section IV: aggregation is "expensive in terms of
//! execution time, power, and cell endurance").
//!
//! Executing ~13 k micro-ops per crossbar gate-by-gate adds nothing over
//! the closed-form count (the sequence is data-independent), so this
//! module provides a **modeled** operation: [`reduce_cost`] charges the
//! exact op counts of the sequence described above, and
//! [`masked_reduce`] computes the functionally identical result that the
//! tree would leave in the result slot. Unit tests pin the cost formula;
//! the result path is verified against plain iterator folds.

use serde::{Deserialize, Serialize};

/// Aggregation operator supported in-memory (paper: SUM, MIN, MAX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Wrapping sum at the result width.
    Sum,
    /// Minimum of the selected values (identity: all-ones).
    Min,
    /// Maximum of the selected values (identity: zero).
    Max,
}

/// Cost of one pure-bitwise reduction over a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceCost {
    /// Total logic cycles (one per micro-op).
    pub cycles: u64,
    /// Column-parallel micro-ops (each writes one cell in every row).
    pub col_ops: u64,
    /// Row-parallel micro-ops (each writes `cols` cells of one row).
    pub row_ops: u64,
    /// Worst-case cell writes experienced by a single row.
    pub max_row_cell_writes: u64,
}

/// Micro-ops for one column-parallel AND gate (INIT+NOR ×3: two NOTs and
/// the NOR that combines them).
const AND_OPS_PER_BIT: u64 = 6;
/// Micro-ops per bit of a column-parallel ripple-carry add, including the
/// copy-back into the accumulator columns (full adder ≈ 13 gates).
const ADD_OPS_PER_BIT: u64 = 30;
/// Micro-ops per bit of a column-parallel compare-and-select (MIN/MAX).
const CMP_SEL_OPS_PER_BIT: u64 = 18;
/// Row-parallel micro-ops per row copy (init temp, NOR to temp, init
/// destination, NOR back).
const ROW_COPY_OPS: u64 = 4;

/// Closed-form cost of a masked reduction of `width`-bit values over a
/// `rows × cols` crossbar.
///
/// The sequence: one masking pass (`AND` of every value bit with the
/// selection bit), then `log₂ rows` fold levels, level ℓ copying
/// `rows/2^ℓ` rows (4 row-ops each) and running one column-parallel
/// combine across the folded pairs.
///
/// # Panics
///
/// Panics if `rows` is not a power of two (crossbars always are).
pub fn reduce_cost(rows: usize, cols: usize, width: usize, op: ReduceOp) -> ReduceCost {
    assert!(rows.is_power_of_two(), "crossbar rows must be a power of two");
    let levels = rows.trailing_zeros() as u64;
    let combine_per_bit = match op {
        ReduceOp::Sum => ADD_OPS_PER_BIT,
        ReduceOp::Min | ReduceOp::Max => CMP_SEL_OPS_PER_BIT,
    };
    let w = width as u64;
    let col_ops = AND_OPS_PER_BIT * w + levels * combine_per_bit * w;
    let row_ops = ROW_COPY_OPS * (rows as u64 - 1);
    ReduceCost {
        cycles: col_ops + row_ops,
        col_ops,
        row_ops,
        // Column ops hit every row once each; the worst row additionally
        // serves as a copy destination once per level (4 row-ops × cols
        // cells each).
        max_row_cell_writes: col_ops + ROW_COPY_OPS * levels * cols as u64,
    }
}

/// The value the reduction tree leaves behind: fold of `values[i]` for
/// rows with `mask[i]` set, wrapped to `width` bits for SUM.
///
/// Identities follow the hardware: SUM starts at 0, MIN at all-ones
/// (`2^width − 1`), MAX at 0 — so an empty selection yields the
/// identity, exactly as the masked tree would.
///
/// # Panics
///
/// Panics if `values` and `mask` lengths differ or `width` is 0 or > 64.
pub fn masked_reduce(values: &[u64], mask: &[bool], width: usize, op: ReduceOp) -> u64 {
    assert_eq!(values.len(), mask.len(), "values/mask length mismatch");
    assert!(width > 0 && width <= 64, "width must be in 1..=64");
    let modulus_mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    let selected = values.iter().zip(mask).filter(|(_, &m)| m).map(|(&v, _)| v & modulus_mask);
    match op {
        ReduceOp::Sum => selected.fold(0u64, |acc, v| acc.wrapping_add(v)) & modulus_mask,
        ReduceOp::Min => selected.fold(modulus_mask, u64::min),
        ReduceOp::Max => selected.fold(0, u64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_grows_with_width() {
        let narrow = reduce_cost(1024, 512, 16, ReduceOp::Sum);
        let wide = reduce_cost(1024, 512, 32, ReduceOp::Sum);
        assert!(wide.cycles > narrow.cycles);
        assert_eq!(wide.row_ops, narrow.row_ops); // copies are width-independent
    }

    #[test]
    fn cost_formula_pinned_for_paper_geometry() {
        // 1024 rows, 32-bit sum: 10 levels.
        let c = reduce_cost(1024, 512, 32, ReduceOp::Sum);
        assert_eq!(c.col_ops, 6 * 32 + 10 * 30 * 32);
        assert_eq!(c.row_ops, 4 * 1023);
        assert_eq!(c.cycles, c.col_ops + c.row_ops);
        // ≈ 13.9 k cycles → ~417 µs at 30 ns: the expense the aggregation
        // circuit eliminates.
        assert!(c.cycles > 13_000 && c.cycles < 15_000);
    }

    #[test]
    fn min_max_cheaper_than_sum() {
        let sum = reduce_cost(1024, 512, 32, ReduceOp::Sum);
        let min = reduce_cost(1024, 512, 32, ReduceOp::Min);
        assert!(min.cycles < sum.cycles);
    }

    #[test]
    fn endurance_dominated_by_row_copies() {
        let c = reduce_cost(1024, 512, 32, ReduceOp::Sum);
        // 10 levels × 4 ops × 512 cells ≫ col op share
        assert!(c.max_row_cell_writes > 10 * 4 * 512);
    }

    #[test]
    fn masked_sum_matches_fold() {
        let values = [5u64, 10, 20, 40];
        let mask = [true, false, true, true];
        assert_eq!(masked_reduce(&values, &mask, 16, ReduceOp::Sum), 65);
    }

    #[test]
    fn masked_sum_wraps_at_width() {
        let values = [200u64, 100];
        let mask = [true, true];
        assert_eq!(masked_reduce(&values, &mask, 8, ReduceOp::Sum), (200 + 100) % 256);
    }

    #[test]
    fn empty_selection_yields_identity() {
        let values = [5u64, 6];
        let mask = [false, false];
        assert_eq!(masked_reduce(&values, &mask, 8, ReduceOp::Sum), 0);
        assert_eq!(masked_reduce(&values, &mask, 8, ReduceOp::Min), 255);
        assert_eq!(masked_reduce(&values, &mask, 8, ReduceOp::Max), 0);
    }

    #[test]
    fn min_max_respect_mask() {
        let values = [9u64, 1, 250, 17];
        let mask = [true, false, false, true];
        assert_eq!(masked_reduce(&values, &mask, 8, ReduceOp::Min), 9);
        assert_eq!(masked_reduce(&values, &mask, 8, ReduceOp::Max), 17);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cost_rejects_non_pow2_rows() {
        let _ = reduce_cost(1000, 512, 16, ReduceOp::Sum);
    }
}
