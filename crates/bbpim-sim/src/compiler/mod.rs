//! Compilers that lower database operations to NOR-only microprograms.
//!
//! Everything a query needs inside the crossbar — equality and range
//! predicates, the Algorithm 1 multiplexer for UPDATE, and the
//! arithmetic that materialises aggregate expressions such as
//! `extendedprice · discount` — is compiled down to `INIT`/`NOR`
//! micro-ops and *executed on the stored bits*, so cycle counts, energy
//! and endurance are those of the real gate sequence, not an estimate.
//!
//! * [`CodeBuilder`] — gate-level emission with scratch-column
//!   allocation (NOT/OR/AND/XOR built from MAGIC NOR).
//! * [`predicate`] — `=`, `<`, `>`, `BETWEEN`, `IN` against constants,
//!   plus conjunction/disjunction of result columns.
//! * [`arith`] — ripple-carry add/sub and shift-add multiply between
//!   attribute column ranges.
//! * [`mux`] — the paper's Algorithm 1: select-bit-controlled overwrite
//!   of an attribute with an immediate.
//! * [`reduce`] — the cost model of *pure bulk-bitwise* aggregation
//!   (reduction trees), used by the PIMDB baseline.

pub mod arith;
pub mod mux;
pub mod predicate;
pub mod reduce;

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::isa::Microprogram;

/// A contiguous range of crossbar columns holding one attribute,
/// LSB at `lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColRange {
    /// First (least significant) column.
    pub lo: usize,
    /// Width in bits.
    pub width: usize,
}

impl ColRange {
    /// Create a range; `width` may be 0 for a placeholder.
    pub fn new(lo: usize, width: usize) -> Self {
        ColRange { lo, width }
    }

    /// Column of bit `i` (LSB = bit 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> usize {
        assert!(i < self.width, "bit {i} out of {}-bit attribute", self.width);
        self.lo + i
    }

    /// One-past-the-end column.
    pub fn end(&self) -> usize {
        self.lo + self.width
    }

    /// Iterate the columns, LSB first.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.lo..self.end()
    }
}

/// Allocator for scratch columns inside the crossbar's reserved compute
/// region.
///
/// Gates always `INIT` their output before evaluating, so freed columns
/// can be reused without explicit clearing.
#[derive(Debug, Clone)]
pub struct ScratchPool {
    region: ColRange,
    free: Vec<usize>,
    high_water: usize,
}

impl ScratchPool {
    /// A pool over the given column region.
    pub fn new(region: ColRange) -> Self {
        ScratchPool { region, free: (region.lo..region.end()).rev().collect(), high_water: 0 }
    }

    /// Allocate one scratch column.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProgram`] when the compute region is
    /// exhausted — the relation layout must reserve more scratch space.
    pub fn alloc(&mut self) -> Result<usize, SimError> {
        let col = self.free.pop().ok_or_else(|| {
            SimError::InvalidProgram(format!(
                "scratch region exhausted ({} columns at {})",
                self.region.width, self.region.lo
            ))
        })?;
        self.high_water = self.high_water.max(self.region.width - self.free.len());
        Ok(col)
    }

    /// Return a column to the pool.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `col` is outside the region.
    pub fn release(&mut self, col: usize) {
        debug_assert!(col >= self.region.lo && col < self.region.end());
        self.free.push(col);
    }

    /// Columns currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Most columns ever simultaneously allocated.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// The managed region.
    pub fn region(&self) -> ColRange {
        self.region
    }
}

/// Emits NOR-only gate sequences into a [`Microprogram`], allocating
/// scratch columns on demand.
///
/// All `emit_*` methods return the column holding the result (freshly
/// allocated unless documented otherwise); call [`CodeBuilder::release`]
/// when a temporary is dead.
///
/// ```
/// use bbpim_sim::compiler::{CodeBuilder, ColRange, ScratchPool};
/// # use bbpim_sim::crossbar::Crossbar;
/// let mut pool = ScratchPool::new(ColRange::new(32, 16));
/// let mut b = CodeBuilder::new(&mut pool);
/// let na = b.emit_not(0)?; // column 32 := NOT column 0
/// let prog = b.finish();
/// assert_eq!(prog.cycles(), 2);
/// # Ok::<(), bbpim_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct CodeBuilder<'a> {
    prog: Microprogram,
    pool: &'a mut ScratchPool,
    const_one: Option<usize>,
    const_zero: Option<usize>,
}

impl<'a> CodeBuilder<'a> {
    /// Start a builder over a scratch pool.
    pub fn new(pool: &'a mut ScratchPool) -> Self {
        CodeBuilder { prog: Microprogram::new(), pool, const_one: None, const_zero: None }
    }

    /// Finish and take the program.
    pub fn finish(self) -> Microprogram {
        self.prog
    }

    /// Direct access to the underlying program (for raw ops).
    pub fn program_mut(&mut self) -> &mut Microprogram {
        &mut self.prog
    }

    /// Allocate a scratch column (uninitialised).
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn alloc(&mut self) -> Result<usize, SimError> {
        self.pool.alloc()
    }

    /// Release a scratch column. Constants are never released.
    pub fn release(&mut self, col: usize) {
        if Some(col) == self.const_one || Some(col) == self.const_zero {
            return;
        }
        self.pool.release(col);
    }

    /// A column holding constant `1` in every row (created on first use).
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn one(&mut self) -> Result<usize, SimError> {
        if let Some(c) = self.const_one {
            return Ok(c);
        }
        let c = self.alloc()?;
        self.prog.init_col(c);
        self.const_one = Some(c);
        Ok(c)
    }

    /// A column holding constant `0` in every row (created on first use).
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn zero(&mut self) -> Result<usize, SimError> {
        if let Some(c) = self.const_zero {
            return Ok(c);
        }
        let one = self.one()?;
        let c = self.alloc()?;
        self.prog.gate_nor(one, one, c); // NOR(1,1) = 0
        self.const_zero = Some(c);
        Ok(c)
    }

    /// `dst := NOR(a, b)` into a fresh column.
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn emit_nor(&mut self, a: usize, b: usize) -> Result<usize, SimError> {
        let dst = self.alloc()?;
        self.prog.gate_nor(a, b, dst);
        Ok(dst)
    }

    /// `dst := NOT a` into a fresh column.
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn emit_not(&mut self, a: usize) -> Result<usize, SimError> {
        self.emit_nor(a, a)
    }

    /// `dst := a OR b` into a fresh column (NOR + NOT, 4 cycles).
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn emit_or(&mut self, a: usize, b: usize) -> Result<usize, SimError> {
        let n = self.emit_nor(a, b)?;
        let dst = self.emit_not(n)?;
        self.release(n);
        Ok(dst)
    }

    /// `dst := a AND b` into a fresh column (`NOR(¬a, ¬b)`, 6 cycles).
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn emit_and(&mut self, a: usize, b: usize) -> Result<usize, SimError> {
        let na = self.emit_not(a)?;
        let nb = self.emit_not(b)?;
        let dst = self.emit_nor(na, nb)?;
        self.release(na);
        self.release(nb);
        Ok(dst)
    }

    /// `dst := a XOR b` into a fresh column
    /// (`NOR(NOR(a,b), AND(a,b))`, 10 cycles).
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn emit_xor(&mut self, a: usize, b: usize) -> Result<usize, SimError> {
        let nor_ab = self.emit_nor(a, b)?;
        let and_ab = self.emit_and(a, b)?;
        let dst = self.emit_nor(nor_ab, and_ab)?;
        self.release(nor_ab);
        self.release(and_ab);
        Ok(dst)
    }

    /// Multi-input `dst := NOR(inputs…)` into a fresh column (2 cycles).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProgram`] on an empty input list, or
    /// scratch exhaustion.
    pub fn emit_nor_many(&mut self, inputs: Vec<usize>) -> Result<usize, SimError> {
        if inputs.is_empty() {
            return Err(SimError::InvalidProgram("NOR of zero inputs".into()));
        }
        let dst = self.alloc()?;
        self.prog.init_col(dst);
        self.prog.nor_many_cols(inputs, dst);
        Ok(dst)
    }

    /// Multi-input AND: `dst := AND(inputs…) = NOR(¬input…)` into a fresh
    /// column.
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion; empty input rejected.
    pub fn emit_and_many(&mut self, inputs: &[usize]) -> Result<usize, SimError> {
        if inputs.is_empty() {
            return Err(SimError::InvalidProgram("AND of zero inputs".into()));
        }
        let mut nots = Vec::with_capacity(inputs.len());
        for &c in inputs {
            nots.push(self.emit_not(c)?);
        }
        let dst = self.emit_nor_many(nots.clone())?;
        for c in nots {
            self.release(c);
        }
        Ok(dst)
    }

    /// Multi-input OR: `dst := OR(inputs…) = ¬NOR(inputs…)` into a fresh
    /// column.
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion; empty input rejected.
    pub fn emit_or_many(&mut self, inputs: Vec<usize>) -> Result<usize, SimError> {
        let n = self.emit_nor_many(inputs)?;
        let dst = self.emit_not(n)?;
        self.release(n);
        Ok(dst)
    }

    /// Full adder on columns: returns `(sum, carry_out)` in fresh columns.
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn emit_full_adder(
        &mut self,
        a: usize,
        b: usize,
        cin: usize,
    ) -> Result<(usize, usize), SimError> {
        let nor_ab = self.emit_nor(a, b)?;
        let and_ab = self.emit_and(a, b)?;
        let xor_ab = self.emit_nor(nor_ab, and_ab)?; // a XOR b
        self.release(nor_ab);

        // sum = xor_ab XOR cin
        let sum = self.emit_xor(xor_ab, cin)?;

        // cout = and_ab OR (cin AND xor_ab)
        let cin_and_x = self.emit_and(cin, xor_ab)?;
        let cout = self.emit_or(and_ab, cin_and_x)?;
        self.release(and_ab);
        self.release(xor_ab);
        self.release(cin_and_x);
        Ok((sum, cout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::Crossbar;

    /// Run a builder-produced program on a crossbar whose columns 0 and 1
    /// enumerate all (a, b) combinations, then check `check(a, b, out)`.
    fn exercise_two_input(
        emit: impl FnOnce(&mut CodeBuilder<'_>) -> usize,
        reference: impl Fn(bool, bool) -> bool,
    ) {
        let mut xb = Crossbar::new(64, 32);
        for r in 0..64 {
            xb.bits_mut_unaccounted().set(r, 0, r & 1 == 1);
            xb.bits_mut_unaccounted().set(r, 1, r & 2 == 2);
        }
        let mut pool = ScratchPool::new(ColRange::new(8, 24));
        let mut b = CodeBuilder::new(&mut pool);
        let out = emit(&mut b);
        let prog = b.finish();
        xb.execute(&prog).unwrap();
        for r in 0..64 {
            let a = r & 1 == 1;
            let bb = r & 2 == 2;
            assert_eq!(xb.bits().get(r, out), reference(a, bb), "row {r}");
        }
    }

    #[test]
    fn emit_not_truth_table() {
        exercise_two_input(|b| b.emit_not(0).unwrap(), |a, _| !a);
    }

    #[test]
    fn emit_and_truth_table() {
        exercise_two_input(|b| b.emit_and(0, 1).unwrap(), |a, b| a && b);
    }

    #[test]
    fn emit_or_truth_table() {
        exercise_two_input(|b| b.emit_or(0, 1).unwrap(), |a, b| a || b);
    }

    #[test]
    fn emit_xor_truth_table() {
        exercise_two_input(|b| b.emit_xor(0, 1).unwrap(), |a, b| a ^ b);
    }

    #[test]
    fn emit_nor_many_truth_table() {
        exercise_two_input(|b| b.emit_nor_many(vec![0, 1]).unwrap(), |a, b| !(a || b));
    }

    #[test]
    fn constants_hold_their_value() {
        let mut xb = Crossbar::new(64, 16);
        let mut pool = ScratchPool::new(ColRange::new(4, 12));
        let mut b = CodeBuilder::new(&mut pool);
        let one = b.one().unwrap();
        let zero = b.zero().unwrap();
        let prog = b.finish();
        xb.execute(&prog).unwrap();
        for r in 0..64 {
            assert!(xb.bits().get(r, one));
            assert!(!xb.bits().get(r, zero));
        }
    }

    #[test]
    fn full_adder_truth_table() {
        // columns 0,1,2 enumerate (a, b, cin)
        let mut xb = Crossbar::new(64, 40);
        for r in 0..64 {
            xb.bits_mut_unaccounted().set(r, 0, r & 1 == 1);
            xb.bits_mut_unaccounted().set(r, 1, r & 2 == 2);
            xb.bits_mut_unaccounted().set(r, 2, r & 4 == 4);
        }
        let mut pool = ScratchPool::new(ColRange::new(8, 32));
        let mut b = CodeBuilder::new(&mut pool);
        let (sum, cout) = b.emit_full_adder(0, 1, 2).unwrap();
        let prog = b.finish();
        xb.execute(&prog).unwrap();
        for r in 0..64 {
            let a = (r & 1 == 1) as u8;
            let bb = (r & 2 == 2) as u8;
            let c = (r & 4 == 4) as u8;
            let total = a + bb + c;
            assert_eq!(xb.bits().get(r, sum), total & 1 == 1, "sum row {r}");
            assert_eq!(xb.bits().get(r, cout), total >= 2, "cout row {r}");
        }
    }

    #[test]
    fn scratch_pool_exhausts_cleanly() {
        let mut pool = ScratchPool::new(ColRange::new(0, 2));
        let a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        assert!(pool.alloc().is_err());
        pool.release(a);
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.high_water(), 2);
    }

    #[test]
    fn release_ignores_constants() {
        let mut pool = ScratchPool::new(ColRange::new(0, 4));
        let mut b = CodeBuilder::new(&mut pool);
        let one = b.one().unwrap();
        b.release(one);
        // `one` is still reserved: allocating the rest never hands it out.
        let mut seen = Vec::new();
        while let Ok(c) = b.alloc() {
            seen.push(c);
        }
        assert!(!seen.contains(&one));
    }

    #[test]
    fn col_range_bits() {
        let r = ColRange::new(10, 4);
        assert_eq!(r.bit(0), 10);
        assert_eq!(r.bit(3), 13);
        assert_eq!(r.end(), 14);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn col_range_bit_out_of_range_panics() {
        let r = ColRange::new(10, 4);
        let _ = r.bit(4);
    }
}
