//! In-crossbar arithmetic: ripple-carry add/sub and shift-add multiply.
//!
//! These materialise aggregate *expressions* inside the crossbar before
//! aggregation — e.g. SSB Q1's `extendedprice · discount` and Q4's
//! `revenue − supplycost` are computed into the scratch region by one
//! column-parallel program, for all records of a page at once.
//!
//! All arithmetic is unsigned with wrap-around at the destination width
//! (callers size destinations so overflow cannot occur; `compile_sub`
//! documents the borrow semantics).

use crate::compiler::{CodeBuilder, ColRange};
use crate::error::SimError;

/// Compile `dst := (a + b) mod 2^dst.width`.
///
/// `a` and `b` may be narrower than `dst`; missing bits are treated as 0.
///
/// # Errors
///
/// Returns [`SimError::InvalidProgram`] if `dst` overlaps an input or has
/// zero width, or on scratch exhaustion.
pub fn compile_add(
    b: &mut CodeBuilder<'_>,
    lhs: ColRange,
    rhs: ColRange,
    dst: ColRange,
) -> Result<(), SimError> {
    check_disjoint(lhs, dst)?;
    check_disjoint(rhs, dst)?;
    if dst.width == 0 {
        return Err(SimError::InvalidProgram("zero-width add destination".into()));
    }
    let zero = b.zero()?;
    let mut carry = zero; // carry-in 0
    for i in 0..dst.width {
        let abit = if i < lhs.width { lhs.bit(i) } else { zero };
        let bbit = if i < rhs.width { rhs.bit(i) } else { zero };
        let (sum, cout) = b.emit_full_adder(abit, bbit, carry)?;
        if carry != zero {
            b.release(carry);
        }
        carry = cout;
        copy_into(b, sum, dst.bit(i))?;
        b.release(sum);
    }
    if carry != zero {
        b.release(carry);
    }
    Ok(())
}

/// Compile `dst := (a − b) mod 2^dst.width` (two's complement:
/// `a + ¬b + 1`). When `a ≥ b` and the result fits, this is the plain
/// difference; otherwise it wraps.
///
/// # Errors
///
/// Same conditions as [`compile_add`].
pub fn compile_sub(
    b: &mut CodeBuilder<'_>,
    lhs: ColRange,
    rhs: ColRange,
    dst: ColRange,
) -> Result<(), SimError> {
    check_disjoint(lhs, dst)?;
    check_disjoint(rhs, dst)?;
    if dst.width == 0 {
        return Err(SimError::InvalidProgram("zero-width sub destination".into()));
    }
    let zero = b.zero()?;
    let one = b.one()?;
    let mut carry = one; // +1 of the two's complement
    for i in 0..dst.width {
        let abit = if i < lhs.width { lhs.bit(i) } else { zero };
        // ¬b_i; beyond rhs.width the complement of 0 is 1.
        let nb = if i < rhs.width { b.emit_not(rhs.bit(i))? } else { one };
        let (sum, cout) = b.emit_full_adder(abit, nb, carry)?;
        if nb != one {
            b.release(nb);
        }
        if carry != one {
            b.release(carry);
        }
        carry = cout;
        copy_into(b, sum, dst.bit(i))?;
        b.release(sum);
    }
    if carry != one {
        b.release(carry);
    }
    Ok(())
}

/// Compile `dst := (a · b) mod 2^dst.width` by shift-add over the bits of
/// `rhs` (cheapest when `rhs` is the narrow operand, e.g. a 4-bit
/// discount).
///
/// Internally accumulates into `dst`: partial product
/// `p_j = a AND b_j` is added at offset `j`.
///
/// # Errors
///
/// Same conditions as [`compile_add`].
pub fn compile_mul(
    b: &mut CodeBuilder<'_>,
    lhs: ColRange,
    rhs: ColRange,
    dst: ColRange,
) -> Result<(), SimError> {
    check_disjoint(lhs, dst)?;
    check_disjoint(rhs, dst)?;
    if dst.width == 0 {
        return Err(SimError::InvalidProgram("zero-width mul destination".into()));
    }
    let zero = b.zero()?;
    // dst := 0
    for i in 0..dst.width {
        copy_into(b, zero, dst.bit(i))?;
    }
    // For each multiplier bit j: dst[j..] += (a AND b_j)
    for j in 0..rhs.width.min(dst.width) {
        let bj = rhs.bit(j);
        let mut carry = zero;
        for i in 0..(dst.width - j) {
            let pbit = if i < lhs.width { b.emit_and(lhs.bit(i), bj)? } else { zero };
            let (sum, cout) = b.emit_full_adder(dst.bit(i + j), pbit, carry)?;
            if pbit != zero {
                b.release(pbit);
            }
            if carry != zero {
                b.release(carry);
            }
            carry = cout;
            copy_into(b, sum, dst.bit(i + j))?;
            b.release(sum);
        }
        if carry != zero {
            b.release(carry);
        }
    }
    Ok(())
}

/// Copy one column into another (INIT + double-NOT through a temp when
/// writing in place would alias; here src ≠ dst always holds).
fn copy_into(b: &mut CodeBuilder<'_>, src: usize, dst: usize) -> Result<(), SimError> {
    let n = b.emit_not(src)?;
    b.program_mut().gate_nor(n, n, dst);
    b.release(n);
    Ok(())
}

fn check_disjoint(a: ColRange, bb: ColRange) -> Result<(), SimError> {
    if a.lo < bb.end() && bb.lo < a.end() && a.width > 0 && bb.width > 0 {
        return Err(SimError::InvalidProgram(format!(
            "column ranges overlap: [{}..{}) and [{}..{})",
            a.lo,
            a.end(),
            bb.lo,
            bb.end()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::ScratchPool;
    use crate::crossbar::Crossbar;

    const A: ColRange = ColRange { lo: 0, width: 8 };
    const B: ColRange = ColRange { lo: 8, width: 8 };
    const DST: ColRange = ColRange { lo: 16, width: 16 };
    const SCRATCH: ColRange = ColRange { lo: 40, width: 88 };

    fn crossbar_with(values: &[(u64, u64)]) -> Crossbar {
        let mut xb = Crossbar::new(64, 128);
        for (r, (a, b)) in values.iter().enumerate() {
            xb.write_row_bits(r, A.lo, A.width, *a);
            xb.write_row_bits(r, B.lo, B.width, *b);
        }
        xb
    }

    fn run(xb: &mut Crossbar, emit: impl FnOnce(&mut CodeBuilder<'_>) -> Result<(), SimError>) {
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        emit(&mut b).unwrap();
        let prog = b.finish();
        prog.validate(xb.rows(), xb.cols()).unwrap();
        xb.execute(&prog).unwrap();
    }

    #[test]
    fn add_matches_integer_semantics() {
        let pairs: Vec<(u64, u64)> =
            vec![(0, 0), (1, 1), (255, 255), (200, 100), (13, 29), (128, 127)];
        let mut xb = crossbar_with(&pairs);
        run(&mut xb, |b| compile_add(b, A, B, DST));
        for (r, (a, bb)) in pairs.iter().enumerate() {
            assert_eq!(xb.read_row_bits(r, DST.lo, DST.width), a + bb, "row {r}");
        }
    }

    #[test]
    fn add_wraps_at_destination_width() {
        let narrow = ColRange { lo: 16, width: 8 };
        let pairs = vec![(200u64, 100u64)];
        let mut xb = crossbar_with(&pairs);
        run(&mut xb, |b| compile_add(b, A, B, narrow));
        assert_eq!(xb.read_row_bits(0, narrow.lo, narrow.width), (200 + 100) % 256);
    }

    #[test]
    fn sub_matches_integer_semantics_when_no_borrow() {
        let pairs: Vec<(u64, u64)> = vec![(10, 3), (255, 0), (100, 100), (77, 76)];
        let mut xb = crossbar_with(&pairs);
        run(&mut xb, |b| compile_sub(b, A, B, DST));
        for (r, (a, bb)) in pairs.iter().enumerate() {
            assert_eq!(xb.read_row_bits(r, DST.lo, DST.width), (a - bb), "row {r}");
        }
    }

    #[test]
    fn sub_wraps_two_complement() {
        let narrow = ColRange { lo: 16, width: 8 };
        let pairs = vec![(3u64, 10u64)];
        let mut xb = crossbar_with(&pairs);
        run(&mut xb, |b| compile_sub(b, A, B, narrow));
        assert_eq!(xb.read_row_bits(0, narrow.lo, narrow.width), (256 + 3 - 10));
    }

    #[test]
    fn mul_matches_integer_semantics() {
        let pairs: Vec<(u64, u64)> = vec![(0, 7), (7, 0), (1, 255), (15, 15), (255, 255), (12, 10)];
        let mut xb = crossbar_with(&pairs);
        run(&mut xb, |b| compile_mul(b, A, B, DST));
        for (r, (a, bb)) in pairs.iter().enumerate() {
            assert_eq!(xb.read_row_bits(r, DST.lo, DST.width), a * bb, "row {r}");
        }
    }

    #[test]
    fn mul_all_rows_in_parallel() {
        // every row gets a distinct pair; one program computes them all
        let pairs: Vec<(u64, u64)> = (0..64).map(|r| (r as u64, (63 - r) as u64)).collect();
        let mut xb = crossbar_with(&pairs);
        run(&mut xb, |b| compile_mul(b, A, B, DST));
        for (r, (a, bb)) in pairs.iter().enumerate() {
            assert_eq!(xb.read_row_bits(r, DST.lo, DST.width), a * bb, "row {r}");
        }
    }

    #[test]
    fn overlapping_destination_rejected() {
        let overlap = ColRange { lo: 4, width: 16 };
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        assert!(compile_add(&mut b, A, B, overlap).is_err());
    }

    #[test]
    fn narrow_rhs_multiply_is_cheap() {
        // 8×2-bit multiply must cost far less than 8×8.
        let rhs2 = ColRange { lo: 8, width: 2 };
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        compile_mul(&mut b, A, rhs2, DST).unwrap();
        let cheap = b.finish().cycles();

        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        compile_mul(&mut b, A, B, DST).unwrap();
        let full = b.finish().cycles();
        assert!(cheap * 2 < full, "2-bit rhs {cheap} vs 8-bit rhs {full}");
    }
}
