//! Algorithm 1 of the paper: a PIM-implemented multiplexer that
//! overwrites an attribute with an immediate value only in rows whose
//! *select* bit is set.
//!
//! For every bit `i` of the attribute `v` and immediate `c`:
//!
//! * `c_i = 1` → `v_i ← v_i OR s`
//! * `c_i = 0` → `v_i ← v_i AND NOT s`
//!
//! This is the UPDATE primitive for pre-joined relations: a filter
//! produces the select column, then the new value is written to exactly
//! the matching records with **no reads and no data movement** — the
//! property the paper uses to argue pre-join maintenance is cheap in
//! bulk-bitwise PIM.

use crate::compiler::{CodeBuilder, ColRange};
use crate::error::SimError;

/// Compile the Algorithm 1 MUX: `attr ← imm` where `select` is 1,
/// `attr` unchanged where `select` is 0.
///
/// Cost: 4 cycles per attribute bit (one temporary gate plus the
/// in-place rewrite), independent of how many records are updated.
///
/// # Errors
///
/// Returns [`SimError::InvalidProgram`] if `imm` does not fit in the
/// attribute or the select column lies inside the attribute range, or on
/// scratch exhaustion.
pub fn compile_mux_update(
    b: &mut CodeBuilder<'_>,
    attr: ColRange,
    imm: u64,
    select: usize,
) -> Result<(), SimError> {
    if attr.width < 64 && imm >> attr.width != 0 {
        return Err(SimError::InvalidProgram(format!(
            "immediate {imm} does not fit in {}-bit attribute",
            attr.width
        )));
    }
    if select >= attr.lo && select < attr.end() {
        return Err(SimError::InvalidProgram(
            "select column overlaps the updated attribute".into(),
        ));
    }
    for i in 0..attr.width {
        let v = attr.bit(i);
        if (imm >> i) & 1 == 1 {
            // v ← v OR s  =  NOT(NOR(v, s))
            let t = b.emit_nor(v, select)?;
            b.program_mut().gate_nor(t, t, v);
            b.release(t);
        } else {
            // v ← v AND NOT s  =  NOR(NOT v, s)
            let nv = b.emit_not(v)?;
            b.program_mut().gate_nor(nv, select, v);
            b.release(nv);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::ScratchPool;
    use crate::crossbar::Crossbar;

    const ATTR: ColRange = ColRange { lo: 0, width: 8 };
    const SELECT: usize = 10;
    const SCRATCH: ColRange = ColRange { lo: 16, width: 16 };

    fn run_mux(values: &[u64], selected: &[bool], imm: u64) -> Vec<u64> {
        let mut xb = Crossbar::new(64, 32);
        for (r, v) in values.iter().enumerate() {
            xb.write_row_bits(r, ATTR.lo, ATTR.width, *v);
            xb.bits_mut_unaccounted().set(r, SELECT, selected[r]);
        }
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        compile_mux_update(&mut b, ATTR, imm, SELECT).unwrap();
        let prog = b.finish();
        prog.validate(64, 32).unwrap();
        xb.execute(&prog).unwrap();
        (0..values.len()).map(|r| xb.read_row_bits(r, ATTR.lo, ATTR.width)).collect()
    }

    #[test]
    fn selected_rows_take_immediate() {
        let values = vec![0x00, 0xFF, 0x5A, 0xA5];
        let selected = vec![true, true, true, true];
        assert_eq!(run_mux(&values, &selected, 0x3C), vec![0x3C; 4]);
    }

    #[test]
    fn unselected_rows_unchanged() {
        let values = vec![0x00, 0xFF, 0x5A, 0xA5];
        let selected = vec![false, false, false, false];
        assert_eq!(run_mux(&values, &selected, 0x3C), values);
    }

    #[test]
    fn mixed_selection() {
        let values = vec![1, 2, 3, 4, 5, 6];
        let selected = vec![true, false, true, false, true, false];
        assert_eq!(run_mux(&values, &selected, 0), vec![0, 2, 0, 4, 0, 6]);
    }

    #[test]
    fn update_is_four_cycles_per_bit() {
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        compile_mux_update(&mut b, ATTR, 0xF0, SELECT).unwrap();
        assert_eq!(b.finish().cycles(), 4 * ATTR.width as u64);
    }

    #[test]
    fn rejects_oversized_immediate() {
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        assert!(compile_mux_update(&mut b, ATTR, 0x100, SELECT).is_err());
    }

    #[test]
    fn rejects_select_inside_attribute() {
        let mut pool = ScratchPool::new(SCRATCH);
        let mut b = CodeBuilder::new(&mut pool);
        assert!(compile_mux_update(&mut b, ATTR, 1, 3).is_err());
    }
}
