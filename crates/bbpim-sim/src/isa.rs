//! The micro-operation set executed by a PIM page controller.
//!
//! Bulk-bitwise PIM exposes two physical primitives (Fig. 1a):
//!
//! * **column-parallel** ops — the same gate evaluated in *every row* of
//!   the crossbar at once, with whole columns as operands;
//! * **row-parallel** ops — the transpose: whole rows as operands,
//!   evaluated in every column at once.
//!
//! MAGIC stateful logic gives us `NOR` plus an `INIT` that pre-charges
//! output cells to `1`; everything else (NOT/AND/OR/XOR, adders,
//! comparators, multipliers, the Algorithm 1 MUX) is *compiled* to
//! `INIT`/`NOR` sequences by [`crate::compiler`]. One micro-op costs one
//! logic cycle (Table I: 30 ns).

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// One micro-operation. Costs one bulk-bitwise logic cycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MicroOp {
    /// Pre-charge every cell of column `dst` to `1` (MAGIC output init).
    InitCol {
        /// Output column.
        dst: usize,
    },
    /// Column-parallel MAGIC NOR: for every row, `dst &= !(a | b)`.
    NorCols {
        /// First input column.
        a: usize,
        /// Second input column (equal to `a` realises NOT).
        b: usize,
        /// Output column (must have been initialised for a true NOR).
        dst: usize,
    },
    /// Column-parallel multi-input MAGIC NOR: for every row,
    /// `dst &= !(inputs[0] | inputs[1] | …)`.
    ///
    /// MAGIC realises N-input NOR in a single cycle by connecting all
    /// input cells to one output cell; PIMDB-style equality filters use
    /// it to AND many term columns at once (`AND t_i = NOR ¬t_i`).
    NorManyCols {
        /// Input columns (at least one).
        inputs: Vec<usize>,
        /// Output column.
        dst: usize,
    },
    /// Pre-charge every cell of row `dst` to `1`.
    InitRow {
        /// Output row.
        dst: usize,
    },
    /// Row-parallel MAGIC NOR: for every column, `dst &= !(a | b)`.
    NorRows {
        /// First input row.
        a: usize,
        /// Second input row.
        b: usize,
        /// Output row.
        dst: usize,
    },
}

impl MicroOp {
    /// Cells written by this op on a `rows × cols` crossbar.
    pub fn cells_written(&self, rows: usize, cols: usize) -> u64 {
        match self {
            MicroOp::InitCol { .. } | MicroOp::NorCols { .. } | MicroOp::NorManyCols { .. } => {
                rows as u64
            }
            MicroOp::InitRow { .. } | MicroOp::NorRows { .. } => cols as u64,
        }
    }

    /// True for column-parallel ops.
    pub fn is_column_op(&self) -> bool {
        matches!(
            self,
            MicroOp::InitCol { .. } | MicroOp::NorCols { .. } | MicroOp::NorManyCols { .. }
        )
    }
}

/// A sequence of micro-ops dispatched to a page controller as one PIM
/// request and executed on all crossbars of the page concurrently.
///
/// ```
/// use bbpim_sim::isa::{MicroOp, Microprogram};
/// let mut p = Microprogram::new();
/// p.init_col(2);
/// p.nor_cols(0, 1, 2);
/// assert_eq!(p.cycles(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Microprogram {
    ops: Vec<MicroOp>,
}

impl Microprogram {
    /// Create an empty program.
    pub fn new() -> Self {
        Microprogram { ops: Vec::new() }
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Append a raw op.
    pub fn push(&mut self, op: MicroOp) {
        self.ops.push(op);
    }

    /// Append `INIT dst` (column).
    pub fn init_col(&mut self, dst: usize) {
        self.push(MicroOp::InitCol { dst });
    }

    /// Append `NOR a b → dst` (column-parallel).
    pub fn nor_cols(&mut self, a: usize, b: usize, dst: usize) {
        self.push(MicroOp::NorCols { a, b, dst });
    }

    /// Append a multi-input `NOR inputs → dst` (column-parallel).
    pub fn nor_many_cols(&mut self, inputs: Vec<usize>, dst: usize) {
        self.push(MicroOp::NorManyCols { inputs, dst });
    }

    /// Append an initialised NOR gate (`INIT dst; NOR a b → dst`) — the
    /// canonical 2-cycle MAGIC gate.
    pub fn gate_nor(&mut self, a: usize, b: usize, dst: usize) {
        self.init_col(dst);
        self.nor_cols(a, b, dst);
    }

    /// Append a NOT gate (`NOR a a → dst`, with init).
    pub fn gate_not(&mut self, a: usize, dst: usize) {
        self.gate_nor(a, a, dst);
    }

    /// Append all ops of `other`.
    pub fn extend(&mut self, other: &Microprogram) {
        self.ops.extend_from_slice(&other.ops);
    }

    /// Number of logic cycles this program takes (one per op).
    pub fn cycles(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Total cells written when run on one `rows × cols` crossbar.
    pub fn cells_written(&self, rows: usize, cols: usize) -> u64 {
        self.ops.iter().map(|op| op.cells_written(rows, cols)).sum()
    }

    /// Cell writes a single *row* experiences when the program runs
    /// (column ops write one cell in every row; row ops write `cols`
    /// cells of one row). Returns the maximum over rows, which is the
    /// quantity the paper's endurance metric divides by cells per row.
    pub fn max_row_cell_writes(&self, rows: usize, cols: usize) -> u64 {
        let col_ops = self.ops.iter().filter(|op| op.is_column_op()).count() as u64;
        let mut per_row = vec![0u64; rows];
        for op in &self.ops {
            match op {
                MicroOp::InitRow { dst } | MicroOp::NorRows { dst, .. } => {
                    per_row[*dst] += cols as u64;
                }
                _ => {}
            }
        }
        col_ops + per_row.into_iter().max().unwrap_or(0)
    }

    /// Check every referenced row/column is inside a `rows × cols` frame.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProgram`] naming the first offending op.
    pub fn validate(&self, rows: usize, cols: usize) -> Result<(), SimError> {
        for (i, op) in self.ops.iter().enumerate() {
            let ok = match op {
                MicroOp::InitCol { dst } => *dst < cols,
                MicroOp::NorCols { a, b, dst } => {
                    *a < cols && *b < cols && *dst < cols && a != dst && b != dst
                }
                MicroOp::NorManyCols { inputs, dst } => {
                    !inputs.is_empty()
                        && *dst < cols
                        && inputs.iter().all(|c| *c < cols && c != dst)
                }
                MicroOp::InitRow { dst } => *dst < rows,
                MicroOp::NorRows { a, b, dst } => {
                    *a < rows && *b < rows && *dst < rows && a != dst && b != dst
                }
            };
            if !ok {
                return Err(SimError::InvalidProgram(format!(
                    "op {i} ({op:?}) out of {rows}x{cols} frame or writes its own input"
                )));
            }
        }
        Ok(())
    }

    /// True when the program contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_nor_is_two_cycles() {
        let mut p = Microprogram::new();
        p.gate_nor(0, 1, 2);
        assert_eq!(p.cycles(), 2);
        assert_eq!(p.ops().len(), 2);
        assert!(matches!(p.ops()[0], MicroOp::InitCol { dst: 2 }));
    }

    #[test]
    fn cells_written_counts_rows_for_column_ops() {
        let mut p = Microprogram::new();
        p.gate_nor(0, 1, 2); // 2 column ops
        p.push(MicroOp::NorRows { a: 0, b: 1, dst: 2 }); // 1 row op
        assert_eq!(p.cells_written(1024, 512), 1024 * 2 + 512);
    }

    #[test]
    fn max_row_cell_writes_mixes_col_and_row_ops() {
        let mut p = Microprogram::new();
        p.gate_nor(0, 1, 2); // every row gets 2 cell writes
        p.push(MicroOp::InitRow { dst: 5 }); // row 5 gets +cols
        assert_eq!(p.max_row_cell_writes(64, 32), 2 + 32);
    }

    #[test]
    fn validate_rejects_out_of_frame() {
        let mut p = Microprogram::new();
        p.nor_cols(0, 1, 600);
        assert!(matches!(p.validate(1024, 512), Err(SimError::InvalidProgram(_))));
    }

    #[test]
    fn validate_rejects_inplace_output() {
        let mut p = Microprogram::new();
        p.nor_cols(3, 1, 3);
        assert!(p.validate(64, 8).is_err());
    }

    #[test]
    fn validate_rejects_empty_multi_nor() {
        let mut p = Microprogram::new();
        p.nor_many_cols(vec![], 2);
        assert!(p.validate(64, 8).is_err());
    }

    #[test]
    fn multi_nor_counts_one_cycle() {
        let mut p = Microprogram::new();
        p.init_col(7);
        p.nor_many_cols(vec![0, 1, 2, 3], 7);
        assert_eq!(p.cycles(), 2);
        p.validate(64, 8).unwrap();
    }

    #[test]
    fn validate_accepts_well_formed() {
        let mut p = Microprogram::new();
        p.gate_not(0, 1);
        p.gate_nor(1, 0, 2);
        p.validate(64, 8).unwrap();
    }
}
