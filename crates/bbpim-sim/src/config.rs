//! Simulator configuration — the paper's Table I, as code.
//!
//! [`SimConfig`] carries the PIM module parameters (geometry, latencies,
//! energies) and [`HostConfig`] the host-system parameters used by the
//! host memory model. Defaults reproduce Table I of the paper; a builder
//! allows deviating for sensitivity studies.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Host (CPU-side) system parameters used by [`crate::hostmem`].
///
/// The paper runs queries on 4 threads of a 6-core out-of-order x86 at
/// 3.6 GHz with DDR4-2400 main memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Number of worker threads executing a query (paper: 4).
    pub threads: usize,
    /// Cache line size in bytes (paper: 64).
    pub line_bytes: usize,
    /// Loaded-latency of one DRAM/PIM line read in nanoseconds.
    pub dram_latency_ns: f64,
    /// Aggregate memory bandwidth to the PIM rank, in GiB/s
    /// (DDR4-2400 ≈ 19.2 GB/s per channel).
    pub dram_bandwidth_gib_s: f64,
    /// Memory-level parallelism: outstanding misses an OoO core sustains
    /// on streaming (prefetchable) access patterns.
    pub mlp: f64,
    /// In-flight misses per thread on scattered, data-dependent reads
    /// (host-gb record fetches): mask-directed addresses defeat the
    /// prefetcher, so this is ≈ 1.
    pub scatter_mlp: f64,
    /// Host CPU time to hash-aggregate one record, in nanoseconds.
    pub host_agg_ns_per_record: f64,
    /// Host clock in GHz (used for miscellaneous per-record work).
    pub clock_ghz: f64,
    /// Host-side orchestration cost per touched huge page per query, in
    /// nanoseconds: physical-address resolution, request-descriptor
    /// composition and the uncached doorbell write for one page
    /// controller. The journal extension of the paper identifies this
    /// per-page host work as the dominant cost of selective queries;
    /// zone-map pruning avoids it for pages proven irrelevant.
    ///
    /// With batched dispatch ([`crate::module::XferPolicy`]) this cost
    /// is paid per contiguous page-ID *run* instead of per page: one
    /// descriptor covers a whole run, so dense candidate sets amortise
    /// to a single doorbell while singleton pages degenerate to exactly
    /// the per-page cost.
    pub dispatch_ns_per_page: f64,
    /// Fixed bytes of one batched dispatch descriptor (query id, shard,
    /// program handle, run count).
    pub dispatch_header_bytes: u64,
    /// Bytes per page-ID run entry in a batched dispatch descriptor
    /// (start page + run length).
    pub dispatch_run_bytes: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            threads: 4,
            line_bytes: 64,
            dram_latency_ns: 80.0,
            dram_bandwidth_gib_s: 19.2,
            mlp: 8.0,
            scatter_mlp: 1.0,
            host_agg_ns_per_record: 6.0,
            clock_ghz: 3.6,
            dispatch_ns_per_page: 600.0,
            dispatch_header_bytes: 16,
            dispatch_run_bytes: 8,
        }
    }
}

/// Full simulator configuration (the paper's Table I).
///
/// Construct with [`SimConfig::default`] for the paper's parameters, or
/// use [`SimConfig::builder`] to override individual values.
///
/// ```
/// use bbpim_sim::config::SimConfig;
/// let cfg = SimConfig::default();
/// assert_eq!(cfg.crossbar_rows, 1024);
/// assert_eq!(cfg.crossbars_per_page(), 32);
/// assert_eq!(cfg.records_per_page(), 32 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Rows per crossbar (records per crossbar). Paper: 1024.
    pub crossbar_rows: usize,
    /// Columns per crossbar (bits per record slot). Paper: 512.
    pub crossbar_cols: usize,
    /// Bits delivered by one crossbar read. Paper: 16.
    pub read_width_bits: usize,
    /// Huge page size in bytes. Paper: 2 MiB.
    pub page_bytes: usize,
    /// Total module capacity in bytes. Paper: 32 GiB.
    pub module_capacity_bytes: u64,
    /// PIM chips per module. Paper: 8.
    pub chips: usize,
    /// Bulk-bitwise logic cycle in nanoseconds. Paper: 30 ns.
    pub logic_cycle_ns: f64,
    /// Crossbar read latency in nanoseconds (not listed in Table I; the
    /// table gives only the logic cycle — 10 ns is typical for RRAM reads).
    pub read_latency_ns: f64,
    /// Crossbar write latency in nanoseconds (RRAM SET/RESET).
    pub write_latency_ns: f64,
    /// Crossbar read energy, picojoules per bit. Paper: 0.84 pJ/b.
    pub read_energy_pj_per_bit: f64,
    /// Crossbar write energy, picojoules per bit. Paper: 6.9 pJ/b.
    pub write_energy_pj_per_bit: f64,
    /// Bulk-bitwise logic energy, femtojoules per bit. Paper: 81.6 fJ/b.
    pub logic_energy_fj_per_bit: f64,
    /// Power of a single aggregation circuit, microwatts. Paper: 25.4 µW.
    pub agg_circuit_power_uw: f64,
    /// Power of a single PIM (page) controller, microwatts. Paper: 126 µW.
    pub controller_power_uw: f64,
    /// Bus/issue overhead for one PIM request, nanoseconds.
    pub request_issue_ns: f64,
    /// Page-controller time to fold one aggregation partial into its
    /// running total during module-side result reduction
    /// ([`crate::module::XferPolicy::module_reduce`]), nanoseconds.
    pub combine_ns_per_partial: f64,
    /// Host-side parameters.
    pub host: HostConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            crossbar_rows: 1024,
            crossbar_cols: 512,
            read_width_bits: 16,
            page_bytes: 2 * 1024 * 1024,
            module_capacity_bytes: 32 * 1024 * 1024 * 1024,
            chips: 8,
            logic_cycle_ns: 30.0,
            read_latency_ns: 10.0,
            write_latency_ns: 30.0,
            read_energy_pj_per_bit: 0.84,
            write_energy_pj_per_bit: 6.9,
            logic_energy_fj_per_bit: 81.6,
            agg_circuit_power_uw: 25.4,
            controller_power_uw: 126.0,
            request_issue_ns: 50.0,
            combine_ns_per_partial: 2.0,
            host: HostConfig::default(),
        }
    }
}

impl SimConfig {
    /// Start building a configuration from the Table I defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder { cfg: SimConfig::default() }
    }

    /// Bytes stored by one crossbar (rows × cols / 8).
    pub fn crossbar_bytes(&self) -> usize {
        self.crossbar_rows * self.crossbar_cols / 8
    }

    /// Crossbars composing one huge page.
    ///
    /// With Table I values: 2 MiB / 64 KiB = 32 crossbars, which also
    /// fixes the paper's 32× read amplification and the 32 K records per
    /// sampled page.
    pub fn crossbars_per_page(&self) -> usize {
        self.page_bytes / self.crossbar_bytes()
    }

    /// Records (crossbar rows) held by one page.
    pub fn records_per_page(&self) -> usize {
        self.crossbars_per_page() * self.crossbar_rows
    }

    /// Total pages the module can hold.
    pub fn module_pages(&self) -> usize {
        (self.module_capacity_bytes / self.page_bytes as u64) as usize
    }

    /// Crossbars of one page that live on a single chip.
    ///
    /// A page is interleaved over all chips so its controller on each
    /// chip drives `crossbars_per_page / chips` crossbars.
    pub fn page_crossbars_per_chip(&self) -> usize {
        self.crossbars_per_page() / self.chips
    }

    /// Number of 16-bit chunks in one crossbar row.
    pub fn chunks_per_row(&self) -> usize {
        self.crossbar_cols / self.read_width_bits
    }

    /// Energy of one bulk-bitwise logic op on a full column, in picojoules
    /// (one output cell is written per row).
    pub fn column_op_energy_pj(&self) -> f64 {
        self.crossbar_rows as f64 * self.logic_energy_fj_per_bit / 1000.0
    }

    /// Energy of one bulk-bitwise logic op on a full row, in picojoules.
    pub fn row_op_energy_pj(&self) -> f64 {
        self.crossbar_cols as f64 * self.logic_energy_fj_per_bit / 1000.0
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the geometry does not
    /// divide evenly (rows not a multiple of 64, page not a multiple of
    /// the crossbar size, crossbars per page not a multiple of chips…).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.crossbar_rows == 0 || !self.crossbar_rows.is_multiple_of(64) {
            return Err(SimError::InvalidConfig(format!(
                "crossbar_rows must be a positive multiple of 64, got {}",
                self.crossbar_rows
            )));
        }
        if self.crossbar_cols == 0 || !self.crossbar_cols.is_multiple_of(self.read_width_bits) {
            return Err(SimError::InvalidConfig(format!(
                "crossbar_cols ({}) must be a positive multiple of read width ({})",
                self.crossbar_cols, self.read_width_bits
            )));
        }
        if !self.page_bytes.is_multiple_of(self.crossbar_bytes()) {
            return Err(SimError::InvalidConfig(format!(
                "page size ({}) must be a multiple of the crossbar size ({})",
                self.page_bytes,
                self.crossbar_bytes()
            )));
        }
        if self.chips == 0 || !self.crossbars_per_page().is_multiple_of(self.chips) {
            return Err(SimError::InvalidConfig(format!(
                "crossbars per page ({}) must divide evenly over {} chips",
                self.crossbars_per_page(),
                self.chips
            )));
        }
        if self.host.threads == 0 {
            return Err(SimError::InvalidConfig("host.threads must be nonzero".into()));
        }
        if self.host.line_bytes * 8 != self.crossbars_per_page() * self.read_width_bits {
            return Err(SimError::InvalidConfig(format!(
                "one cache line ({} bits) must gather one {}-bit chunk from each of \
                 the {} crossbars of a page",
                self.host.line_bytes * 8,
                self.read_width_bits,
                self.crossbars_per_page()
            )));
        }
        Ok(())
    }
}

/// Builder for [`SimConfig`] (non-consuming terminal method).
///
/// ```
/// use bbpim_sim::config::SimConfig;
/// let cfg = SimConfig::builder()
///     .logic_cycle_ns(25.0)
///     .threads(2)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.logic_cycle_ns, 25.0);
/// assert_eq!(cfg.host.threads, 2);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Set the bulk-bitwise logic cycle in nanoseconds.
    pub fn logic_cycle_ns(&mut self, ns: f64) -> &mut Self {
        self.cfg.logic_cycle_ns = ns;
        self
    }

    /// Set the crossbar read latency in nanoseconds.
    pub fn read_latency_ns(&mut self, ns: f64) -> &mut Self {
        self.cfg.read_latency_ns = ns;
        self
    }

    /// Set crossbar geometry (rows × cols), keeping the current number of
    /// crossbars per page and resizing the page and cache line to match
    /// (a line always gathers one chunk per crossbar of a page).
    pub fn geometry(&mut self, rows: usize, cols: usize) -> &mut Self {
        let n = self.cfg.crossbars_per_page();
        self.cfg.crossbar_rows = rows;
        self.cfg.crossbar_cols = cols;
        self.cfg.page_bytes = self.cfg.crossbar_bytes() * n;
        self.cfg.host.line_bytes = n * self.cfg.read_width_bits / 8;
        self
    }

    /// Set the number of crossbars composing one page (resizes the page
    /// and the cache line accordingly).
    pub fn crossbars_per_page(&mut self, n: usize) -> &mut Self {
        self.cfg.page_bytes = self.cfg.crossbar_bytes() * n;
        self.cfg.host.line_bytes = n * self.cfg.read_width_bits / 8;
        self
    }

    /// Set the number of host worker threads.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.cfg.host.threads = n;
        self
    }

    /// Set total module capacity in bytes.
    pub fn capacity_bytes(&mut self, bytes: u64) -> &mut Self {
        self.cfg.module_capacity_bytes = bytes;
        self
    }

    /// Set the number of chips per module.
    pub fn chips(&mut self, n: usize) -> &mut Self {
        self.cfg.chips = n;
        self
    }

    /// Finish, validating the configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`SimConfig::validate`] failures.
    pub fn build(&self) -> Result<SimConfig, SimError> {
        let cfg = self.cfg.clone();
        cfg.validate()?;
        Ok(cfg)
    }
}

impl SimConfig {
    /// Configuration for one module of an `n`-module cluster.
    ///
    /// Geometry, latencies and energies are identical to `self` — every
    /// module of a rank is physically the same part — and only the
    /// capacity is divided, so an `n`-shard cluster holds the same
    /// total data as the single module it is compared against
    /// (iso-capacity scaling). Capacity is rounded down to whole pages
    /// but never below one page.
    ///
    /// Use plain [`Clone`] instead when modeling a cluster of
    /// full-capacity modules (capacity scaling *and* parallelism).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when `n` is zero.
    pub fn per_module_of(&self, n: usize) -> Result<SimConfig, SimError> {
        if n == 0 {
            return Err(SimError::InvalidConfig("cluster needs at least one module".into()));
        }
        let mut cfg = self.clone();
        let pages = (self.module_pages() / n).max(1) as u64;
        cfg.module_capacity_bytes = pages * self.page_bytes as u64;
        cfg.validate()?;
        Ok(cfg)
    }

    /// A fast geometry for unit tests: 64×256 crossbars, 4 per page, 2
    /// chips. Not representative of Table I — use only in tests.
    pub fn small_for_tests() -> SimConfig {
        let mut cfg = SimConfig::default();
        cfg.crossbar_rows = 64;
        cfg.crossbar_cols = 256;
        cfg.page_bytes = cfg.crossbar_bytes() * 4;
        cfg.chips = 2;
        cfg.module_capacity_bytes = (cfg.page_bytes as u64) * 64;
        cfg.host.line_bytes = 4 * cfg.read_width_bits / 8;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.crossbar_rows, 1024);
        assert_eq!(cfg.crossbar_cols, 512);
        assert_eq!(cfg.read_width_bits, 16);
        assert_eq!(cfg.page_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.chips, 8);
        assert!((cfg.logic_cycle_ns - 30.0).abs() < 1e-12);
        assert!((cfg.read_energy_pj_per_bit - 0.84).abs() < 1e-12);
        assert!((cfg.write_energy_pj_per_bit - 6.9).abs() < 1e-12);
        assert!((cfg.logic_energy_fj_per_bit - 81.6).abs() < 1e-12);
        assert!((cfg.agg_circuit_power_uw - 25.4).abs() < 1e-12);
        assert!((cfg.controller_power_uw - 126.0).abs() < 1e-12);
    }

    #[test]
    fn derived_geometry_matches_paper() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.crossbar_bytes(), 64 * 1024);
        assert_eq!(cfg.crossbars_per_page(), 32);
        assert_eq!(cfg.records_per_page(), 32 * 1024); // the 32K-record sample page
        assert_eq!(cfg.module_pages(), 16 * 1024);
        assert_eq!(cfg.page_crossbars_per_chip(), 4);
        assert_eq!(cfg.chunks_per_row(), 32);
    }

    #[test]
    fn default_config_validates() {
        SimConfig::default().validate().unwrap();
    }

    #[test]
    fn small_test_config_validates() {
        SimConfig::small_for_tests().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let cfg = SimConfig { crossbar_rows: 100, ..SimConfig::default() };
        assert!(matches!(cfg.validate(), Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn validation_rejects_line_mismatch() {
        let mut cfg = SimConfig::default();
        cfg.host.line_bytes = 32;
        assert!(matches!(cfg.validate(), Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn per_module_divides_capacity_only() {
        let cfg = SimConfig::default();
        let shard = cfg.per_module_of(4).unwrap();
        assert_eq!(shard.module_pages(), cfg.module_pages() / 4);
        assert_eq!(shard.crossbar_rows, cfg.crossbar_rows);
        assert_eq!(shard.page_bytes, cfg.page_bytes);
        assert!((shard.logic_cycle_ns - cfg.logic_cycle_ns).abs() < 1e-12);
        // never below one page, and zero shards is rejected
        let tiny = cfg.per_module_of(usize::MAX).unwrap();
        assert_eq!(tiny.module_pages(), 1);
        assert!(cfg.per_module_of(0).is_err());
    }

    #[test]
    fn builder_roundtrip() {
        let cfg = SimConfig::builder().logic_cycle_ns(40.0).build().unwrap();
        assert!((cfg.logic_cycle_ns - 40.0).abs() < 1e-12);
        // untouched values keep Table I defaults
        assert_eq!(cfg.crossbar_rows, 1024);
    }

    #[test]
    fn column_op_energy_is_rows_times_per_bit() {
        let cfg = SimConfig::default();
        let pj = cfg.column_op_energy_pj();
        assert!((pj - 1024.0 * 81.6 / 1000.0).abs() < 1e-9);
    }
}
