//! Shared-resource contention: a single-server FIFO bus.
//!
//! The cluster layer already serialises per-page host dispatch across
//! shards *within* one query; the streaming scheduler
//! (`bbpim-sched`) needs the same constraint *across* concurrently
//! in-flight queries: the host's dispatch channel (physical-address
//! resolution, descriptor composition, doorbell writes) is one
//! resource, however many PIM modules sit behind it. [`SharedBus`]
//! models exactly that — a single server that grants requests in the
//! order they are made, each grant starting no earlier than the
//! previous one ended.
//!
//! The same abstraction doubles as each shard's PIM pipeline in the
//! scheduler: one module executes one query's PIM phases at a time, so
//! a shard is a `SharedBus` whose jobs are PIM slices instead of
//! dispatch slices.
//!
//! Grants are computed eagerly: because a discrete-event simulation
//! requests the bus in nondecreasing event-time order, `max(now,
//! free_at)` is precisely FIFO service. The bus also accumulates its
//! busy time so callers can report utilisation.

/// One admitted slot on a [`SharedBus`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusGrant {
    /// When service starts (≥ the request time).
    pub start_ns: f64,
    /// When service ends (`start_ns` + requested duration).
    pub end_ns: f64,
}

impl BusGrant {
    /// How long the request waited before service began.
    pub fn wait_ns(&self, requested_at_ns: f64) -> f64 {
        self.start_ns - requested_at_ns
    }
}

/// A single-server FIFO resource: requests are served one at a time in
/// request order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SharedBus {
    free_at_ns: f64,
    busy_ns: f64,
    grants: usize,
}

impl SharedBus {
    /// An idle bus at time zero.
    pub fn new() -> Self {
        SharedBus::default()
    }

    /// Request `duration_ns` of exclusive bus time at simulated time
    /// `now_ns`. Returns the granted service window; the bus is busy
    /// until `end_ns`.
    ///
    /// Callers must request in nondecreasing `now_ns` order (as any
    /// event-driven simulation naturally does) for the FIFO semantics
    /// to hold.
    pub fn acquire(&mut self, now_ns: f64, duration_ns: f64) -> BusGrant {
        let start_ns = now_ns.max(self.free_at_ns);
        let end_ns = start_ns + duration_ns;
        self.free_at_ns = end_ns;
        self.busy_ns += duration_ns;
        self.grants += 1;
        BusGrant { start_ns, end_ns }
    }

    /// When the bus next becomes idle (0 if never used).
    pub fn free_at_ns(&self) -> f64 {
        self.free_at_ns
    }

    /// Total time the bus spent serving requests.
    pub fn busy_ns(&self) -> f64 {
        self.busy_ns
    }

    /// Number of grants issued.
    pub fn grants(&self) -> usize {
        self.grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_serialise() {
        let mut bus = SharedBus::new();
        let a = bus.acquire(0.0, 10.0);
        let b = bus.acquire(0.0, 5.0);
        assert_eq!(a.start_ns, 0.0);
        assert_eq!(a.end_ns, 10.0);
        assert_eq!(b.start_ns, 10.0, "second request waits for the first");
        assert_eq!(b.end_ns, 15.0);
        assert_eq!(b.wait_ns(0.0), 10.0);
        assert_eq!(bus.grants(), 2);
    }

    #[test]
    fn idle_gaps_are_not_busy_time() {
        let mut bus = SharedBus::new();
        bus.acquire(0.0, 10.0);
        let late = bus.acquire(100.0, 10.0);
        assert_eq!(late.start_ns, 100.0, "an idle bus serves immediately");
        assert_eq!(bus.busy_ns(), 20.0, "the 90 ns idle gap is not busy time");
    }

    #[test]
    fn zero_duration_requests_are_free() {
        let mut bus = SharedBus::new();
        let g = bus.acquire(5.0, 0.0);
        assert_eq!(g.start_ns, g.end_ns);
        assert_eq!(bus.busy_ns(), 0.0);
    }
}
