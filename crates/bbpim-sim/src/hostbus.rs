//! Shared-resource contention: a single-server FIFO bus with
//! byte-accounted grants.
//!
//! The cluster layer serialises per-page host dispatch across shards
//! *within* one query; the streaming scheduler (`bbpim-sched`) needs
//! the same constraint *across* concurrently in-flight queries — and
//! not just for dispatch. Every host↔module transfer (mask transfers,
//! result-line reads, host-gb record fetches, update-mask writes)
//! crosses the same off-chip interface, which the journal extension of
//! the paper identifies as the scarce resource once many PIM modules
//! run concurrently. [`SharedBus`] models exactly that — a single
//! server that grants requests in the order they are made, each grant
//! starting no earlier than the previous one ended.
//!
//! Two grant shapes exist:
//!
//! * [`SharedBus::acquire`] — a fixed service time (host dispatch,
//!   host-side merges: per-descriptor work, not data volume);
//! * [`SharedBus::acquire_bytes`] — a *byte-accounted* grant whose
//!   duration is the channel occupancy of moving that many bytes at
//!   the configured [`HostConfig::dram_bandwidth_gib_s`]. Zero bytes
//!   cost zero bus time, always.
//!
//! The distinction matters for latency-bound phases: a scattered
//! host-gb fetch takes far longer end-to-end than its bytes occupy the
//! channel (the host core stalls on DRAM latency while the pipe sits
//! mostly idle), so only the bandwidth component contends. That split
//! is computed by [`phase_occupancy_ns`] from the byte tags
//! [`Phase::host_bytes`] carries.
//!
//! The same abstraction doubles as each shard's PIM pipeline in the
//! scheduler: one module executes one query's PIM phases at a time, so
//! a shard is a `SharedBus` whose jobs are PIM slices instead of
//! transfer slices.
//!
//! Grants are computed eagerly: because a discrete-event simulation
//! requests the bus in nondecreasing event-time order, `max(now,
//! free_at)` is precisely FIFO service. The bus also accumulates its
//! busy time so callers can report utilisation —
//! [`SharedBus::utilisation`] saturates at 1.0, because eagerly issued
//! grants can stretch past whatever horizon the caller measures
//! against.

use crate::config::HostConfig;
use crate::timeline::{Phase, PhaseKind, RunLog};

/// Channel occupancy of moving `bytes` over the host↔PIM interface at
/// `cfg`'s aggregate bandwidth, nanoseconds. This is the pure
/// bandwidth term (GiB/s → B/ns); latency stalls do not occupy the
/// channel and are excluded by design.
pub fn transfer_ns(cfg: &HostConfig, bytes: u64) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    bytes as f64 / (cfg.dram_bandwidth_gib_s * 1.073_741_824)
}

/// The shared-channel occupancy of one logged phase, nanoseconds:
///
/// * host dispatch — its full duration (descriptor composition and
///   doorbell writes hold the channel);
/// * byte-tagged transfers ([`PhaseKind::HostRead`] /
///   [`PhaseKind::HostWrite`]) — the bandwidth term of their bytes;
/// * PIM and host-compute phases — zero (they do not touch the
///   channel).
///
/// The occupancy never exceeds the phase's own duration: transfer
/// phase times are `max(bandwidth, latency)` models of the same byte
/// count.
pub fn phase_occupancy_ns(cfg: &HostConfig, phase: &Phase) -> f64 {
    match phase.kind {
        PhaseKind::HostDispatch => phase.time_ns,
        PhaseKind::HostRead | PhaseKind::HostWrite => {
            transfer_ns(cfg, phase.host_bytes).min(phase.time_ns)
        }
        _ => 0.0,
    }
}

/// Total shared-channel occupancy of a phase log, nanoseconds: what a
/// contended host must serialise for this execution (dispatch plus the
/// bandwidth term of every tagged transfer). Everything else — PIM
/// logic, host compute, latency stalls — overlaps across modules.
pub fn log_occupancy_ns(cfg: &HostConfig, log: &RunLog) -> f64 {
    log.phases().iter().map(|p| phase_occupancy_ns(cfg, p)).sum()
}

/// One admitted slot on a [`SharedBus`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusGrant {
    /// When service starts (≥ the request time).
    pub start_ns: f64,
    /// When service ends (`start_ns` + requested duration).
    pub end_ns: f64,
}

impl BusGrant {
    /// How long the request waited before service began.
    pub fn wait_ns(&self, requested_at_ns: f64) -> f64 {
        self.start_ns - requested_at_ns
    }

    /// The granted service duration.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// A single-server FIFO resource: requests are served one at a time in
/// request order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SharedBus {
    free_at_ns: f64,
    busy_ns: f64,
    grants: usize,
}

impl SharedBus {
    /// An idle bus at time zero.
    pub fn new() -> Self {
        SharedBus::default()
    }

    /// Request `duration_ns` of exclusive bus time at simulated time
    /// `now_ns`. Returns the granted service window; the bus is busy
    /// until `end_ns`.
    ///
    /// Callers must request in nondecreasing `now_ns` order (as any
    /// event-driven simulation naturally does) for the FIFO semantics
    /// to hold; simultaneous requests are served in call order, which
    /// keeps grant timelines deterministic.
    pub fn acquire(&mut self, now_ns: f64, duration_ns: f64) -> BusGrant {
        let start_ns = now_ns.max(self.free_at_ns);
        let end_ns = start_ns + duration_ns;
        self.free_at_ns = end_ns;
        self.busy_ns += duration_ns;
        self.grants += 1;
        BusGrant { start_ns, end_ns }
    }

    /// Byte-accounted grant: exclusive bus time for the channel
    /// occupancy of `bytes` at `cfg`'s bandwidth ([`transfer_ns`]).
    /// Zero-byte requests are free — they neither wait behind the
    /// queue-end nor extend it.
    pub fn acquire_bytes(&mut self, now_ns: f64, bytes: u64, cfg: &HostConfig) -> BusGrant {
        if bytes == 0 {
            return BusGrant { start_ns: now_ns, end_ns: now_ns };
        }
        self.acquire(now_ns, transfer_ns(cfg, bytes))
    }

    /// When the bus next becomes idle (0 if never used).
    pub fn free_at_ns(&self) -> f64 {
        self.free_at_ns
    }

    /// Total time the bus spent serving requests.
    pub fn busy_ns(&self) -> f64 {
        self.busy_ns
    }

    /// Number of grants issued (zero-byte grants excluded).
    pub fn grants(&self) -> usize {
        self.grants
    }

    /// Fraction of `horizon_ns` the bus spent busy, saturated to
    /// `[0, 1]`: eager FIFO grants can end past the caller's horizon
    /// (e.g. a makespan measured at the last *completion*), and a raw
    /// `busy / horizon` would then drift above 1. A non-positive
    /// horizon reports 0.
    pub fn utilisation(&self, horizon_ns: f64) -> f64 {
        if horizon_ns <= 0.0 {
            return 0.0;
        }
        (self.busy_ns / horizon_ns).clamp(0.0, 1.0)
    }

    /// Raw demand ratio `offered_ns / horizon_ns`, **unclamped**: the
    /// total service time offered to the bus over the horizon. Values
    /// above 1.0 measure oversubscription depth — a demand of 1.8
    /// means the channel was asked for 80 % more service than the
    /// horizon holds, which the saturated [`SharedBus::utilisation`]
    /// deliberately hides. A non-positive horizon reports 0.
    pub fn demand(&self, horizon_ns: f64) -> f64 {
        if horizon_ns <= 0.0 {
            return 0.0;
        }
        self.busy_ns / horizon_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_serialise() {
        let mut bus = SharedBus::new();
        let a = bus.acquire(0.0, 10.0);
        let b = bus.acquire(0.0, 5.0);
        assert_eq!(a.start_ns, 0.0);
        assert_eq!(a.end_ns, 10.0);
        assert_eq!(b.start_ns, 10.0, "second request waits for the first");
        assert_eq!(b.end_ns, 15.0);
        assert_eq!(b.wait_ns(0.0), 10.0);
        assert_eq!(bus.grants(), 2);
    }

    #[test]
    fn idle_gaps_are_not_busy_time() {
        let mut bus = SharedBus::new();
        bus.acquire(0.0, 10.0);
        let late = bus.acquire(100.0, 10.0);
        assert_eq!(late.start_ns, 100.0, "an idle bus serves immediately");
        assert_eq!(bus.busy_ns(), 20.0, "the 90 ns idle gap is not busy time");
    }

    #[test]
    fn zero_duration_requests_are_free() {
        let mut bus = SharedBus::new();
        let g = bus.acquire(5.0, 0.0);
        assert_eq!(g.start_ns, g.end_ns);
        assert_eq!(bus.busy_ns(), 0.0);
    }

    #[test]
    fn byte_grant_duration_is_bytes_over_bandwidth() {
        let cfg = HostConfig::default(); // 19.2 GiB/s
        let mut bus = SharedBus::new();
        let bytes = 1 << 20; // 1 MiB
        let g = bus.acquire_bytes(0.0, bytes, &cfg);
        let expected = bytes as f64 / (19.2 * 1.073_741_824);
        assert!((g.duration_ns() - expected).abs() < 1e-9);
        assert!((bus.busy_ns() - expected).abs() < 1e-9);
        // halving the bandwidth doubles the occupancy
        let slow = HostConfig { dram_bandwidth_gib_s: 9.6, ..HostConfig::default() };
        let mut bus2 = SharedBus::new();
        let g2 = bus2.acquire_bytes(0.0, bytes, &slow);
        assert!((g2.duration_ns() - 2.0 * expected).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_grants_cost_zero_bus_time() {
        let cfg = HostConfig::default();
        let mut bus = SharedBus::new();
        bus.acquire(0.0, 50.0);
        // a zero-byte request while the bus is busy neither waits nor
        // occupies: it completes instantly at its request time
        let g = bus.acquire_bytes(10.0, 0, &cfg);
        assert_eq!(g.start_ns, 10.0);
        assert_eq!(g.end_ns, 10.0);
        assert_eq!(bus.busy_ns(), 50.0);
        assert_eq!(bus.grants(), 1, "zero-byte grants are not queued");
        assert_eq!(bus.free_at_ns(), 50.0, "the queue end is unchanged");
    }

    #[test]
    fn simultaneous_requests_grant_in_call_order() {
        // Three requests at the same instant: the grant timeline is the
        // call order, deterministically, and busy time matches the
        // event timeline exactly (disjoint contiguous windows).
        let cfg = HostConfig::default();
        let mut bus = SharedBus::new();
        let a = bus.acquire_bytes(0.0, 4096, &cfg);
        let b = bus.acquire_bytes(0.0, 8192, &cfg);
        let c = bus.acquire(0.0, 7.0);
        assert_eq!(a.start_ns, 0.0);
        assert!((b.start_ns - a.end_ns).abs() < 1e-12, "b starts exactly when a ends");
        assert!((c.start_ns - b.end_ns).abs() < 1e-12, "c starts exactly when b ends");
        // busy time == sum of grant windows == last end (no gaps formed)
        let windows = a.duration_ns() + b.duration_ns() + c.duration_ns();
        assert!((bus.busy_ns() - windows).abs() < 1e-9);
        assert!((bus.free_at_ns() - c.end_ns).abs() < 1e-12);
        // replay: the same request sequence reproduces the same grants
        let mut replay = SharedBus::new();
        assert_eq!(replay.acquire_bytes(0.0, 4096, &cfg), a);
        assert_eq!(replay.acquire_bytes(0.0, 8192, &cfg), b);
        assert_eq!(replay.acquire(0.0, 7.0), c);
    }

    #[test]
    fn busy_time_matches_event_timeline_with_gaps() {
        let cfg = HostConfig::default();
        let mut bus = SharedBus::new();
        let mut windows = 0.0;
        let mut last_end = 0.0f64;
        for (t, bytes) in [(0.0, 1024u64), (1.0, 2048), (5e6, 512), (6e6, 0)] {
            let g = bus.acquire_bytes(t, bytes, &cfg);
            assert!(g.start_ns >= last_end - 1e-12, "windows never overlap");
            if bytes > 0 {
                last_end = g.end_ns;
            } else {
                // zero-byte grants neither occupy nor extend the queue
                assert_eq!(g.start_ns, g.end_ns);
                assert!((bus.free_at_ns() - last_end).abs() < 1e-12);
            }
            windows += g.duration_ns();
        }
        assert!((bus.busy_ns() - windows).abs() < 1e-9);
    }

    #[test]
    fn utilisation_saturates_at_one() {
        let mut bus = SharedBus::new();
        bus.acquire(0.0, 80.0);
        bus.acquire(0.0, 40.0); // eager grant stretches to t=120
        assert!((bus.utilisation(1000.0) - 0.12).abs() < 1e-12);
        // horizon shorter than the granted service: saturate, don't drift
        assert_eq!(bus.utilisation(100.0), 1.0);
        assert_eq!(bus.utilisation(0.0), 0.0);
        assert_eq!(bus.utilisation(-5.0), 0.0);
    }

    #[test]
    fn demand_ratio_is_unclamped() {
        let mut bus = SharedBus::new();
        bus.acquire(0.0, 80.0);
        bus.acquire(0.0, 40.0);
        // below saturation the two ratios agree
        assert!((bus.demand(1000.0) - bus.utilisation(1000.0)).abs() < 1e-12);
        // past saturation, demand keeps the oversubscription depth
        assert!((bus.demand(100.0) - 1.2).abs() < 1e-12);
        assert_eq!(bus.utilisation(100.0), 1.0);
        assert_eq!(bus.demand(0.0), 0.0);
        assert_eq!(bus.demand(-5.0), 0.0);
    }

    #[test]
    fn phase_occupancy_splits_bandwidth_from_latency() {
        let cfg = HostConfig::default();
        // dispatch: full duration occupies
        let d = Phase::host_dispatch(600.0);
        assert_eq!(phase_occupancy_ns(&cfg, &d), 600.0);
        // compute: never occupies
        let c = Phase::host_compute(1e6);
        assert_eq!(phase_occupancy_ns(&cfg, &c), 0.0);
        // a latency-bound scattered read occupies only its bandwidth term
        let scattered = Phase {
            kind: PhaseKind::HostRead,
            time_ns: 1e6, // mostly DRAM latency stalls
            energy_pj: 0.0,
            chip_power_w: 0.0,
            host_bytes: 64 * 100,
        };
        let occ = phase_occupancy_ns(&cfg, &scattered);
        assert!((occ - transfer_ns(&cfg, 6400)).abs() < 1e-9);
        assert!(occ < scattered.time_ns);
        // occupancy is clamped to the phase duration
        let tight = Phase { time_ns: 1.0, ..scattered };
        assert_eq!(phase_occupancy_ns(&cfg, &tight), 1.0);
    }
}
