//! Property tests: compiled NOR-only microprograms are semantically
//! identical to integer arithmetic/comparison for arbitrary widths and
//! values.

use bbpim_sim::compiler::{arith, mux, predicate, CodeBuilder, ColRange, ScratchPool};
use bbpim_sim::crossbar::Crossbar;
use proptest::prelude::*;

const ROWS: usize = 64;
const COLS: usize = 256;

/// Crossbar with `values` written into an attribute at column 0.
fn crossbar_with(values: &[u64], width: usize) -> Crossbar {
    let mut xb = Crossbar::new(ROWS, COLS);
    for (r, v) in values.iter().enumerate() {
        xb.write_row_bits(r, 0, width, *v);
    }
    xb
}

fn scratch() -> ScratchPool {
    ScratchPool::new(ColRange::new(96, 160))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn eq_matches_semantics(
        width in 1usize..=16,
        constant_seed in any::<u64>(),
        values in proptest::collection::vec(any::<u64>(), ROWS),
    ) {
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let constant = constant_seed & mask;
        let values: Vec<u64> = values.into_iter().map(|v| v & mask).collect();
        let mut xb = crossbar_with(&values, width);
        let mut pool = scratch();
        let mut b = CodeBuilder::new(&mut pool);
        let out = predicate::compile_eq_const(&mut b, ColRange::new(0, width), constant).unwrap();
        xb.execute(&b.finish()).unwrap();
        for (r, v) in values.iter().enumerate() {
            prop_assert_eq!(xb.bits().get(r, out), *v == constant);
        }
    }

    #[test]
    fn lt_gt_match_semantics(
        width in 1usize..=12,
        constant_seed in any::<u64>(),
        values in proptest::collection::vec(any::<u64>(), ROWS),
    ) {
        let mask = (1u64 << width) - 1;
        let constant = constant_seed & mask;
        let values: Vec<u64> = values.into_iter().map(|v| v & mask).collect();

        let mut xb = crossbar_with(&values, width);
        let mut pool = scratch();
        let mut b = CodeBuilder::new(&mut pool);
        let lt = predicate::compile_lt_const(&mut b, ColRange::new(0, width), constant).unwrap();
        let gt = predicate::compile_gt_const(&mut b, ColRange::new(0, width), constant).unwrap();
        xb.execute(&b.finish()).unwrap();
        for (r, v) in values.iter().enumerate() {
            prop_assert_eq!(xb.bits().get(r, lt), *v < constant, "lt row {}", r);
            prop_assert_eq!(xb.bits().get(r, gt), *v > constant, "gt row {}", r);
        }
    }

    #[test]
    fn add_sub_match_semantics(
        wa in 1usize..=10,
        wb in 1usize..=10,
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), ROWS),
    ) {
        let ma = (1u64 << wa) - 1;
        let mb = (1u64 << wb) - 1;
        let wdst = wa.max(wb) + 1;
        let mut xb = Crossbar::new(ROWS, COLS);
        for (r, (a, b)) in pairs.iter().enumerate() {
            xb.write_row_bits(r, 0, wa, a & ma);
            xb.write_row_bits(r, 16, wb, b & mb);
        }
        let mut pool = scratch();
        let mut builder = CodeBuilder::new(&mut pool);
        arith::compile_add(
            &mut builder, ColRange::new(0, wa), ColRange::new(16, wb), ColRange::new(32, wdst),
        ).unwrap();
        arith::compile_sub(
            &mut builder, ColRange::new(0, wa), ColRange::new(16, wb), ColRange::new(64, wdst),
        ).unwrap();
        xb.execute(&builder.finish()).unwrap();
        let modulus = 1u64 << wdst;
        for (r, (a, b)) in pairs.iter().enumerate() {
            let (a, b) = (a & ma, b & mb);
            prop_assert_eq!(xb.read_row_bits(r, 32, wdst), (a + b) % modulus, "add row {}", r);
            prop_assert_eq!(
                xb.read_row_bits(r, 64, wdst),
                a.wrapping_sub(b) % modulus,
                "sub row {}", r
            );
        }
    }

    #[test]
    fn mul_matches_semantics(
        wa in 1usize..=8,
        wb in 1usize..=5,
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), ROWS),
    ) {
        let ma = (1u64 << wa) - 1;
        let mb = (1u64 << wb) - 1;
        let wdst = wa + wb;
        let mut xb = Crossbar::new(ROWS, COLS);
        for (r, (a, b)) in pairs.iter().enumerate() {
            xb.write_row_bits(r, 0, wa, a & ma);
            xb.write_row_bits(r, 16, wb, b & mb);
        }
        let mut pool = scratch();
        let mut builder = CodeBuilder::new(&mut pool);
        arith::compile_mul(
            &mut builder, ColRange::new(0, wa), ColRange::new(16, wb), ColRange::new(32, wdst),
        ).unwrap();
        xb.execute(&builder.finish()).unwrap();
        for (r, (a, b)) in pairs.iter().enumerate() {
            prop_assert_eq!(xb.read_row_bits(r, 32, wdst), (a & ma) * (b & mb), "row {}", r);
        }
    }

    #[test]
    fn mux_update_matches_select_semantics(
        width in 1usize..=12,
        imm_seed in any::<u64>(),
        rows in proptest::collection::vec((any::<u64>(), any::<bool>()), ROWS),
    ) {
        let mask = (1u64 << width) - 1;
        let imm = imm_seed & mask;
        let mut xb = Crossbar::new(ROWS, COLS);
        for (r, (v, sel)) in rows.iter().enumerate() {
            xb.write_row_bits(r, 0, width, v & mask);
            xb.bits_mut_unaccounted().set(r, 90, *sel);
        }
        let mut pool = scratch();
        let mut b = CodeBuilder::new(&mut pool);
        mux::compile_mux_update(&mut b, ColRange::new(0, width), imm, 90).unwrap();
        xb.execute(&b.finish()).unwrap();
        for (r, (v, sel)) in rows.iter().enumerate() {
            let expected = if *sel { imm } else { v & mask };
            prop_assert_eq!(xb.read_row_bits(r, 0, width), expected, "row {}", r);
        }
    }

    #[test]
    fn between_and_in_match_semantics(
        width in 1usize..=10,
        bounds in (any::<u64>(), any::<u64>()),
        members in proptest::collection::vec(any::<u64>(), 1..5),
        values in proptest::collection::vec(any::<u64>(), ROWS),
    ) {
        let mask = (1u64 << width) - 1;
        let (lo, hi) = {
            let a = bounds.0 & mask;
            let b = bounds.1 & mask;
            (a.min(b), a.max(b))
        };
        let members: Vec<u64> = members.into_iter().map(|v| v & mask).collect();
        let values: Vec<u64> = values.into_iter().map(|v| v & mask).collect();
        let mut xb = crossbar_with(&values, width);
        let mut pool = scratch();
        let mut b = CodeBuilder::new(&mut pool);
        let bw = predicate::compile_between_const(&mut b, ColRange::new(0, width), lo, hi).unwrap();
        let inn = predicate::compile_in_set(&mut b, ColRange::new(0, width), &members).unwrap();
        xb.execute(&b.finish()).unwrap();
        for (r, v) in values.iter().enumerate() {
            prop_assert_eq!(xb.bits().get(r, bw), (lo..=hi).contains(v), "between row {}", r);
            prop_assert_eq!(xb.bits().get(r, inn), members.contains(v), "in row {}", r);
        }
    }
}
