//! Randomized tests: compiled NOR-only microprograms are semantically
//! identical to integer arithmetic/comparison for arbitrary widths and
//! values.
//!
//! Formerly written with `proptest`; rewritten as deterministic
//! seed-driven loops (see `tests/properties.rs` at the workspace root
//! for the rationale).

use bbpim_sim::compiler::{arith, mux, predicate, CodeBuilder, ColRange, ScratchPool};
use bbpim_sim::crossbar::Crossbar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 64;
const COLS: usize = 256;
const CASES: u64 = 64;

/// Crossbar with `values` written into an attribute at column 0.
fn crossbar_with(values: &[u64], width: usize) -> Crossbar {
    let mut xb = Crossbar::new(ROWS, COLS);
    for (r, v) in values.iter().enumerate() {
        xb.write_row_bits(r, 0, width, *v);
    }
    xb
}

fn scratch() -> ScratchPool {
    ScratchPool::new(ColRange::new(96, 160))
}

fn random_values(rng: &mut StdRng, mask: u64) -> Vec<u64> {
    (0..ROWS).map(|_| rng.gen::<u64>() & mask).collect()
}

#[test]
fn eq_matches_semantics() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE0 + case);
        let width = rng.gen_range(1usize..=16);
        let mask = (1u64 << width) - 1;
        let constant = rng.gen::<u64>() & mask;
        let values = random_values(&mut rng, mask);
        let mut xb = crossbar_with(&values, width);
        let mut pool = scratch();
        let mut b = CodeBuilder::new(&mut pool);
        let out = predicate::compile_eq_const(&mut b, ColRange::new(0, width), constant).unwrap();
        xb.execute(&b.finish()).unwrap();
        for (r, v) in values.iter().enumerate() {
            assert_eq!(xb.bits().get(r, out), *v == constant, "case {case} row {r}");
        }
    }
}

#[test]
fn lt_gt_match_semantics() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x17 + case);
        let width = rng.gen_range(1usize..=12);
        let mask = (1u64 << width) - 1;
        let constant = rng.gen::<u64>() & mask;
        let values = random_values(&mut rng, mask);

        let mut xb = crossbar_with(&values, width);
        let mut pool = scratch();
        let mut b = CodeBuilder::new(&mut pool);
        let lt = predicate::compile_lt_const(&mut b, ColRange::new(0, width), constant).unwrap();
        let gt = predicate::compile_gt_const(&mut b, ColRange::new(0, width), constant).unwrap();
        xb.execute(&b.finish()).unwrap();
        for (r, v) in values.iter().enumerate() {
            assert_eq!(xb.bits().get(r, lt), *v < constant, "case {case} lt row {r}");
            assert_eq!(xb.bits().get(r, gt), *v > constant, "case {case} gt row {r}");
        }
    }
}

#[test]
fn add_sub_match_semantics() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xADD + case);
        let wa = rng.gen_range(1usize..=10);
        let wb = rng.gen_range(1usize..=10);
        let ma = (1u64 << wa) - 1;
        let mb = (1u64 << wb) - 1;
        let wdst = wa.max(wb) + 1;
        let pairs: Vec<(u64, u64)> =
            (0..ROWS).map(|_| (rng.gen::<u64>() & ma, rng.gen::<u64>() & mb)).collect();
        let mut xb = Crossbar::new(ROWS, COLS);
        for (r, (a, b)) in pairs.iter().enumerate() {
            xb.write_row_bits(r, 0, wa, *a);
            xb.write_row_bits(r, 16, wb, *b);
        }
        let mut pool = scratch();
        let mut builder = CodeBuilder::new(&mut pool);
        arith::compile_add(
            &mut builder,
            ColRange::new(0, wa),
            ColRange::new(16, wb),
            ColRange::new(32, wdst),
        )
        .unwrap();
        arith::compile_sub(
            &mut builder,
            ColRange::new(0, wa),
            ColRange::new(16, wb),
            ColRange::new(64, wdst),
        )
        .unwrap();
        xb.execute(&builder.finish()).unwrap();
        let modulus = 1u64 << wdst;
        for (r, (a, b)) in pairs.iter().enumerate() {
            assert_eq!(xb.read_row_bits(r, 32, wdst), (a + b) % modulus, "case {case} add row {r}");
            assert_eq!(
                xb.read_row_bits(r, 64, wdst),
                a.wrapping_sub(*b) % modulus,
                "case {case} sub row {r}"
            );
        }
    }
}

#[test]
fn mul_matches_semantics() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x301 + case);
        let wa = rng.gen_range(1usize..=8);
        let wb = rng.gen_range(1usize..=5);
        let ma = (1u64 << wa) - 1;
        let mb = (1u64 << wb) - 1;
        let wdst = wa + wb;
        let pairs: Vec<(u64, u64)> =
            (0..ROWS).map(|_| (rng.gen::<u64>() & ma, rng.gen::<u64>() & mb)).collect();
        let mut xb = Crossbar::new(ROWS, COLS);
        for (r, (a, b)) in pairs.iter().enumerate() {
            xb.write_row_bits(r, 0, wa, *a);
            xb.write_row_bits(r, 16, wb, *b);
        }
        let mut pool = scratch();
        let mut builder = CodeBuilder::new(&mut pool);
        arith::compile_mul(
            &mut builder,
            ColRange::new(0, wa),
            ColRange::new(16, wb),
            ColRange::new(32, wdst),
        )
        .unwrap();
        xb.execute(&builder.finish()).unwrap();
        for (r, (a, b)) in pairs.iter().enumerate() {
            assert_eq!(xb.read_row_bits(r, 32, wdst), a * b, "case {case} row {r}");
        }
    }
}

#[test]
fn mux_update_matches_select_semantics() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x30C + case);
        let width = rng.gen_range(1usize..=12);
        let mask = (1u64 << width) - 1;
        let imm = rng.gen::<u64>() & mask;
        let rows: Vec<(u64, bool)> =
            (0..ROWS).map(|_| (rng.gen::<u64>() & mask, rng.gen::<bool>())).collect();
        let mut xb = Crossbar::new(ROWS, COLS);
        for (r, (v, sel)) in rows.iter().enumerate() {
            xb.write_row_bits(r, 0, width, *v);
            xb.bits_mut_unaccounted().set(r, 90, *sel);
        }
        let mut pool = scratch();
        let mut b = CodeBuilder::new(&mut pool);
        mux::compile_mux_update(&mut b, ColRange::new(0, width), imm, 90).unwrap();
        xb.execute(&b.finish()).unwrap();
        for (r, (v, sel)) in rows.iter().enumerate() {
            let expected = if *sel { imm } else { *v };
            assert_eq!(xb.read_row_bits(r, 0, width), expected, "case {case} row {r}");
        }
    }
}

#[test]
fn between_and_in_match_semantics() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB17 + case);
        let width = rng.gen_range(1usize..=10);
        let mask = (1u64 << width) - 1;
        let (lo, hi) = {
            let a = rng.gen::<u64>() & mask;
            let b = rng.gen::<u64>() & mask;
            (a.min(b), a.max(b))
        };
        let members: Vec<u64> =
            (0..rng.gen_range(1usize..5)).map(|_| rng.gen::<u64>() & mask).collect();
        let values = random_values(&mut rng, mask);
        let mut xb = crossbar_with(&values, width);
        let mut pool = scratch();
        let mut b = CodeBuilder::new(&mut pool);
        let bw = predicate::compile_between_const(&mut b, ColRange::new(0, width), lo, hi).unwrap();
        let inn = predicate::compile_in_set(&mut b, ColRange::new(0, width), &members).unwrap();
        xb.execute(&b.finish()).unwrap();
        for (r, v) in values.iter().enumerate() {
            assert_eq!(xb.bits().get(r, bw), (lo..=hi).contains(v), "case {case} between row {r}");
            assert_eq!(xb.bits().get(r, inn), members.contains(v), "case {case} in row {r}");
        }
    }
}
