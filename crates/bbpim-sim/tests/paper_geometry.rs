//! Integration checks at the paper's exact Table I geometry: the
//! structural properties the evaluation relies on must hold end to end.

use bbpim_sim::aggcircuit::AggRequest;
use bbpim_sim::compiler::predicate::compile_between_const;
use bbpim_sim::compiler::reduce::ReduceOp;
use bbpim_sim::compiler::{CodeBuilder, ColRange, ScratchPool};
use bbpim_sim::module::PimModule;
use bbpim_sim::SimConfig;

#[test]
fn one_page_is_32k_records_and_32_crossbars() {
    let mut module = PimModule::new(SimConfig::default());
    let pages = module.alloc_pages(1).unwrap();
    let page = module.page(pages[0]);
    assert_eq!(page.crossbar_count(), 32);
    assert_eq!(page.record_capacity(), 32 * 1024);
}

#[test]
fn filter_latency_is_page_count_independent_but_issue_grows() {
    // Bulk-bitwise execution is parallel across pages; only the request
    // issue serialises. Doubling the page count must add exactly the
    // issue overhead.
    let cfg = SimConfig::default();
    let mut module = PimModule::new(cfg.clone());
    let p4 = module.alloc_pages(4).unwrap();
    let p8 = module.alloc_pages(8).unwrap();

    let mut pool = ScratchPool::new(ColRange::new(400, 100));
    let mut b = CodeBuilder::new(&mut pool);
    compile_between_const(&mut b, ColRange::new(32, 20), 100, 5000).unwrap();
    let prog = b.finish();

    let t4 = module.exec_program(&p4, &prog).unwrap().time_ns;
    let t8 = module.exec_program(&p8, &prog).unwrap().time_ns;
    let expected_delta = 4.0 * cfg.request_issue_ns;
    assert!(
        (t8 - t4 - expected_delta).abs() < 1e-9,
        "t8 {t8} - t4 {t4} should equal 4 issue slots"
    );
}

#[test]
fn result_read_amplification_is_one_line_per_row() {
    // Reading a page's one-bit filter result costs rows lines (64 KB for
    // a 2 MB page): the 32x reduction of Section II-B.
    let cfg = SimConfig::default();
    let module = PimModule::new(cfg.clone());
    let lines_per_page = cfg.crossbar_rows as u64;
    let phase = module.host_read_phase(lines_per_page);
    let bytes = lines_per_page * cfg.host.line_bytes as u64;
    assert_eq!(bytes, 64 * 1024);
    assert!(phase.time_ns > 0.0);
}

#[test]
fn aggregation_over_a_full_paper_page_matches_direct_sum() {
    let cfg = SimConfig::default();
    let mut module = PimModule::new(cfg);
    let pages = module.alloc_pages(1).unwrap();
    let p = pages[0];
    let capacity = module.page(p).record_capacity();
    let mut expected = 0u64;
    for r in 0..capacity {
        let v = ((r as u64).wrapping_mul(48_271)) % 50_000;
        module.page_mut(p).write_record_bits(r, 32, 20, v).unwrap();
        let selected = r % 7 == 0;
        module.page_mut(p).write_record_bits(r, 1, 1, selected as u64).unwrap();
        if selected {
            expected += v;
        }
    }
    let req = AggRequest {
        op: ReduceOp::Sum,
        value: ColRange::new(32, 20),
        mask_col: 1,
        dst_row: 0,
        dst: ColRange::new(448, 40),
    };
    let (partials, phase) = module.agg_circuit(&pages, &req).unwrap();
    let total: u64 = partials.iter().flatten().sum();
    assert_eq!(total, expected);
    // 1024 rows × (2 value chunks + mask chunk) reads at 10 ns each,
    // plus issue + write-back: tens of microseconds.
    assert!(phase.time_ns > 10_000.0 && phase.time_ns < 100_000.0, "{}", phase.time_ns);
}

#[test]
fn chip_power_scales_linearly_to_the_papers_operating_point() {
    // At the paper's SF=10 the fact relation occupies ~1832 pages; the
    // logic-phase model must stay inside the paper's 44 W envelope.
    let cfg = SimConfig::default();
    let mut module = PimModule::new(cfg);
    let few = module.alloc_pages(2).unwrap();
    let mut prog_builder_pool = ScratchPool::new(ColRange::new(400, 100));
    let mut b = CodeBuilder::new(&mut prog_builder_pool);
    compile_between_const(&mut b, ColRange::new(32, 20), 100, 5000).unwrap();
    let prog = b.finish();
    let p2 = module.exec_program(&few, &prog).unwrap().chip_power_w;
    let per_page = p2 / 2.0;
    let extrapolated = per_page * 1832.0;
    assert!(
        extrapolated > 5.0 && extrapolated < 44.0,
        "extrapolated {extrapolated} W should sit under the paper's 44 W"
    );
}
