//! Shared report printers for the figure binaries (`fig6`–`fig9`,
//! `table2`, `all`), the cluster scaling study (`scaling`) and the
//! streaming scheduler study (`streaming`).

use crate::{
    fmt_ms, geomean, print_table, ClusterScalePoint, HtapStudy, MonetRun, PimModeRun, PruningPoint,
    ServeStudy, SsbSetup, StreamingStudy,
};
use bbpim_cluster::PlanExplain;
use bbpim_db::ssb::star::TableFootprint;

/// Fig. 6: execution latency of all five systems plus the paper's
/// headline geo-means.
pub fn print_fig6(setup: &SsbSetup, pim: &[PimModeRun], mnt_join: &MonetRun, mnt_reg: &MonetRun) {
    println!(
        "Fig. 6 — SSB execution latency [ms] (SF={}, {} data, {} records, {} pages)\n",
        setup.cfg.sf,
        if setup.cfg.skewed { "skewed" } else { "uniform" },
        setup.wide.len(),
        pim.first().map(|r| r.executions[0].report.pages).unwrap_or(0),
    );
    let mut rows = Vec::new();
    for (i, q) in setup.queries.iter().enumerate() {
        let mut row = vec![q.id.clone()];
        for run in pim {
            row.push(fmt_ms(run.executions[i].report.time_ns));
        }
        row.push(fmt_ms(mnt_join.results[i].0.as_nanos() as f64));
        row.push(fmt_ms(mnt_reg.results[i].0.as_nanos() as f64));
        rows.push(row);
    }
    print_table(&["query", "one_xb", "two_xb", "pimdb", "mnt_join", "mnt_reg"], &rows);

    let t = |run: &PimModeRun| -> Vec<f64> {
        run.executions.iter().map(|e| e.report.time_ns).collect()
    };
    let one = t(&pim[0]);
    let two = t(&pim[1]);
    let pdb = t(&pim[2]);
    let mj: Vec<f64> = mnt_join.results.iter().map(|(d, _)| d.as_nanos() as f64).collect();
    let mr: Vec<f64> = mnt_reg.results.iter().map(|(d, _)| d.as_nanos() as f64).collect();

    let gm = |a: &[f64], b: &[f64]| crate::fmt_geomean(&crate::speedups(a, b));
    let any_skipped = [(&one, &mr), (&one, &mj), (&one, &pdb), (&one, &two), (&two, &mj)]
        .iter()
        .any(|(a, b)| crate::geomean_filtered(&crate::speedups(a, b)).1 > 0);
    println!("\ngeo-mean speedups (ratio > 1 = first system faster):");
    println!("  one_xb vs mnt_reg : {:>8}   (paper: 7.46x)", gm(&one, &mr));
    println!("  one_xb vs mnt_join: {:>8}   (paper: 4.65x)", gm(&one, &mj));
    println!("  one_xb vs pimdb   : {:>8}   (paper: 1.83x)", gm(&one, &pdb));
    println!("  one_xb vs two_xb  : {:>8}   (paper: 3.39x)", gm(&one, &two));
    println!("  two_xb vs mnt_join: {:>8}   (paper: 1.37x)", gm(&two, &mj));
    if any_skipped {
        println!("  * zero-time rows skipped (planner-only queries have no measurable latency)");
    }

    println!("\nshape checks:");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
    };
    // On Q1.x all modes run the identical plan (filter + one PIM
    // aggregation), so the aggregation-circuit benefit shows cleanly.
    check(
        "aggregation circuit beats pure bitwise on Q1.1-1.3 (one_xb < pimdb)",
        (0..3).all(|i| one[i] < pdb[i]),
    );
    check(
        "vertical partitioning costs on Q1.1-1.3 (one_xb < two_xb)",
        (0..3).all(|i| one[i] < two[i]),
    );
    check("one_xb beats mnt_join on most queries", {
        let wins = one.iter().zip(&mj).filter(|(o, m)| o < m).count();
        wins * 2 > one.len()
    });
    check(
        "one_xb beats mnt_reg in geo-mean",
        crate::geomean_filtered(&crate::speedups(&one, &mr)).0.is_some_and(|m| m > 1.0),
    );
    // GROUP BY queries may pick different k per mode; flag only large
    // self-inflicted regressions of the hybrid decision.
    check(
        "no mode loses more than 4x to another PIM mode on any query",
        (0..one.len()).all(|i| {
            let worst = one[i].max(two[i]).max(pdb[i]);
            let best = one[i].min(two[i]).min(pdb[i]);
            worst / best < 4.0 + 1e3 * f64::EPSILON || worst < 1e6 // ignore sub-ms noise
        }),
    );
}

/// Fig. 7: PIM energy per query, per mode.
pub fn print_fig7(setup: &SsbSetup, pim: &[PimModeRun]) {
    println!("Fig. 7 — PIM memory energy [mJ] per query (SF={})\n", setup.cfg.sf);
    let mut rows = Vec::new();
    for (i, q) in setup.queries.iter().enumerate() {
        let mut row = vec![q.id.clone()];
        for run in pim {
            row.push(format!("{:.4}", run.executions[i].report.energy_pj * 1e-9));
        }
        rows.push(row);
    }
    print_table(&["query", "one_xb", "two_xb", "pimdb"], &rows);

    // paper: on the queries where PIMDB aggregates in PIM it spends
    // 4.31x more energy (geo-mean) than one_xb.
    let both_pim_agg: Vec<usize> = (0..setup.queries.len())
        .filter(|&i| {
            pim[2].executions[i].report.pim_agg_subgroups > 0
                && pim[0].executions[i].report.pim_agg_subgroups > 0
        })
        .collect();
    if !both_pim_agg.is_empty() {
        let ratios: Vec<f64> = both_pim_agg
            .iter()
            .map(|&i| pim[2].executions[i].report.energy_pj / pim[0].executions[i].report.energy_pj)
            .collect();
        let ids: Vec<&str> = both_pim_agg.iter().map(|&i| setup.queries[i].id.as_str()).collect();
        let (mean, skipped) = crate::geomean_filtered(&ratios);
        match mean {
            Some(m) if skipped == 0 => println!(
                "\npimdb / one_xb energy on PIM-aggregating queries {ids:?}: {m:.2}x geo-mean (paper: 4.31x)"
            ),
            Some(m) => println!(
                "\npimdb / one_xb energy on PIM-aggregating queries {ids:?}: {m:.2}x geo-mean over {} rows ({skipped} zero-energy rows skipped; paper: 4.31x)",
                ratios.len() - skipped
            ),
            None => println!(
                "\npimdb / one_xb energy comparison skipped: no query drew measurable energy in both modes"
            ),
        }
    }
}

/// Fig. 8: peak per-chip power, per mode.
pub fn print_fig8(setup: &SsbSetup, pim: &[PimModeRun]) {
    println!("Fig. 8 — peak power per PIM chip [W] (SF={})\n", setup.cfg.sf);
    let mut rows = Vec::new();
    for (i, q) in setup.queries.iter().enumerate() {
        let mut row = vec![q.id.clone()];
        for run in pim {
            row.push(format!("{:.4}", run.executions[i].report.peak_chip_power_w));
        }
        rows.push(row);
    }
    print_table(&["query", "one_xb", "two_xb", "pimdb"], &rows);
    let max = pim
        .iter()
        .flat_map(|r| r.executions.iter().map(|e| e.report.peak_chip_power_w))
        .fold(0.0, f64::max);
    println!(
        "\nmax observed: {max:.3} W per chip (paper at SF=10: < 44 W; power scales with\nactive pages, so smaller SF draws proportionally less)"
    );
}

/// Fig. 9: required cell endurance for ten years of back-to-back runs.
pub fn print_fig9(setup: &SsbSetup, pim: &[PimModeRun]) {
    println!(
        "Fig. 9 — required cell endurance [writes] for 10 years back-to-back (SF={})\n",
        setup.cfg.sf
    );
    let mut rows = Vec::new();
    for (i, q) in setup.queries.iter().enumerate() {
        let mut row = vec![q.id.clone()];
        for run in pim {
            row.push(format!("{:.2e}", run.executions[i].report.required_endurance(10.0)));
        }
        rows.push(row);
    }
    print_table(&["query", "one_xb", "two_xb", "pimdb"], &rows);
    println!("\nRRAM endurance reference: 1e12 writes per cell (paper ref. [22]).");

    // lifetime comparison on queries where both one_xb and pimdb perform
    // few PIM aggregations (the paper's 3.21x case: Q1.1-1.3, Q3.4).
    let candidates: Vec<usize> = (0..setup.queries.len())
        .filter(|&i| {
            pim[2].executions[i].report.pim_agg_subgroups > 0
                && pim[0].executions[i].report.pim_agg_subgroups > 0
        })
        .collect();
    if !candidates.is_empty() {
        let ratios: Vec<f64> = candidates
            .iter()
            .map(|&i| {
                let one = pim[0].executions[i].report.required_endurance(10.0);
                let pdb = pim[2].executions[i].report.required_endurance(10.0);
                pdb / one
            })
            .collect();
        let (mean, skipped) = crate::geomean_filtered(&ratios);
        if let Some(m) = mean {
            let note = if skipped > 0 {
                format!(" ({skipped} zero-endurance rows skipped)")
            } else {
                String::new()
            };
            println!(
                "pimdb / one_xb required endurance on PIM-aggregating queries: {m:.2}x geo-mean{note} (paper lifetime gain: 3.21x)"
            );
        }
    }
}

/// Write machine-readable CSVs (fig6.csv … table2.csv) for downstream
/// plotting into `dir`.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_csvs(
    dir: &std::path::Path,
    setup: &SsbSetup,
    pim: &[PimModeRun],
    mnt_join: &MonetRun,
    mnt_reg: &MonetRun,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    std::fs::create_dir_all(dir)?;

    let mut fig6 = String::from("query,one_xb_ms,two_xb_ms,pimdb_ms,mnt_join_ms,mnt_reg_ms\n");
    let mut fig7 = String::from("query,one_xb_mj,two_xb_mj,pimdb_mj\n");
    let mut fig8 = String::from("query,one_xb_w,two_xb_w,pimdb_w\n");
    let mut fig9 = String::from("query,one_xb_writes,two_xb_writes,pimdb_writes\n");
    let mut table2 =
        String::from("query,selectivity,total_subgroups,in_sample,k_one_xb,k_two_xb,k_pimdb\n");
    for (i, q) in setup.queries.iter().enumerate() {
        let r = |m: usize| &pim[m].executions[i].report;
        let _ = writeln!(
            fig6,
            "{},{:.6},{:.6},{:.6},{:.6},{:.6}",
            q.id,
            r(0).time_ns / 1e6,
            r(1).time_ns / 1e6,
            r(2).time_ns / 1e6,
            mnt_join.results[i].0.as_nanos() as f64 / 1e6,
            mnt_reg.results[i].0.as_nanos() as f64 / 1e6,
        );
        let _ = writeln!(
            fig7,
            "{},{:.6},{:.6},{:.6}",
            q.id,
            r(0).energy_pj * 1e-9,
            r(1).energy_pj * 1e-9,
            r(2).energy_pj * 1e-9,
        );
        let _ = writeln!(
            fig8,
            "{},{:.6},{:.6},{:.6}",
            q.id,
            r(0).peak_chip_power_w,
            r(1).peak_chip_power_w,
            r(2).peak_chip_power_w,
        );
        let _ = writeln!(
            fig9,
            "{},{:.6e},{:.6e},{:.6e}",
            q.id,
            r(0).required_endurance(10.0),
            r(1).required_endurance(10.0),
            r(2).required_endurance(10.0),
        );
        let _ = writeln!(
            table2,
            "{},{:.6e},{},{},{},{},{}",
            q.id,
            r(0).selectivity,
            r(0).total_subgroups,
            r(0).subgroups_in_sample,
            r(0).pim_agg_subgroups,
            r(1).pim_agg_subgroups,
            r(2).pim_agg_subgroups,
        );
    }
    std::fs::write(dir.join("fig6.csv"), fig6)?;
    std::fs::write(dir.join("fig7.csv"), fig7)?;
    std::fs::write(dir.join("fig8.csv"), fig8)?;
    std::fs::write(dir.join("fig9.csv"), fig9)?;
    std::fs::write(dir.join("table2.csv"), table2)?;
    Ok(())
}

/// Table II: per-query selectivity and subgroup statistics.
pub fn print_table2(setup: &SsbSetup, pim: &[PimModeRun]) {
    println!(
        "Table II — query summary (SF={}, {} data)\n",
        setup.cfg.sf,
        if setup.cfg.skewed { "skewed" } else { "uniform" }
    );
    let mut rows = Vec::new();
    for (i, q) in setup.queries.iter().enumerate() {
        let r0 = &pim[0].executions[i].report;
        rows.push(vec![
            q.id.clone(),
            format!("{:.2e}", r0.selectivity),
            r0.total_subgroups.to_string(),
            r0.subgroups_in_sample.to_string(),
            pim[0].executions[i].report.pim_agg_subgroups.to_string(),
            pim[1].executions[i].report.pim_agg_subgroups.to_string(),
            pim[2].executions[i].report.pim_agg_subgroups.to_string(),
        ]);
    }
    print_table(
        &[
            "query",
            "selectivity",
            "total subgroups",
            "in sample",
            "k one_xb",
            "k two_xb",
            "k pimdb",
        ],
        &rows,
    );
    println!("\npaper (SF=10): Q1.x always aggregate once in PIM; one_xb assigns many");
    println!("subgroups to PIM (e.g. Q2.2: 56, Q3.1: 150), two_xb assigns none, pimdb few.");
}

/// Pruning study: zone-map-pruned vs exhaustive dispatch per query and
/// shard count on a range-partitioned cluster.
pub fn print_pruning(setup: &SsbSetup, points: &[PruningPoint]) {
    println!(
        "Zone-map pruning — pruned vs exhaustive dispatch (SF={}, {} data, {} records)\n",
        setup.cfg.sf,
        if setup.cfg.skewed { "skewed" } else { "uniform" },
        setup.wide.len(),
    );
    for point in points {
        println!("{} shards, {} partitioning:", point.shards, point.partitioner);
        let mut rows = Vec::new();
        let mut ratios = Vec::new();
        let mut planner_only = 0usize;
        for (i, q) in setup.queries.iter().enumerate() {
            let ex = &point.exhaustive[i].report;
            let pr = &point.pruned[i].report;
            // A zero pruned time means the planner answered the query
            // without touching a single page: report it as such and
            // keep the geo-mean over the queries that did execute.
            let speedup_cell = if pr.time_ns > 0.0 {
                let speedup = ex.time_ns / pr.time_ns;
                ratios.push(speedup);
                format!("{speedup:.2}")
            } else {
                planner_only += 1;
                "planner-only".into()
            };
            let energy_cell = if pr.energy_pj > 0.0 {
                format!("{:.2}", ex.energy_pj / pr.energy_pj)
            } else {
                "-".into()
            };
            rows.push(vec![
                q.id.clone(),
                fmt_ms(ex.time_ns),
                fmt_ms(pr.time_ns),
                speedup_cell,
                format!("{}/{}", pr.shards_pruned, pr.active_shards),
                format!("{}/{}", pr.pages_scanned, pr.pages_total),
                energy_cell,
            ]);
        }
        print_table(
            &[
                "query",
                "exhaustive",
                "pruned",
                "speedup",
                "shards pruned",
                "pages scanned",
                "energy x",
            ],
            &rows,
        );
        match crate::geomean_filtered(&ratios) {
            (None, _) => println!("  every query answered by the planner alone\n"),
            (Some(m), skipped) => {
                let note = if skipped > 0 {
                    format!(", {skipped} degenerate ratios skipped")
                } else {
                    String::new()
                };
                println!(
                    "  geo-mean wall-clock speedup: {m:.2}x over {} executed queries ({planner_only} answered by the planner alone{note})\n",
                    ratios.len() - skipped,
                );
            }
        }
    }
    println!(
        "(latencies in ms; shards pruned = zone-map-skipped / active; pages scanned counts\nonly dispatched shards' planned pages. Answers are oracle-checked bit-identical.)"
    );
}

/// `EXPLAIN` dump: the zone-map planner's per-query statistics — how
/// many shards/pages each query would dispatch vs what the planner
/// proves irrelevant. Plans carrying `EXPLAIN ANALYZE` actuals get a
/// second table with the recorded shards/pages/bytes/time/energy next
/// to the estimates.
pub fn print_explain(setup: &SsbSetup, explains: &[PlanExplain]) {
    let analyzed = explains.iter().any(|e| e.actuals.is_some());
    if analyzed {
        println!("EXPLAIN ANALYZE — zone-map plan per query, with recorded actuals\n");
    } else {
        println!("EXPLAIN — zone-map plan per query (no execution)\n");
    }
    let rows: Vec<Vec<String>> = setup
        .queries
        .iter()
        .zip(explains)
        .map(|(q, e)| {
            vec![
                q.id.clone(),
                format!("{}/{}", e.shards_dispatched(), e.shards.len()),
                format!("{}/{}", e.pages_candidate(), e.pages_total()),
                e.pages_pruned().to_string(),
                if e.planner_only() { "yes".into() } else { "-".into() },
            ]
        })
        .collect();
    print_table(&["query", "shards", "pages", "pages pruned", "planner-only"], &rows);

    if analyzed {
        println!("\nrecorded actuals (run / planned; bytes split by channel direction):");
        let rows: Vec<Vec<String>> = explains
            .iter()
            .filter_map(|e| {
                let a = e.actuals?;
                Some(vec![
                    e.query_id.clone(),
                    format!("{}/{}", a.shards_executed, e.shards_dispatched()),
                    format!("{}/{}", a.pages_scanned, e.pages_candidate()),
                    a.total_bytes().to_string(),
                    a.dispatch_bytes.to_string(),
                    a.read_bytes.to_string(),
                    a.write_bytes.to_string(),
                    fmt_ms(a.time_ns),
                    format!("{:.3}", a.energy_pj / 1e6),
                ])
            })
            .collect();
        print_table(
            &["query", "shards", "pages", "bytes", "dispatch", "read", "write", "ms", "uJ"],
            &rows,
        );
    }

    // The resolved filters the zone maps were tested against: the
    // pretty-printed predicate tree and its per-attribute pruning
    // intervals (interval union across OR branches).
    println!("\nresolved filters and pruning bounds:");
    for e in explains {
        println!("  {:<6} {}", e.query_id, e.filter);
        for (attr, intervals) in &e.filter_bounds {
            println!("         {attr} ∈ {}", bbpim_cluster::explain::render_intervals(intervals));
        }
    }

    let total: usize = explains.iter().map(PlanExplain::pages_total).sum();
    let candidate: usize = explains.iter().map(PlanExplain::pages_candidate).sum();
    println!(
        "\n  {} of {} page dispatches pruned across the query set ({:.1}%)\n",
        total - candidate,
        total,
        if total == 0 { 0.0 } else { 100.0 * (total - candidate) as f64 / total as f64 },
    );
}

/// Per-table PIM-resident memory footprint of the normalized star
/// schema next to the single pre-joined wide table it replaces. The
/// normalized rows list `lineorder` plus the four dimensions (their
/// `data_bytes` already exclude host-resident cold columns); the
/// pre-join row is the capacity the dropped wide relation would have
/// occupied across the cluster.
pub fn print_star_footprint(normalized: &[TableFootprint], prejoin: &TableFootprint) {
    println!("PIM-resident memory footprint — normalized star schema vs pre-join\n");
    let total: u64 = normalized.iter().map(|f| f.data_bytes).sum();
    let mut rows = Vec::new();
    for f in normalized {
        rows.push(vec![
            f.table.clone(),
            f.records.to_string(),
            f.resident_bits.to_string(),
            f.data_bytes.to_string(),
            format!("{:.1}%", 100.0 * f.data_bytes as f64 / total.max(1) as f64),
        ]);
    }
    rows.push(vec![
        format!("{} (dropped)", prejoin.table),
        prejoin.records.to_string(),
        prejoin.resident_bits.to_string(),
        prejoin.data_bytes.to_string(),
        "-".into(),
    ]);
    print_table(&["table", "records", "resident bits/rec", "data bytes", "share"], &rows);
    println!(
        "\n  normalized total: {total} B — {:.1}% of the {} B pre-join ({:.2}x smaller)",
        100.0 * total as f64 / prejoin.data_bytes.max(1) as f64,
        prejoin.data_bytes,
        prejoin.data_bytes as f64 / total.max(1) as f64,
    );
}

/// Streaming study: per-admission-policy latency distribution,
/// throughput and utilisation, plus the out-of-order evidence.
pub fn print_streaming(setup: &SsbSetup, study: &StreamingStudy) {
    println!(
        "Streaming — open-loop arrivals through the cluster scheduler (SF={}, {} data)\n",
        setup.cfg.sf,
        if setup.cfg.skewed { "skewed" } else { "uniform" },
    );
    println!(
        "  {} arrivals over the 13 queries, mean interarrival {} ms (load {:.2}x of the\n  \
         batch-estimated {} ms mean service), {} shards ({} partitioning), at most {}\n  \
         queries in flight.\n",
        study.arrivals,
        fmt_ms(study.mean_interarrival_ns),
        setup.cfg.load,
        fmt_ms(study.mean_service_ns),
        study.shards,
        study.partitioner,
        study.inflight,
    );

    let mut rows = Vec::new();
    for run in &study.policies {
        let s = run.outcome.latency_summary();
        rows.push(vec![
            run.policy.label().to_string(),
            s.completed.to_string(),
            fmt_ms(s.p50_ns),
            fmt_ms(s.p95_ns),
            fmt_ms(s.p99_ns),
            fmt_ms(s.mean_ns),
            fmt_ms(s.mean_wait_ns),
            format!("{:.1}", run.outcome.throughput_qps()),
            format!("{:.2}", run.outcome.host_utilisation()),
            format!("{:.2}", run.outcome.host_demand()),
            format!("{:.2}", run.outcome.mean_shard_utilisation()),
            run.outcome.overtaken().to_string(),
        ]);
    }
    print_table(
        &[
            "policy",
            "done",
            "p50",
            "p95",
            "p99",
            "mean",
            "wait",
            "q/s",
            "host util",
            "demand",
            "shard util",
            "overtaken",
        ],
        &rows,
    );
    println!(
        "\n(latencies in ms; wait = mean time before first service; demand = raw host-channel\ndemand ratio, unclamped — above 1.00 the bus is oversubscribed and utilisation\nsaturates; overtaken = queries that finished after a later arrival, i.e.\nout-of-order completions.)"
    );

    for run in &study.policies {
        if let Some(c) = run.outcome.first_overtaker() {
            println!(
                "  {}: arrival #{} ({}, {} of {} shards pruned) finished before at least \
                 one earlier arrival",
                run.policy.label(),
                c.arrival,
                c.query_id,
                c.shards_pruned,
                c.shards_pruned + c.shards_dispatched,
            );
        }
    }
    println!(
        "\n  streamed answers verified bit-identical to run_batch over the same {} queries\n  \
         (batch wall clock {} ms; streaming spreads the same work over the arrival span).",
        study.arrivals,
        fmt_ms(study.batch.wall_time_ns),
    );
}

/// Serve study: per-(overload, policy, tenant) latency distribution,
/// goodput, drops and the SLO verdict, plus each AIMD row's window
/// trajectory summary.
pub fn print_serve(setup: &SsbSetup, study: &ServeStudy) {
    println!(
        "Serving — multi-tenant SLO study (SF={}, {} data, {} shards)\n",
        setup.cfg.sf,
        if setup.cfg.skewed { "skewed" } else { "uniform" },
        study.shards,
    );
    let gate = study.gate_row();
    let light = gate.report("light");
    let heavy = gate.report("heavy");
    println!(
        "  batch-estimated mean service {} ms; tenants: `light` (cheap probes, p95\n  \
         promise {} ms, weight 2), `heavy` (the most expensive scans at the row's\n  \
         overload multiple behind a token bucket, deadline {} ms), `batch` (2\n  \
         closed-loop think-time clients). Policies: closed-loop AIMD window vs the\n  \
         static sweep at {:.0}x.\n",
        fmt_ms(study.mean_service_ns),
        fmt_ms(light.p95_target_ns),
        fmt_ms(heavy.deadline_ns.unwrap_or(f64::NAN)),
        study.gate_overload,
    );

    let mut rows = Vec::new();
    for row in &study.rows {
        for r in &row.reports {
            rows.push(vec![
                format!("{:.0}x", row.overload),
                row.policy.clone(),
                r.name.clone(),
                r.submitted.to_string(),
                r.completed.to_string(),
                r.dropped.to_string(),
                r.throttled.to_string(),
                fmt_ms(r.latency.p50_ns),
                fmt_ms(r.latency.p95_ns),
                fmt_ms(r.latency.p99_ns),
                fmt_ms(r.latency.p999_ns),
                format!("{:.1}", r.goodput_qps),
                format!("{:.0}%", 100.0 * r.drop_rate),
                if r.slo_met { "ok".into() } else { "MISS".into() },
            ]);
        }
    }
    print_table(
        &[
            "load", "policy", "tenant", "sub", "done", "drop", "thr", "p50", "p95", "p99", "p999",
            "good/s", "shed", "slo",
        ],
        &rows,
    );
    println!(
        "\n(latencies in ms; good/s = deadline-met completions per second; shed = share of\nsubmissions dropped at admission; slo compares observed p95 to the tenant's promise.)"
    );

    for row in &study.rows {
        if row.policy != "aimd" {
            continue;
        }
        let (lo, hi) = row.outcome.window_bounds();
        println!(
            "  {:>3.0}x aimd: window {} -> {} (range [{lo}, {hi}]) over {} decisions",
            row.overload,
            row.outcome.window_trajectory.first().map_or(0, |(_, w)| *w),
            row.outcome.final_window(),
            row.outcome.decisions.len(),
        );
    }
    if let Some((policy, goodput)) = study.best_static_heavy_goodput() {
        let gate = study.gate_row();
        println!(
            "\n  at {:.0}x: AIMD heavy goodput {:.1}/s vs best SLO-respecting static ({policy}) \
             {goodput:.1}/s",
            study.gate_overload,
            gate.report("heavy").goodput_qps,
        );
    }
    println!(
        "\n  served answers verified bit-identical to run_batch over the tenant query set\n  \
         (admission, shedding and the window policy decide when and whether — never what)."
    );
}

/// Cluster scaling study: simulated latency and speedup per shard
/// count, per query, under the default shared-host-channel contention
/// model. The free-per-module-channel A/B timing is recovered from the
/// same executions with [`crate::optimistic_wall_ns`] — the gap between
/// the two clocks is exactly the journal extension's host-channel
/// bound. The point with the fewest shards is the baseline (normally 1
/// shard), regardless of sweep order.
pub fn print_scaling(setup: &SsbSetup, points: &[ClusterScalePoint], star: bool) {
    let base = points.iter().min_by_key(|p| p.shards).expect("at least one scale point");
    println!(
        "Cluster scaling — simulated latency [ms] (SF={}, {} data, {} records, {} partitioning)\n",
        setup.cfg.sf,
        if setup.cfg.skewed { "skewed" } else { "uniform" },
        setup.wide.len(),
        base.partitioner,
    );

    let mut headers: Vec<String> = vec!["query".into(), "partitioner".into()];
    for p in points {
        headers.push(format!("{}-shard", p.shards));
    }
    let compared: Vec<&ClusterScalePoint> =
        points.iter().filter(|p| p.shards != base.shards).collect();
    for p in &compared {
        headers.push(format!("x{}", p.shards));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for (i, q) in setup.queries.iter().enumerate() {
        let mut row = vec![q.id.clone(), base.executions[i].report.partitioner.to_string()];
        for p in points {
            row.push(fmt_ms(p.executions[i].report.time_ns));
        }
        let t0 = base.executions[i].report.time_ns;
        for p in &compared {
            let ratio = t0 / p.executions[i].report.time_ns;
            // zone-pruned zero-match queries cost ~0 at every shard count
            row.push(if ratio.is_finite() { format!("{ratio:.2}") } else { "-".into() });
        }
        rows.push(row);
    }
    print_table(&header_refs, &rows);

    // Two wall clocks from the one sweep: the contended model as
    // reported, and the optimistic free-channel model recomputed from
    // the same per-shard logs.
    let wall = |p: &ClusterScalePoint, i: usize, contended: bool| -> f64 {
        if contended {
            p.executions[i].report.time_ns
        } else {
            crate::optimistic_wall_ns(&p.executions[i].report)
        }
    };
    let geomean_speedups = |p: &ClusterScalePoint, contended: bool| -> Option<f64> {
        let ratios: Vec<f64> = (0..setup.queries.len())
            .map(|i| wall(base, i, contended) / wall(p, i, contended))
            .filter(|r| r.is_finite() && *r > 0.0)
            .collect();
        if ratios.is_empty() {
            None
        } else {
            Some(geomean(&ratios))
        }
    };
    println!("\ngeo-mean speedup over {}-shard (queries with nonzero time):", base.shards);
    for p in &compared {
        match (geomean_speedups(p, true), geomean_speedups(p, false)) {
            (None, _) => {
                println!("  {} shards: every query answered by the planner alone", p.shards)
            }
            (Some(c), Some(f)) => println!(
                "  {} shards: {c:>6.2}x contended host channel  ({f:.2}x with free per-module \
                 channels — the gap is the host-channel bound)",
                p.shards
            ),
            (Some(c), None) => println!("  {} shards: {c:>6.2}x", p.shards),
        }
    }

    if star {
        // The star path answers GROUP BY by host-side gather, so the
        // pim-gb parallelism target below does not apply; the shape
        // that matters here (and that bench_gate floors absolutely) is
        // that module parallelism survives the contended host channel
        // at the widest sweep point.
        if let Some(p) = compared.iter().max_by_key(|p| p.shards) {
            if let Some(c) = geomean_speedups(p, true) {
                println!(
                    "\nshape check:\n  [{}] contended geo-mean speedup at {} shards: {c:.2}x \
                     (byte-diet target > 1.0x)",
                    if c > 1.0 { "PASS" } else { "FAIL" },
                    p.shards
                );
            }
        }
        return;
    }

    // The headline check: module-level parallelism must pay off on at
    // least one GROUP BY query by 4 shards (when 4 shards were run).
    // Parallelism is a property of the modules, so it is checked on the
    // free-channel model; the contended best alongside it quantifies
    // how much of that parallelism the shared host channel eats — the
    // journal extension's core observation.
    let best_gb = |contended: bool| -> Option<(f64, String)> {
        let p4 = points.iter().find(|p| p.shards == 4)?;
        setup
            .queries
            .iter()
            .enumerate()
            .filter(|(_, q)| q.has_group_by())
            .map(|(i, q)| (wall(base, i, contended) / wall(p4, i, contended), q.id.clone()))
            .max_by(|a, b| a.0.total_cmp(&b.0))
    };
    if let Some((speedup, id)) = best_gb(false) {
        println!(
            "\nshape check:\n  [{}] best GROUP BY module-parallel speedup at 4 shards: \
             {speedup:.2}x on {id} (free channels, target > 1.5x)",
            if speedup > 1.5 { "PASS" } else { "FAIL" },
        );
        if let Some((contended, cid)) = best_gb(true) {
            println!(
                "  host-channel bound: the contended model keeps {contended:.2}x (on {cid}) of \
                 that win"
            );
        }
    }
}

/// The HTAP streaming-ingest study: per-row query and mutation
/// latencies, backpressure counters, the snapshot-consistency verdict,
/// and the per-workload endurance wear table.
pub fn print_htap(setup: &SsbSetup, study: &HtapStudy) {
    println!(
        "HTAP — mutations as scheduler citizens (SF={}, {} data)\n",
        setup.cfg.sf,
        if setup.cfg.skewed { "skewed" } else { "uniform" },
    );
    println!(
        "  {} arrivals per row, baseline mean interarrival {} ms (load {:.2}x of the\n  \
         batch-estimated {} ms mean service), {} shards ({} partitioning),\n  \
         ingest buffer {} per lane.\n",
        study.arrivals,
        fmt_ms(study.mean_interarrival_ns),
        setup.cfg.load,
        fmt_ms(study.mean_service_ns),
        study.shards,
        study.partitioner,
        study.ingest_buffer,
    );

    let mut rows = Vec::new();
    for r in &study.rows {
        let q = r.outcome.latency_summary();
        let m = r.outcome.mutation_latency_summary();
        rows.push(vec![
            r.label.to_string(),
            format!("{:.0}%", r.mutation_frac * 100.0),
            q.completed.to_string(),
            fmt_ms(q.p50_ns),
            fmt_ms(q.p95_ns),
            m.completed.to_string(),
            if m.completed > 0 { fmt_ms(m.p95_ns) } else { "-".into() },
            r.records_written.to_string(),
            r.outcome.ingest_stalls.to_string(),
            fmt_ms(r.outcome.ingest_stall_ns),
            if r.snapshot_consistent { "yes".into() } else { "NO".into() },
        ]);
    }
    print_table(
        &[
            "row",
            "mut %",
            "queries",
            "q p50",
            "q p95",
            "ingests",
            "m p95",
            "records",
            "stalls",
            "stall time",
            "snapshot ok",
        ],
        &rows,
    );
    println!(
        "\n(latencies in ms; snapshot ok = every streamed answer equals a fresh engine\nthat replayed exactly the first `epoch` arrived mutations — the HTAP\ncorrectness bar, gated as an absolute floor.)"
    );

    // Per-workload endurance wear series: UPDATE-heavy streams wear
    // lanes unevenly, and the ingest row's extra write traffic shows up
    // as required endurance the pure-query row never demands.
    let wear = study.endurance_rows();
    let mut wear_rows = Vec::new();
    for (label, lane, writes, endurance) in &wear {
        if *writes == 0 && *endurance <= 0.0 {
            continue;
        }
        wear_rows.push(vec![
            (*label).to_string(),
            format!("module-{lane}"),
            writes.to_string(),
            format!("{endurance:.3e}"),
        ]);
    }
    println!("\nper-workload endurance wear (10-year back-to-back, per lane):\n");
    print_table(&["row", "lane", "cell writes", "required endurance"], &wear_rows);
}
