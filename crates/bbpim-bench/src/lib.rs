//! # bbpim-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table I — architecture and system configuration |
//! | `table2` | Table II — per-query selectivity / subgroup statistics |
//! | `fig4`   | Fig. 4 — empirical latency modeling (a, b, c panels) |
//! | `fig5`   | Fig. 5 — PIM chip area breakdown |
//! | `fig6`   | Fig. 6 — SSB execution latency, all five systems |
//! | `fig7`   | Fig. 7 — PIM energy per query |
//! | `fig8`   | Fig. 8 — peak per-chip power |
//! | `fig9`   | Fig. 9 — required cell endurance (10-year back-to-back) |
//! | `all`    | everything above in one pass (EXPERIMENTS.md source) |
//!
//! All binaries accept `--sf <f64>` (default 0.1), `--uniform` (default
//! is the paper's skewed data), `--seed <u64>` and `--threads <usize>`.
//! Criterion micro-benchmarks live under `benches/`.

pub mod reports;

use std::collections::BTreeMap;
use std::time::Duration;

use bbpim_cluster::{BatchExecution, ClusterEngine, ClusterExecution, Partitioner, PlanExplain};
use bbpim_core::engine::PimQueryEngine;
use bbpim_core::groupby::calibration::{run_calibration, CalibrationConfig};
use bbpim_core::groupby::cost_model::GroupByModel;
use bbpim_core::modes::EngineMode;
use bbpim_core::result::QueryExecution;
use bbpim_db::plan::Query;
use bbpim_db::relation::Relation;
use bbpim_db::ssb::{queries, SsbDb, SsbParams};
use bbpim_db::stats::MultiGrouped;
use bbpim_join::StarCluster;
use bbpim_monet::MonetEngine;
use bbpim_sched::demand::resolve_query_demand;
use bbpim_sched::{
    record_stream_metrics, run_stream, run_stream_traced, AdmissionPolicy, MutationArrival,
    SchedConfig, StreamOutcome, Workload,
};
use bbpim_serve::{
    record_serve_metrics, run_serve, run_serve_traced, tenant_reports, AimdConfig, ArrivalProcess,
    RateLimit, ServeConfig, ServeOutcome, SloSpec, TenantReport, TenantSpec, WindowPolicy,
};
use bbpim_sim::SimConfig;
use bbpim_trace::{MetricsRegistry, TraceRecorder};

/// Harness configuration (CLI-parsed).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// SSB scale factor.
    pub sf: f64,
    /// Skewed data (the paper's setting) vs uniform.
    pub skewed: bool,
    /// Generator seed.
    pub seed: u64,
    /// Host threads for the baseline engine.
    pub threads: usize,
    /// Shard counts for the cluster studies (`--shards 1,2,4,8`).
    pub shards: Vec<usize>,
    /// Arrivals in the streaming study (`--arrivals 52`).
    pub arrivals: usize,
    /// Offered load of the streaming study as a multiple of cluster
    /// capacity: mean interarrival = mean per-query service / load
    /// (`--load 2.0`; >1 means overload, so queues form).
    pub load: f64,
    /// Admission-control bound on in-flight queries (`--inflight 4`).
    pub inflight: usize,
    /// Write the binary's headline metrics as JSON to this path
    /// (`--json bench-scaling.json`) — the machine-readable snapshot CI
    /// merges into `BENCH_PR.json` and gates against
    /// `bench/baseline.json`.
    pub json: Option<String>,
    /// Write a Chrome/Perfetto `trace_event` JSON of the (FIFO)
    /// streamed run to this path, plus a flat-JSONL sidecar next to it
    /// (`--trace bench-out/stream-trace.json`).
    pub trace: Option<String>,
    /// Write the metrics-registry snapshot as flat JSON to this path,
    /// plus a Prometheus-text sidecar next to it
    /// (`--metrics bench-out/metrics.json`).
    pub metrics: Option<String>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sf: 0.1,
            skewed: true,
            seed: 0xB1_7B17,
            threads: 4,
            shards: vec![1, 2, 4, 8],
            arrivals: 52,
            load: 2.0,
            inflight: 4,
            json: None,
            trace: None,
            metrics: None,
        }
    }
}

impl BenchConfig {
    /// Parse from `std::env::args` (unknown flags are ignored so every
    /// binary shares the same surface).
    pub fn from_args() -> Self {
        let mut cfg = BenchConfig::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--sf" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cfg.sf = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cfg.seed = v;
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cfg.threads = v;
                        i += 1;
                    }
                }
                "--shards" => {
                    if let Some(list) = args.get(i + 1) {
                        let parsed: Vec<usize> = list
                            .split(',')
                            .filter_map(|t| t.trim().parse().ok())
                            .filter(|&s| s > 0)
                            .collect();
                        if !parsed.is_empty() {
                            cfg.shards = parsed;
                            i += 1;
                        }
                    }
                }
                "--arrivals" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cfg.arrivals = v;
                        i += 1;
                    }
                }
                "--load" => {
                    if let Some(v) =
                        args.get(i + 1).and_then(|s| s.parse().ok()).filter(|v| *v > 0.0)
                    {
                        cfg.load = v;
                        i += 1;
                    }
                }
                "--inflight" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()).filter(|v| *v > 0)
                    {
                        cfg.inflight = v;
                        i += 1;
                    }
                }
                "--json" => {
                    if let Some(path) = args.get(i + 1) {
                        cfg.json = Some(path.clone());
                        i += 1;
                    }
                }
                "--trace" => {
                    if let Some(path) = args.get(i + 1) {
                        cfg.trace = Some(path.clone());
                        i += 1;
                    }
                }
                "--metrics" => {
                    if let Some(path) = args.get(i + 1) {
                        cfg.metrics = Some(path.clone());
                        i += 1;
                    }
                }
                "--uniform" => cfg.skewed = false,
                "--skewed" => cfg.skewed = true,
                _ => {}
            }
            i += 1;
        }
        cfg
    }

    /// The SSB generator parameters for this configuration.
    pub fn ssb_params(&self) -> SsbParams {
        let mut p =
            if self.skewed { SsbParams::skewed(self.sf) } else { SsbParams::uniform(self.sf) };
        p.seed = self.seed;
        p
    }
}

/// Generated data plus the (skew-adjusted) queries.
pub struct SsbSetup {
    /// Harness configuration.
    pub cfg: BenchConfig,
    /// The star-schema database.
    pub db: SsbDb,
    /// The pre-joined relation.
    pub wide: Relation,
    /// The 13 queries (constants re-picked on skewed data).
    pub queries: Vec<Query>,
}

/// Generate data and queries.
///
/// # Panics
///
/// Panics on generator/query-resolution bugs (deterministic inputs).
pub fn setup(cfg: BenchConfig) -> SsbSetup {
    let db = SsbDb::generate(&cfg.ssb_params());
    let wide = db.prejoin();
    let queries = if cfg.skewed {
        queries::adjusted_queries(&wide).expect("query adjustment")
    } else {
        queries::standard_queries()
    };
    SsbSetup { cfg, db, wide, queries }
}

/// All 13 per-query executions of one PIM mode.
pub struct PimModeRun {
    /// Which mode ran.
    pub mode: EngineMode,
    /// Executions in query order.
    pub executions: Vec<QueryExecution>,
}

/// Run every query through one PIM mode (engine constructed, calibrated
/// and dropped inside, keeping peak memory to one engine).
///
/// # Panics
///
/// Panics on engine errors (the harness runs known-good inputs).
pub fn run_pim_mode(setup: &SsbSetup, mode: EngineMode) -> PimModeRun {
    let mut engine = PimQueryEngine::new(SimConfig::default(), setup.wide.clone(), mode)
        .expect("engine construction");
    engine.calibrate(&CalibrationConfig::default()).expect("calibration");
    let executions = setup
        .queries
        .iter()
        .map(|q| engine.run(q).unwrap_or_else(|e| panic!("{} on {}: {e}", mode.label(), q.id)))
        .collect();
    PimModeRun { mode, executions }
}

/// Fit the GROUP-BY cost model once for a `(SimConfig, EngineMode)`
/// pair. The calibration is data-independent, so the returned model can
/// be installed on every cluster instance of a study
/// ([`ClusterEngine::set_model`]) instead of re-running the sweep per
/// shard count — the in-memory form of cross-instance calibration
/// reuse.
///
/// # Panics
///
/// Panics on calibration failures (the harness runs known-good
/// configurations).
pub fn fit_shared_model(cfg: &SimConfig, mode: EngineMode) -> GroupByModel {
    let (_, model) =
        run_calibration(cfg, mode, &CalibrationConfig::default()).expect("calibration");
    model
}

/// One shard count's executions in the cluster scaling study.
pub struct ClusterScalePoint {
    /// Shard count.
    pub shards: usize,
    /// Partitioning strategy label.
    pub partitioner: &'static str,
    /// Per-query cluster executions, in query order.
    pub executions: Vec<ClusterExecution>,
}

/// The optimistic (free per-module channels) wall clock of a cluster
/// execution, recomputed from its per-shard reports: host-serial
/// dispatch + max-of-shards remaining time + merge. The contended
/// model's A/B counterpart without re-running anything — answers and
/// per-shard logs are accounting-independent, so one sweep yields both
/// clocks.
pub fn optimistic_wall_ns(report: &bbpim_cluster::ClusterReport) -> f64 {
    use bbpim_sim::timeline::PhaseKind;
    let dispatch = |r: &bbpim_core::result::QueryReport| r.phases.time_in(PhaseKind::HostDispatch);
    let d_total: f64 = report.per_shard.iter().map(dispatch).sum();
    let pim_max = report.per_shard.iter().map(|r| r.time_ns - dispatch(r)).fold(0.0, f64::max);
    d_total + pim_max + report.merge_time_ns
}

/// Run every query through a `ClusterEngine` at each shard count
/// (full-capacity module per shard; engines constructed, calibrated and
/// dropped per point), cross-checking each merged answer against the
/// oracle. Wall clocks use the default shared-host-channel contention
/// model; [`optimistic_wall_ns`] recovers the free-channel A/B timing
/// from the same executions.
///
/// # Panics
///
/// Panics on engine errors or a cluster/oracle mismatch (the harness
/// runs known-good inputs).
pub fn run_cluster_scaling(
    setup: &SsbSetup,
    mode: EngineMode,
    shard_counts: &[usize],
    partitioner: &Partitioner,
) -> Vec<ClusterScalePoint> {
    // The oracle answer is shard-count independent: compute it once.
    let oracles: Vec<MultiGrouped> = setup
        .queries
        .iter()
        .map(|q| bbpim_db::stats::run_oracle(q, &setup.wide).expect("oracle"))
        .collect();
    // One calibration sweep serves every shard count.
    let model = fit_shared_model(&SimConfig::default(), mode);
    shard_counts
        .iter()
        .map(|&shards| {
            let mut cluster = ClusterEngine::new(
                SimConfig::default(),
                setup.wide.clone(),
                mode,
                shards,
                partitioner.clone(),
            )
            .expect("cluster construction");
            cluster.set_model(model.clone());
            let executions: Vec<ClusterExecution> = setup
                .queries
                .iter()
                .zip(&oracles)
                .map(|(q, oracle)| {
                    let out = cluster
                        .run(q)
                        .unwrap_or_else(|e| panic!("{shards} shards on {}: {e}", q.id));
                    assert_eq!(
                        &out.groups, oracle,
                        "cluster/oracle mismatch on {} at {shards} shards",
                        q.id
                    );
                    out
                })
                .collect();
            ClusterScalePoint { shards, partitioner: partitioner.label(), executions }
        })
        .collect()
}

/// Run every query through a normalized [`StarCluster`] at each shard
/// count — the `scaling` study's default path now that the star
/// storage model exists (the pre-joined sweep stays behind
/// `--prejoined`). Same output shape as [`run_cluster_scaling`] so the
/// two paths share the reports, and every merged answer is
/// cross-checked against the row-at-a-time oracle.
///
/// # Panics
///
/// Panics on engine errors or a cluster/oracle mismatch (the harness
/// runs known-good inputs).
pub fn run_star_scaling(
    setup: &SsbSetup,
    mode: EngineMode,
    shard_counts: &[usize],
    partitioner: &Partitioner,
) -> Vec<ClusterScalePoint> {
    let oracles: Vec<MultiGrouped> = setup
        .queries
        .iter()
        .map(|q| bbpim_db::stats::run_oracle(q, &setup.wide).expect("oracle"))
        .collect();
    shard_counts
        .iter()
        .map(|&shards| {
            let mut cluster = StarCluster::new(
                SimConfig::default(),
                &setup.db,
                mode,
                shards,
                partitioner.clone(),
            )
            .expect("star cluster construction");
            let executions: Vec<ClusterExecution> = setup
                .queries
                .iter()
                .zip(&oracles)
                .map(|(q, oracle)| {
                    let out = cluster
                        .run(q)
                        .unwrap_or_else(|e| panic!("{shards} star shards on {}: {e}", q.id));
                    assert_eq!(
                        &out.groups, oracle,
                        "star/oracle mismatch on {} at {shards} shards",
                        q.id
                    );
                    out
                })
                .collect();
            ClusterScalePoint { shards, partitioner: partitioner.label(), executions }
        })
        .collect()
}

/// Host-channel bytes one cluster execution put on the shared bus,
/// summed over the per-shard phase logs.
pub fn report_host_bytes(report: &bbpim_cluster::ClusterReport) -> u64 {
    report.per_shard.iter().map(|r| r.phases.host_bytes()).sum()
}

/// One shard count's pruned-vs-exhaustive comparison in the pruning
/// study.
pub struct PruningPoint {
    /// Shard count.
    pub shards: usize,
    /// Partitioning strategy label.
    pub partitioner: &'static str,
    /// Per-query executions with zone-map pruning on, in query order.
    pub pruned: Vec<ClusterExecution>,
    /// Per-query executions with exhaustive dispatch, in query order.
    pub exhaustive: Vec<ClusterExecution>,
}

/// Run every query through a range-partitioned `ClusterEngine` twice —
/// exhaustive dispatch vs zone-map pruning — at each shard count,
/// cross-checking both answers against the oracle.
///
/// `range_attr` is the range-partitioning attribute (SSB: `d_year`,
/// which Q1.x/Q3.x/Q4.x constrain).
///
/// # Panics
///
/// Panics on engine errors or an answer/oracle mismatch (the harness
/// runs known-good inputs).
pub fn run_pruning_study(
    setup: &SsbSetup,
    mode: EngineMode,
    shard_counts: &[usize],
    range_attr: &str,
) -> Vec<PruningPoint> {
    let partitioner = Partitioner::range_by_attr(range_attr);
    let oracles: Vec<MultiGrouped> = setup
        .queries
        .iter()
        .map(|q| bbpim_db::stats::run_oracle(q, &setup.wide).expect("oracle"))
        .collect();
    // One calibration sweep serves every shard count.
    let model = fit_shared_model(&SimConfig::default(), mode);
    shard_counts
        .iter()
        .map(|&shards| {
            let mut cluster = ClusterEngine::new(
                SimConfig::default(),
                setup.wide.clone(),
                mode,
                shards,
                partitioner.clone(),
            )
            .expect("cluster construction");
            cluster.set_model(model.clone());
            let run_all = |cluster: &mut ClusterEngine| -> Vec<ClusterExecution> {
                setup
                    .queries
                    .iter()
                    .zip(&oracles)
                    .map(|(q, oracle)| {
                        let out = cluster
                            .run(q)
                            .unwrap_or_else(|e| panic!("{shards} shards on {}: {e}", q.id));
                        assert_eq!(
                            &out.groups, oracle,
                            "cluster/oracle mismatch on {} at {shards} shards",
                            q.id
                        );
                        out
                    })
                    .collect()
            };
            cluster.set_pruning(false);
            let exhaustive = run_all(&mut cluster);
            cluster.set_pruning(true);
            let pruned = run_all(&mut cluster);
            PruningPoint { shards, partitioner: partitioner.label(), pruned, exhaustive }
        })
        .collect()
}

/// One admission policy's streamed run.
pub struct StreamingPolicyRun {
    /// The policy that ran.
    pub policy: AdmissionPolicy,
    /// The full streamed outcome (completions, timeline, utilisation).
    pub outcome: StreamOutcome,
}

/// One shard count's streaming study: a seeded open-loop arrival trace
/// played through the scheduler under each admission policy, plus the
/// closed-batch reference and the planner's `EXPLAIN` dump.
pub struct StreamingStudy {
    /// Shard count.
    pub shards: usize,
    /// Partitioning strategy label.
    pub partitioner: &'static str,
    /// Admission-control bound that ran.
    pub inflight: usize,
    /// Mean interarrival time of the trace, nanoseconds.
    pub mean_interarrival_ns: f64,
    /// Mean per-query service estimate the load was derived from.
    pub mean_service_ns: f64,
    /// The arrival trace length.
    pub arrivals: usize,
    /// Per-distinct-query plan dumps (shards/pages candidate vs
    /// pruned), in query order.
    pub explains: Vec<PlanExplain>,
    /// Closed-batch reference over the same arrived queries.
    pub batch: BatchExecution,
    /// One streamed run per admission policy.
    pub policies: Vec<StreamingPolicyRun>,
}

/// Stream a seeded Poisson trace of the 13 queries through a
/// range-partitioned cluster under every admission policy, checking
/// each streamed answer bit-identical against `run_batch` over the same
/// arrived queries. The offered load is `cfg.load` times the cluster's
/// (batch-estimated) capacity, so load > 1 forms queues.
///
/// # Panics
///
/// Panics on engine/scheduler errors or a streamed/batch answer
/// mismatch (the harness runs known-good inputs).
pub fn run_streaming_study(setup: &SsbSetup, mode: EngineMode, shards: usize) -> StreamingStudy {
    let mut trace = TraceRecorder::disabled();
    let mut reg = MetricsRegistry::new();
    run_streaming_study_observed(setup, mode, shards, &mut trace, &mut reg, "")
}

/// [`run_streaming_study`] with the observability surface threaded
/// through: the FIFO run is recorded into `trace` (host-bus grants,
/// per-module phase windows, scheduler instants — all on the simulated
/// clock) when the recorder is enabled, every policy's outcome is
/// folded into `reg` as `run=<prefix><policy>` series via
/// [`record_stream_metrics`], and the planner dumps come from
/// `EXPLAIN ANALYZE` — each distinct query runs once so recorded
/// actuals sit next to the planned shards/pages/bytes (byte totals
/// recorded as `run=<prefix>explain` series). Tracing and metrics
/// never change the simulation: outcomes are bit-identical to the
/// unobserved path.
///
/// # Panics
///
/// Same as [`run_streaming_study`].
pub fn run_streaming_study_observed(
    setup: &SsbSetup,
    mode: EngineMode,
    shards: usize,
    trace: &mut TraceRecorder,
    reg: &mut MetricsRegistry,
    run_prefix: &str,
) -> StreamingStudy {
    let partitioner = Partitioner::range_by_attr("d_year");
    let mut cluster = ClusterEngine::new(
        SimConfig::default(),
        setup.wide.clone(),
        mode,
        shards,
        partitioner.clone(),
    )
    .expect("cluster construction");
    cluster.set_model(fit_shared_model(&SimConfig::default(), mode));

    // Offered load is expressed relative to capacity: estimate the mean
    // per-query service time from a closed batch of the 13 queries.
    let probe = cluster.run_batch(&setup.queries).expect("capacity probe");
    let mean_service_ns = probe.serial_time_ns / setup.queries.len() as f64;
    let mean_interarrival_ns = mean_service_ns / setup.cfg.load;
    let workload = Workload::poisson(
        setup.queries.clone(),
        setup.cfg.arrivals,
        mean_interarrival_ns,
        setup.cfg.seed,
    );

    let explain_run = format!("{run_prefix}explain");
    let explains: Vec<PlanExplain> = setup
        .queries
        .iter()
        .map(|q| {
            let (plan, _) = cluster.explain_analyze(q).expect("explain analyze");
            bbpim_cluster::obs::record_explain_analyze(reg, &plan, &[("run", &explain_run)]);
            plan
        })
        .collect();
    let batch = cluster.run_batch(&workload.arrived_queries()).expect("batch reference");
    let policies = AdmissionPolicy::all()
        .iter()
        .map(|&policy| {
            let cfg =
                SchedConfig { max_in_flight: setup.cfg.inflight, policy, ..SchedConfig::default() };
            // One policy per trace: the FIFO run owns the recorder so
            // the exported timeline is a single coherent schedule.
            let outcome = if policy.label() == "fifo" {
                run_stream_traced(&mut cluster, &workload, &cfg, trace)
            } else {
                run_stream(&mut cluster, &workload, &cfg)
            }
            .expect("streamed run");
            assert_eq!(outcome.executions.len(), batch.executions.len());
            for (streamed, batched) in outcome.executions.iter().zip(&batch.executions) {
                assert_eq!(
                    streamed.groups,
                    batched.groups,
                    "streamed/batch mismatch on {} under {}",
                    streamed.report.query_id,
                    policy.label()
                );
            }
            let run = format!("{run_prefix}{}", policy.label());
            record_stream_metrics(reg, &outcome, &[("run", &run)]);
            StreamingPolicyRun { policy, outcome }
        })
        .collect();
    StreamingStudy {
        shards,
        partitioner: partitioner.label(),
        inflight: setup.cfg.inflight,
        mean_interarrival_ns,
        mean_service_ns,
        arrivals: workload.len(),
        explains,
        batch,
        policies,
    }
}

/// One HTAP study row: a streamed workload (pure-query baseline or
/// mixed query/mutation ingest) with its snapshot-consistency verdict.
pub struct HtapRow {
    /// Row label (`pure-query`, `htap`).
    pub label: &'static str,
    /// Mutation share of the arrival trace.
    pub mutation_frac: f64,
    /// The streamed outcome (query + mutation completions, wear).
    pub outcome: StreamOutcome,
    /// Did every streamed answer equal its prefix-replay oracle?
    pub snapshot_consistent: bool,
    /// Records landed by the row's admitted mutations.
    pub records_written: u64,
}

/// The HTAP streaming-ingest study: the same seeded query pressure with
/// and without a mutation stream riding the scheduler, plus the
/// per-workload endurance wear series the `htap` bin tabulates.
pub struct HtapStudy {
    /// Shard count.
    pub shards: usize,
    /// Partitioning strategy label.
    pub partitioner: &'static str,
    /// Mean interarrival of the baseline row, nanoseconds.
    pub mean_interarrival_ns: f64,
    /// Mean per-query service estimate the load was derived from.
    pub mean_service_ns: f64,
    /// Arrival-trace length per row.
    pub arrivals: usize,
    /// The ingest-buffer depth both rows ran under.
    pub ingest_buffer: usize,
    /// Baseline row first, ingest row second.
    pub rows: Vec<HtapRow>,
}

impl HtapStudy {
    /// The row labelled `label`.
    ///
    /// # Panics
    ///
    /// Panics when no such row ran.
    pub fn row(&self, label: &str) -> &HtapRow {
        self.rows.iter().find(|r| r.label == label).expect("study row")
    }

    /// The gate headline: baseline query p95 over under-ingest query
    /// p95 (1.0 = ingest is free; lower = queries pay more; higher is
    /// better, like every gated ratio).
    pub fn query_p95_under_ingest(&self) -> f64 {
        let base = self.row("pure-query").outcome.latency_summary().p95_ns;
        let htap = self.row("htap").outcome.latency_summary().p95_ns;
        if htap > 0.0 {
            base / htap
        } else {
            1.0
        }
    }

    /// The per-workload endurance wear series: one entry per (row,
    /// lane) with accumulated worst-row cell writes and the required
    /// cell endurance to sustain that lane's worst chain for ten years.
    /// This is the `htap` bin's wear table and the series the pinning
    /// unit test locks to the stream outcome.
    pub fn endurance_rows(&self) -> Vec<(&'static str, usize, u64, f64)> {
        self.rows
            .iter()
            .flat_map(|r| {
                r.outcome
                    .shard_cell_writes
                    .iter()
                    .zip(&r.outcome.shard_required_endurance)
                    .enumerate()
                    .map(move |(lane, (&writes, &endurance))| (r.label, lane, writes, endurance))
            })
            .collect()
    }
}

/// The mutation set the HTAP study streams against the pre-joined
/// relation: a point UPDATE, an OR-filtered (DNF) UPDATE that
/// exercises zone-map widening, and an INSERT replaying an existing
/// (already-encoded) row. The UPDATEs rewrite `lo_tax` — an attribute
/// no SSB query filters or aggregates — so their write phases load the
/// bus and wear cells without reshaping the value distributions the
/// zone-map planner prunes on: the gate headline then measures ingest
/// *interference*, not a data-distribution shift. (Answer-changing
/// mutations are the ingest equivalence suite's job; the INSERT here
/// still moves every aggregate so prefix-replay stays a real check.)
///
/// # Panics
///
/// Panics if the wide schema stops carrying the SSB attribute names.
pub fn htap_mutations(wide: &Relation) -> Vec<bbpim_core::mutation::Mutation> {
    use bbpim_core::mutation::Mutation;
    use bbpim_db::builder::col;
    vec![
        Mutation::update()
            .filter(col("d_year").eq(1993u64))
            .set("lo_tax", 2u64)
            .build(wide.schema())
            .expect("point update"),
        Mutation::update()
            .filter(col("d_year").eq(1994u64).or(col("d_year").eq(1995u64)))
            .set("lo_tax", 3u64)
            .build(wide.schema())
            .expect("DNF update"),
        Mutation::insert().row(wide.row(0)).build(wide.schema()).expect("insert"),
    ]
}

/// Stream the HTAP study: a pure-query baseline row at the configured
/// load, then the *same* seeded query trace with a second Poisson
/// mutation stream overlaid at half the query rate (one in three
/// events is a mutation), both FIFO on a range-partitioned cluster.
/// Holding the query arrivals fixed makes the p95 comparison measure
/// ingest interference alone — the gate headline is not polluted by a
/// re-drawn query mix. Every query answer in both rows is verified
/// bit-identical against a prefix-replay oracle (a fresh cluster that
/// applies exactly the first [`bbpim_sched::QueryCompletion::epoch`]
/// arrived mutations and then runs the query); the verdict rides the
/// row instead of panicking so the snapshot can gate it as an absolute
/// floor. Both rows' outcomes are folded into `reg` (`run=pure` /
/// `run=htap`) and the ingest row is recorded into `trace` when
/// enabled.
///
/// # Panics
///
/// Panics on engine/scheduler errors (the harness runs known-good
/// inputs).
pub fn run_htap_study_observed(
    setup: &SsbSetup,
    mode: EngineMode,
    shards: usize,
    trace: &mut TraceRecorder,
    reg: &mut MetricsRegistry,
) -> HtapStudy {
    let partitioner = Partitioner::range_by_attr("d_year");
    let model = fit_shared_model(&SimConfig::default(), mode);
    let fresh = || {
        let mut c = ClusterEngine::new(
            SimConfig::default(),
            setup.wide.clone(),
            mode,
            shards,
            partitioner.clone(),
        )
        .expect("cluster construction");
        c.set_model(model.clone());
        c
    };
    let mut cluster = fresh();
    let probe = cluster.run_batch(&setup.queries).expect("capacity probe");
    let mean_service_ns = probe.serial_time_ns / setup.queries.len() as f64;
    let mean_interarrival_ns = mean_service_ns / setup.cfg.load;
    let mutations = htap_mutations(&setup.wide);
    let sched = SchedConfig { max_in_flight: setup.cfg.inflight, ..SchedConfig::default() };

    // One query trace shared by both rows; the ingest row overlays a
    // seeded Poisson mutation stream at half the query rate, clipped to
    // the query trace's horizon so both rows finish on the same work.
    let base = Workload::poisson(
        setup.queries.clone(),
        setup.cfg.arrivals,
        mean_interarrival_ns,
        setup.cfg.seed,
    );
    let horizon_ns = base.arrivals().last().map_or(0.0, |a| a.at_ns);
    let mutation_arrivals = {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(setup.cfg.seed ^ 0x117A9);
        let mean = mean_interarrival_ns * 2.0;
        let mut t = 0.0f64;
        let mut out = Vec::new();
        loop {
            let u: f64 = rng.gen();
            t += -mean * (1.0 - u).ln();
            if t > horizon_ns {
                break out;
            }
            out.push(MutationArrival { at_ns: t, mutation: rng.gen_range(0..mutations.len()) });
        }
    };

    let specs: [(&'static str, bool); 2] = [("pure-query", false), ("htap", true)];
    let rows = specs
        .iter()
        .map(|&(label, with_ingest)| {
            let workload = Workload::with_mutations(
                setup.queries.clone(),
                base.arrivals().to_vec(),
                mutations.clone(),
                if with_ingest { mutation_arrivals.clone() } else { Vec::new() },
            )
            .expect("workload");
            let mutation_frac = if with_ingest {
                mutation_arrivals.len() as f64
                    / (mutation_arrivals.len() + base.arrivals().len()) as f64
            } else {
                0.0
            };
            let mut c = fresh();
            let outcome = if label == "htap" {
                run_stream_traced(&mut c, &workload, &sched, trace)
            } else {
                run_stream(&mut c, &workload, &sched)
            }
            .expect("streamed run");
            // prefix-replay oracle, completions walked in epoch order so
            // one replay cluster serves the row
            let arrived = workload.arrived_mutations();
            let mut replay = fresh();
            let mut applied = 0usize;
            let mut by_epoch: Vec<_> = outcome.completions.iter().collect();
            by_epoch.sort_by_key(|c| c.epoch);
            let snapshot_consistent = by_epoch.iter().all(|qc| {
                while applied < qc.epoch {
                    replay.mutate(&arrived[applied]).expect("replay mutate");
                    applied += 1;
                }
                let q = &workload.queries()[workload.arrivals()[qc.arrival].query];
                replay.run(q).expect("replay query").groups == outcome.executions[qc.arrival].groups
            });
            let records_written = outcome
                .mutation_completions
                .iter()
                .map(|m| m.records_updated + m.records_inserted)
                .sum();
            record_stream_metrics(
                reg,
                &outcome,
                &[("run", if label == "htap" { "htap" } else { "pure" })],
            );
            HtapRow { label, mutation_frac, outcome, snapshot_consistent, records_written }
        })
        .collect();
    HtapStudy {
        shards,
        partitioner: partitioner.label(),
        mean_interarrival_ns,
        mean_service_ns,
        arrivals: setup.cfg.arrivals,
        ingest_buffer: sched.ingest_buffer,
        rows,
    }
}

/// The multi-aggregate sharing headline: energy of one 3-aggregate
/// reporting query (SUM + COUNT + AVG over the Q1.1 filter) versus the
/// three single-aggregate runs it replaces, on a cluster at `shards`
/// shards. The combined query computes its filter mask once and shares
/// it across the SELECT list, so the ratio (`Σ singles / combined`)
/// sits well above 1 — the regression gate watches it.
///
/// # Panics
///
/// Panics on engine errors or a combined/singles answer mismatch (the
/// harness runs known-good inputs).
pub fn run_multi_agg_saving(setup: &SsbSetup, mode: EngineMode, shards: usize) -> f64 {
    use bbpim_db::plan::{AggExpr, SelectItem};
    let base = &setup.queries[0]; // Q1.1 (constants re-picked on skewed data)
    let schema = setup.wide.schema();
    let revenue = || AggExpr::mul("lo_extendedprice", "lo_discount");
    let combined = Query::select([
        SelectItem::sum("revenue", revenue()),
        SelectItem::count("orders"),
        SelectItem::avg("avg_revenue", revenue()),
    ])
    .id("q1-3agg")
    .filter(base.filter.clone())
    .build(schema)
    .expect("combined query");
    let singles: Vec<Query> = [
        SelectItem::sum("revenue", revenue()),
        SelectItem::count("orders"),
        SelectItem::avg("avg_revenue", revenue()),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, item)| {
        Query::select([item])
            .id(format!("q1-single{i}"))
            .filter(base.filter.clone())
            .build(schema)
            .expect("single-aggregate query")
    })
    .collect();

    let mut cluster = ClusterEngine::new(
        SimConfig::default(),
        setup.wide.clone(),
        mode,
        shards,
        Partitioner::RoundRobin,
    )
    .expect("cluster construction");
    let combined_exec = cluster.run(&combined).expect("combined run");
    let mut singles_energy = 0.0;
    for (i, q) in singles.iter().enumerate() {
        let e = cluster.run(q).expect("single run");
        let row = |m: &bbpim_db::stats::MultiGrouped| m.get(&Vec::new()).map(|v| v[0]);
        assert_eq!(
            row(&e.groups),
            combined_exec.groups.get(&Vec::new()).map(|v| v[i]),
            "combined column {i} must equal its dedicated run"
        );
        singles_energy += e.report.energy_pj;
    }
    if combined_exec.report.energy_pj <= 0.0 {
        return 1.0;
    }
    singles_energy / combined_exec.report.energy_pj
}

/// One serve-study row: the three-tenant mix at one overload under one
/// window policy.
pub struct ServeStudyRow {
    /// The heavy tenant's offered load as a multiple of capacity.
    pub overload: f64,
    /// `"aimd"` or `"static<w>"`.
    pub policy: String,
    /// The tenant mix that ran.
    pub tenants: Vec<TenantSpec>,
    /// The full serve outcome.
    pub outcome: ServeOutcome,
    /// Per-tenant summaries, in tenant order.
    pub reports: Vec<TenantReport>,
}

impl ServeStudyRow {
    /// The named tenant's report.
    ///
    /// # Panics
    ///
    /// Panics when no tenant carries `name` (a study wiring bug).
    pub fn report(&self, name: &str) -> &TenantReport {
        self.reports.iter().find(|r| r.name == name).expect("tenant report by name")
    }
}

/// The serve study: the three-tenant mix swept over overload multiples
/// under the AIMD window, plus a static-window sweep at the gate
/// overload for the adaptive-vs-fixed comparison.
pub struct ServeStudy {
    /// Shard count.
    pub shards: usize,
    /// Batch-estimated mean per-query service time, nanoseconds.
    pub mean_service_ns: f64,
    /// The overload at which the static sweep ran and headlines gate.
    pub gate_overload: f64,
    /// All rows, AIMD first per overload.
    pub rows: Vec<ServeStudyRow>,
}

impl ServeStudy {
    /// The row for one `(overload, policy)` pair.
    pub fn row(&self, overload: f64, policy: &str) -> Option<&ServeStudyRow> {
        self.rows.iter().find(|r| (r.overload - overload).abs() < 1e-9 && r.policy == policy)
    }

    /// The AIMD row at the gate overload — where the headlines and the
    /// CI gate read from.
    ///
    /// # Panics
    ///
    /// Panics when the study was run without the gate overload.
    pub fn gate_row(&self) -> &ServeStudyRow {
        self.row(self.gate_overload, "aimd").expect("aimd row at the gate overload")
    }

    /// The best heavy-tenant goodput any *SLO-respecting* static window
    /// achieved at the gate overload (windows that blow the light
    /// tenant's p95 promise are not an alternative an operator could
    /// ship). `None` when no static window qualifies.
    pub fn best_static_heavy_goodput(&self) -> Option<(String, f64)> {
        self.rows
            .iter()
            .filter(|r| {
                (r.overload - self.gate_overload).abs() < 1e-9
                    && r.policy.starts_with("static")
                    && r.report("light").slo_met
            })
            .map(|r| (r.policy.clone(), r.report("heavy").goodput_qps))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// The serve study's AIMD parameters: start at the legacy `--inflight`
/// knob, float in [1, 32] on 8-completion windows.
pub fn serve_aimd_config(inflight: usize) -> AimdConfig {
    AimdConfig {
        initial_window: inflight.clamp(1, 32),
        min_window: 1,
        max_window: 32,
        sample_window: 8,
        ..Default::default()
    }
}

/// Index sets into `setup.queries` for the serve mix's tenants, chosen
/// by per-query demand at the default scale: `LIGHT` are the cheapest
/// zone-map-pruned probes (~10 µs busy), `HEAVY` the most expensive
/// scans (the two single-shard year-range scans plus the widest join
/// probe, ~75–145 µs busy), `BATCH` two mid-cost queries.
const LIGHT_QUERIES: &[usize] = &[2, 9, 11];
const HEAVY_QUERIES: &[usize] = &[0, 1, 6];
const BATCH_QUERIES: &[usize] = &[4, 8];

/// Mean resolved busy time over one tenant's query indices.
fn mean_busy_ns(per_query_busy_ns: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| per_query_busy_ns[i]).sum::<f64>() / idx.len() as f64
}

/// The three-tenant serve mix at one overload multiple, calibrated from
/// `per_query_busy_ns` (resolved demand per `setup.queries` entry):
///
/// * `light` — cheap selective probes at ~25% of their own serial
///   footprint, double weight, a tight p95 promise (the interactive
///   tenant the SLO protects);
/// * `heavy` — the most expensive scans offered at `overload`× their
///   serial footprint behind a 2.5×-footprint token bucket, each
///   request carrying a deadline (the bulk tenant goodput measures);
/// * `batch` — two closed-loop think-time clients with a loose promise
///   (offered load that reacts to latency).
pub fn serve_tenant_mix(
    setup: &SsbSetup,
    per_query_busy_ns: &[f64],
    overload: f64,
) -> Vec<TenantSpec> {
    let pick = |idx: &[usize]| idx.iter().map(|&i| setup.queries[i].clone()).collect::<Vec<_>>();
    let light_ns = mean_busy_ns(per_query_busy_ns, LIGHT_QUERIES);
    let heavy_ns = mean_busy_ns(per_query_busy_ns, HEAVY_QUERIES);
    let batch_ns = mean_busy_ns(per_query_busy_ns, BATCH_QUERIES);
    vec![
        TenantSpec {
            name: "light".into(),
            queries: pick(LIGHT_QUERIES),
            process: ArrivalProcess::OpenPoisson {
                arrivals: setup.cfg.arrivals,
                mean_interarrival_ns: 4.0 * light_ns,
            },
            writes: None,
            rate_limit: None,
            slo: SloSpec { p95_target_ns: 35.0 * light_ns, deadline_ns: None },
            weight: 2.0,
        },
        TenantSpec {
            name: "heavy".into(),
            queries: pick(HEAVY_QUERIES),
            process: ArrivalProcess::OpenPoisson {
                arrivals: setup.cfg.arrivals,
                mean_interarrival_ns: heavy_ns / overload,
            },
            writes: None,
            rate_limit: Some(RateLimit { rate_per_s: 2.5e9 / heavy_ns, burst: 8.0 }),
            slo: SloSpec { p95_target_ns: 50.0 * heavy_ns, deadline_ns: Some(30.0 * heavy_ns) },
            weight: 1.0,
        },
        TenantSpec {
            name: "batch".into(),
            queries: pick(BATCH_QUERIES),
            process: ArrivalProcess::Closed {
                clients: 2,
                queries_per_client: 3,
                mean_think_ns: 2.0 * batch_ns,
            },
            writes: None,
            rate_limit: None,
            slo: SloSpec { p95_target_ns: 100.0 * batch_ns, deadline_ns: None },
            weight: 1.0,
        },
    ]
}

/// Run the serve study: the three-tenant mix at each overload under the
/// AIMD window, plus every `static_windows` entry at `gate_overload`.
/// Every completion's answer is checked bit-identical against
/// `run_batch` over the tenant query set; the AIMD gate row is recorded
/// into `trace` when the recorder is enabled, and every row folds its
/// per-tenant series into `reg` as `run=x<overload>-<policy>`.
///
/// # Panics
///
/// Panics on engine/serve errors or a served/batch answer mismatch
/// (the harness runs known-good inputs).
#[allow(clippy::too_many_arguments)]
pub fn run_serve_study_observed(
    setup: &SsbSetup,
    mode: EngineMode,
    shards: usize,
    overloads: &[f64],
    gate_overload: f64,
    static_windows: &[usize],
    trace: &mut TraceRecorder,
    reg: &mut MetricsRegistry,
) -> ServeStudy {
    let partitioner = Partitioner::range_by_attr("d_year");
    let mut cluster =
        ClusterEngine::new(SimConfig::default(), setup.wide.clone(), mode, shards, partitioner)
            .expect("cluster construction");
    cluster.set_model(fit_shared_model(&SimConfig::default(), mode));
    let probe = cluster.run_batch(&setup.queries).expect("capacity probe");
    let mean_service_ns = probe.serial_time_ns / setup.queries.len() as f64;
    // Per-query resolved busy time calibrates each tenant's arrival
    // rate and promise against its own query set, not the global mean.
    let per_query_busy_ns: Vec<f64> = setup
        .queries
        .iter()
        .map(|q| {
            let (d, _) = resolve_query_demand(&mut cluster, q, false).expect("demand probe");
            d.total_busy_ns()
        })
        .collect();

    // The batch oracle over the tenant query set, once: the mix's
    // queries are overload-independent, only arrival shapes change.
    let distinct: Vec<Query> = serve_tenant_mix(setup, &per_query_busy_ns, 1.0)
        .iter()
        .flat_map(|t| t.queries.clone())
        .collect();
    let oracle = cluster.run_batch(&distinct).expect("serve oracle");
    let by_id: BTreeMap<&str, &ClusterExecution> =
        distinct.iter().map(|q| q.id.as_str()).zip(oracle.executions.iter()).collect();

    let mut rows = Vec::new();
    for &overload in overloads {
        let at_gate = (overload - gate_overload).abs() < 1e-9;
        let tenants = serve_tenant_mix(setup, &per_query_busy_ns, overload);
        let mut policies = vec![WindowPolicy::Aimd(serve_aimd_config(setup.cfg.inflight))];
        if at_gate {
            policies.extend(static_windows.iter().map(|&w| WindowPolicy::Static(w)));
        }
        for window in policies {
            let policy = match &window {
                WindowPolicy::Aimd(_) => "aimd".to_string(),
                WindowPolicy::Static(w) => format!("static{w}"),
            };
            let cfg = ServeConfig { seed: setup.cfg.seed, window };
            // The gate row owns the recorder: one coherent timeline.
            let outcome = if at_gate && policy == "aimd" {
                run_serve_traced(&mut cluster, &tenants, &cfg, trace)
            } else {
                run_serve(&mut cluster, &tenants, &cfg)
            }
            .expect("serve session");
            for (c, e) in outcome.completions.iter().zip(&outcome.executions) {
                let want = by_id[c.query_id.as_str()];
                assert_eq!(
                    e.groups, want.groups,
                    "served/batch mismatch on {} ({policy} at {overload}x)",
                    c.query_id
                );
            }
            let run = format!("x{overload:.0}-{policy}");
            record_serve_metrics(reg, &tenants, &outcome, &[("run", &run)]);
            let reports = tenant_reports(&tenants, &outcome);
            rows.push(ServeStudyRow {
                overload,
                policy,
                tenants: tenants.clone(),
                outcome,
                reports,
            });
        }
    }
    ServeStudy { shards, mean_service_ns, gate_overload, rows }
}

/// Write one binary's headline metrics as a single-section JSON
/// snapshot: `{"<section>": {"<key>": <value>, …}}`. The `bench_gate`
/// binary merges these per-bin files into `BENCH_PR.json` and gates
/// the headline ratios against `bench/baseline.json`.
///
/// # Panics
///
/// Panics on filesystem failures (CI surfaces them as job errors).
pub fn write_snapshot(path: &str, section: &str, entries: &[(&str, f64)]) {
    let body: Vec<String> = entries.iter().map(|(k, v)| format!("    \"{k}\": {v:.6}")).collect();
    let json = format!("{{\n  \"{section}\": {{\n{}\n  }}\n}}\n", body.join(",\n"));
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("snapshot directory");
        }
    }
    std::fs::write(path, json).expect("snapshot write");
    println!("\nwrote {section} snapshot to {path}");
}

/// One baseline measurement.
pub struct MonetRun {
    /// `mnt_join` or `mnt_reg`.
    pub label: &'static str,
    /// Per-query wall time and groups, in query order.
    pub results: Vec<(Duration, MultiGrouped)>,
}

/// Run every query through one baseline configuration, `repeats` times,
/// keeping the fastest wall time (warm caches, as a DBMS benchmark
/// would).
///
/// # Panics
///
/// Panics on resolution errors.
pub fn run_monet(setup: &SsbSetup, prejoined: bool, repeats: usize) -> MonetRun {
    let engine = if prejoined {
        MonetEngine::prejoined(&setup.wide, setup.cfg.threads)
    } else {
        MonetEngine::star(&setup.db, setup.cfg.threads)
    };
    let results = setup
        .queries
        .iter()
        .map(|q| {
            let mut best: Option<(Duration, MultiGrouped)> = None;
            for _ in 0..repeats.max(1) {
                let r = engine.run(q).expect("baseline run");
                if best.as_ref().map(|(d, _)| r.wall < *d).unwrap_or(true) {
                    best = Some((r.wall, r.groups));
                }
            }
            best.expect("at least one repeat")
        })
        .collect();
    MonetRun { label: engine.label(), results }
}

/// Run all three PIM modes (sequentially, bounding peak memory).
///
/// # Panics
///
/// Panics on engine errors.
pub fn pim_runs(setup: &SsbSetup) -> Vec<PimModeRun> {
    EngineMode::all().iter().map(|m| run_pim_mode(setup, *m)).collect()
}

/// Check that every system produced identical answers per query.
/// Returns the list of mismatching query ids (empty = all agree).
pub fn cross_validate(
    queries: &[Query],
    pim_runs: &[&PimModeRun],
    monet_runs: &[&MonetRun],
) -> Vec<String> {
    let mut bad = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let reference = &pim_runs
            .first()
            .map(|r| r.executions[i].groups.clone())
            .or_else(|| monet_runs.first().map(|r| r.results[i].1.clone()))
            .expect("at least one system");
        let pim_ok = pim_runs.iter().all(|r| &r.executions[i].groups == reference);
        let mnt_ok = monet_runs.iter().all(|r| &r.results[i].1 == reference);
        if !(pim_ok && mnt_ok) {
            bad.push(q.id.clone());
        }
    }
    bad
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    assert!(values.iter().all(|v| *v > 0.0), "geomean needs positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Geometric mean over the finite, positive entries of `values`,
/// plus how many entries were skipped (zero, negative, NaN or
/// infinite — e.g. ratios of planner-answered queries whose simulated
/// time is 0). `None` when nothing survives. Reports print the skip
/// count as a footnote instead of silently rendering `NaN`.
pub fn geomean_filtered(values: &[f64]) -> (Option<f64>, usize) {
    let kept: Vec<f64> = values.iter().copied().filter(|v| v.is_finite() && *v > 0.0).collect();
    let skipped = values.len() - kept.len();
    if kept.is_empty() {
        (None, skipped)
    } else {
        (Some(geomean(&kept)), skipped)
    }
}

/// Render a [`geomean_filtered`] result: `"7.46x"`, `"7.46x*"` (rows
/// skipped — pair with a footnote), or `"n/a"`.
pub fn fmt_geomean(values: &[f64]) -> String {
    match geomean_filtered(values) {
        (None, _) => "n/a".into(),
        (Some(m), 0) => format!("{m:.2}x"),
        (Some(m), _) => format!("{m:.2}x*"),
    }
}

/// Fixed-width table printer for the figure binaries.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Pretty nanoseconds (ms with 3 decimals).
pub fn fmt_ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

/// Speedups of `base` over `other` per query, as positive ratios.
pub fn speedups(base_ns: &[f64], other_ns: &[f64]) -> Vec<f64> {
    base_ns.iter().zip(other_ns).map(|(b, o)| o / b).collect()
}

/// Map query id → value for report assembly.
pub fn by_query<T: Clone>(queries: &[Query], values: &[T]) -> BTreeMap<String, T> {
    queries.iter().map(|q| q.id.clone()).zip(values.iter().cloned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the htap bin's per-workload endurance wear table to the
    /// stream outcomes it projects: every (row, lane) entry must equal
    /// the scheduler's accumulated cell writes and 10-year required
    /// endurance for that lane, the ingest row must wear strictly more
    /// than the pure-query baseline, and both rows must answer from
    /// consistent snapshots — the series a dashboard reads is the
    /// series the wear model computed, not a re-derivation.
    #[test]
    fn htap_endurance_table_pins_the_wear_series() {
        let s = setup(BenchConfig {
            sf: 0.002,
            skewed: false,
            arrivals: 12,
            shards: vec![2],
            ..BenchConfig::default()
        });
        let mut trace = TraceRecorder::disabled();
        let mut reg = MetricsRegistry::new();
        let study = run_htap_study_observed(&s, EngineMode::OneXb, 2, &mut trace, &mut reg);
        assert_eq!(study.rows.len(), 2);
        let wear = study.endurance_rows();
        for r in &study.rows {
            assert!(r.snapshot_consistent, "{} row lost snapshot consistency", r.label);
            assert_eq!(r.outcome.shard_cell_writes.len(), study.shards);
            for (lane, (&writes, &endurance)) in r
                .outcome
                .shard_cell_writes
                .iter()
                .zip(&r.outcome.shard_required_endurance)
                .enumerate()
            {
                assert!(
                    wear.contains(&(r.label, lane, writes, endurance)),
                    "wear table dropped ({}, lane {lane})",
                    r.label
                );
            }
        }
        assert_eq!(wear.len(), 2 * study.shards, "one wear entry per (row, lane)");
        let total = |label: &str| study.row(label).outcome.shard_cell_writes.iter().sum::<u64>();
        assert!(study.row("htap").records_written > 0, "the ingest row must land records");
        assert!(
            total("htap") > total("pure-query"),
            "ingest must wear cells beyond the query-only baseline"
        );
        assert!(study.query_p95_under_ingest() > 0.0);
        // and the registry carries the ingest series for the htap run only
        assert!(reg
            .counter(bbpim_sched::obs::INGEST_COMPLETIONS, &[("run", "htap")])
            .is_some_and(|v| v > 0.0));
        assert!(reg.counter(bbpim_sched::obs::INGEST_COMPLETIONS, &[("run", "pure")]).is_none());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[0.0, 1.0]);
    }

    #[test]
    fn config_defaults() {
        let c = BenchConfig::default();
        assert!(c.skewed);
        assert!((c.sf - 0.1).abs() < 1e-12);
        assert_eq!(c.threads, 4);
        assert_eq!(c.shards, vec![1, 2, 4, 8]);
    }

    #[test]
    fn shard_list_parsing() {
        let parsed: Vec<usize> =
            "1, 4,8".split(',').filter_map(|t| t.trim().parse().ok()).collect();
        assert_eq!(parsed, vec![1, 4, 8]);
        let empty: Vec<usize> = "x,y".split(',').filter_map(|t| t.trim().parse().ok()).collect();
        assert!(empty.is_empty()); // bad lists keep the default
    }

    #[test]
    fn speedup_orientation() {
        // base twice as fast as other → speedup 2
        let s = speedups(&[1.0], &[2.0]);
        assert!((s[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_end_to_end_smoke() {
        let cfg = BenchConfig { sf: 0.001, skewed: false, ..BenchConfig::default() };
        let s = setup(cfg);
        assert_eq!(s.queries.len(), 13);
        let mnt = run_monet(&s, true, 1);
        assert_eq!(mnt.results.len(), 13);
    }
}
