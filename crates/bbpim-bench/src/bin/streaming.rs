//! Streaming scheduler study: a seeded open-loop arrival trace over the
//! 13 SSB queries played through `bbpim-sched` on a range-partitioned
//! cluster, once per admission policy (FIFO vs
//! shortest-candidate-set-first).
//!
//! Reports the planner's `EXPLAIN ANALYZE` statistics (planned
//! shards/pages next to recorded actuals), then per-policy
//! p50/p95/p99/mean latency, queue wait, throughput, host/shard
//! utilisation, and the out-of-order completion count. Every streamed
//! answer is checked bit-identical against `run_batch` over the same
//! arrived queries — the scheduler changes *when*, never *what*.
//!
//! Flags: `--sf`, `--seed`, `--uniform`, `--shards 8` (the largest
//! listed count runs), `--arrivals 52`, `--load 2.0`, `--inflight 4`,
//! plus the observability outputs — `--trace <path>` writes a
//! Chrome/Perfetto `trace_event` JSON of the default-load FIFO run
//! (one track per module, one for the host bus, one for the
//! scheduler) with a flat-JSONL sidecar, and `--metrics <path>` writes
//! the metrics-registry snapshot (flat JSON) with a Prometheus-text
//! sidecar (see `bbpim_bench::BenchConfig`).
//!
//! Two rows run: the configured load on the one-crossbar layout, and a
//! **high-contention** row at 4× that load with a 4×-deeper in-flight
//! window on the two-crossbar layout — the mask-transfer-heavy shape
//! whose host-bus pressure the byte-diet levers exist to relieve. The
//! default row leaves the shared channel mostly idle (utilisation
//! ~0.15 in the PR-5 baseline), so only the high-contention row
//! exercises the saturated regime the contention model is for; its
//! utilisation is snapshotted and gated. Both rows label their metric
//! series by policy (`run=fifo` … `run=hi-scsf`), and the `--json`
//! snapshot numbers are read back out of the registry — the gate and
//! the observability surface see the same values by construction.

use bbpim_bench::{reports, run_streaming_study_observed, setup, BenchConfig, SsbSetup};
use bbpim_core::modes::EngineMode;
use bbpim_sched::obs::{HOST_UTILISATION, LATENCY_NS};
use bbpim_trace::export::{jsonl, perfetto_json};
use bbpim_trace::{MetricsRegistry, TraceRecorder};

/// Write `body` to `path`, creating parent directories as needed.
fn write_out(path: &str, body: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("output directory");
        }
    }
    std::fs::write(path, body).expect("output write");
}

/// `path` with its extension replaced by `ext` (the sidecar naming).
fn sibling(path: &str, ext: &str) -> String {
    std::path::Path::new(path).with_extension(ext).to_string_lossy().into_owned()
}

fn main() {
    let s = setup(BenchConfig::from_args());
    let shards = s.cfg.shards.iter().copied().max().unwrap_or(8);
    let mut trace =
        if s.cfg.trace.is_some() { TraceRecorder::enabled() } else { TraceRecorder::disabled() };
    let mut reg = MetricsRegistry::new();
    let study =
        run_streaming_study_observed(&s, EngineMode::OneXb, shards, &mut trace, &mut reg, "");
    reports::print_explain(&s, &study.explains);
    reports::print_streaming(&s, &study);

    // High-contention row: same data and trace shape, 4× the offered
    // load and in-flight window, two-xb layout (per-disjunct mask
    // transfers ride the bus).
    let hi = SsbSetup {
        cfg: BenchConfig {
            load: s.cfg.load * 4.0,
            inflight: (s.cfg.inflight * 4).max(16),
            ..s.cfg.clone()
        },
        db: s.db.clone(),
        wide: s.wide.clone(),
        queries: s.queries.clone(),
    };
    println!(
        "\n== high-contention row: load {:.1}x capacity, {} in flight, two-xb ==",
        hi.cfg.load, hi.cfg.inflight
    );
    let mut no_trace = TraceRecorder::disabled();
    let hi_study = run_streaming_study_observed(
        &hi,
        EngineMode::TwoXb,
        shards,
        &mut no_trace,
        &mut reg,
        "hi-",
    );
    reports::print_streaming(&hi, &hi_study);

    if let Some(path) = &s.cfg.trace {
        write_out(path, &perfetto_json(&trace));
        let flat = sibling(path, "jsonl");
        write_out(&flat, &jsonl(&trace));
        println!("\nwrote Perfetto trace to {path} ({} events; flat JSONL: {flat})", trace.len());
    }
    if let Some(path) = &s.cfg.metrics {
        write_out(path, &reg.snapshot_json());
        let prom = sibling(path, "prom");
        write_out(&prom, &reg.prometheus_text());
        println!("\nwrote metrics snapshot to {path} (Prometheus text: {prom})");
    }

    // Machine-readable snapshot for the CI regression gate: the
    // admission-policy headline (FIFO p50 over SCSF p50 — how much the
    // candidate-set-size heuristic buys) plus bus pressure, all read
    // back out of the metrics registry.
    if let Some(path) = &s.cfg.json {
        let gauge = |name: &str, run: &str| {
            reg.gauge(name, &[("run", run)])
                .unwrap_or_else(|| panic!("metric {name}{{run={run}}} was never recorded"))
        };
        let p50 = format!("{LATENCY_NS}_p50");
        let (fifo, scsf) = (gauge(&p50, "fifo"), gauge(&p50, "scsf"));
        bbpim_bench::write_snapshot(
            path,
            "streaming",
            &[
                ("scsf_vs_fifo_p50", if scsf > 0.0 { fifo / scsf } else { 1.0 }),
                ("fifo_p50_ms", fifo / 1e6),
                ("scsf_p50_ms", scsf / 1e6),
                ("host_utilisation", gauge(HOST_UTILISATION, "fifo")),
                ("hiload_host_utilisation", gauge(HOST_UTILISATION, "hi-fifo")),
                ("hiload_load", hi.cfg.load),
            ],
        );
    }
}
