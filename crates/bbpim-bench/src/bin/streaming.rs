//! Streaming scheduler study: a seeded open-loop arrival trace over the
//! 13 SSB queries played through `bbpim-sched` on a range-partitioned
//! cluster, once per admission policy (FIFO vs
//! shortest-candidate-set-first).
//!
//! Reports the planner's `EXPLAIN` statistics, then per-policy
//! p50/p95/p99/mean latency, queue wait, throughput, host/shard
//! utilisation, and the out-of-order completion count. Every streamed
//! answer is checked bit-identical against `run_batch` over the same
//! arrived queries — the scheduler changes *when*, never *what*.
//!
//! Flags: `--sf`, `--seed`, `--uniform`, `--shards 8` (the largest
//! listed count runs), `--arrivals 52`, `--load 2.0`, `--inflight 4`
//! (see `bbpim_bench::BenchConfig`).
//!
//! Two rows run: the configured load on the one-crossbar layout, and a
//! **high-contention** row at 4× that load with a 4×-deeper in-flight
//! window on the two-crossbar layout — the mask-transfer-heavy shape
//! whose host-bus pressure the byte-diet levers exist to relieve. The
//! default row leaves the shared channel mostly idle (utilisation
//! ~0.15 in the PR-5 baseline), so only the high-contention row
//! exercises the saturated regime the contention model is for; its
//! utilisation is snapshotted and gated.

use bbpim_bench::{reports, run_streaming_study, setup, BenchConfig, SsbSetup};
use bbpim_core::modes::EngineMode;

fn main() {
    let s = setup(BenchConfig::from_args());
    let shards = s.cfg.shards.iter().copied().max().unwrap_or(8);
    let study = run_streaming_study(&s, EngineMode::OneXb, shards);
    reports::print_explain(&s, &study.explains);
    reports::print_streaming(&s, &study);

    // High-contention row: same data and trace shape, 4× the offered
    // load and in-flight window, two-xb layout (per-disjunct mask
    // transfers ride the bus).
    let hi = SsbSetup {
        cfg: BenchConfig {
            load: s.cfg.load * 4.0,
            inflight: (s.cfg.inflight * 4).max(16),
            ..s.cfg.clone()
        },
        db: s.db.clone(),
        wide: s.wide.clone(),
        queries: s.queries.clone(),
    };
    println!(
        "\n== high-contention row: load {:.1}x capacity, {} in flight, two-xb ==",
        hi.cfg.load, hi.cfg.inflight
    );
    let hi_study = run_streaming_study(&hi, EngineMode::TwoXb, shards);
    reports::print_streaming(&hi, &hi_study);

    // Machine-readable snapshot for the CI regression gate: the
    // admission-policy headline (FIFO p50 over SCSF p50 — how much the
    // candidate-set-size heuristic buys) plus bus pressure.
    if let Some(path) = &s.cfg.json {
        let p50 = |label: &str| {
            study
                .policies
                .iter()
                .find(|r| r.policy.label() == label)
                .map(|r| r.outcome.latency_summary().p50_ns)
                .expect("both policies ran")
        };
        let (fifo, scsf) = (p50("fifo"), p50("scsf"));
        let fifo_run = study.policies.iter().find(|r| r.policy.label() == "fifo").unwrap();
        let hi_fifo = hi_study
            .policies
            .iter()
            .find(|r| r.policy.label() == "fifo")
            .expect("fifo ran in the high-contention row");
        bbpim_bench::write_snapshot(
            path,
            "streaming",
            &[
                ("scsf_vs_fifo_p50", if scsf > 0.0 { fifo / scsf } else { 1.0 }),
                ("fifo_p50_ms", fifo / 1e6),
                ("scsf_p50_ms", scsf / 1e6),
                ("host_utilisation", fifo_run.outcome.host_utilisation()),
                ("hiload_host_utilisation", hi_fifo.outcome.host_utilisation()),
                ("hiload_load", hi.cfg.load),
            ],
        );
    }
}
