//! Streaming scheduler study: a seeded open-loop arrival trace over the
//! 13 SSB queries played through `bbpim-sched` on a range-partitioned
//! cluster, once per admission policy (FIFO vs
//! shortest-candidate-set-first).
//!
//! Reports the planner's `EXPLAIN` statistics, then per-policy
//! p50/p95/p99/mean latency, queue wait, throughput, host/shard
//! utilisation, and the out-of-order completion count. Every streamed
//! answer is checked bit-identical against `run_batch` over the same
//! arrived queries — the scheduler changes *when*, never *what*.
//!
//! Flags: `--sf`, `--seed`, `--uniform`, `--shards 8` (the largest
//! listed count runs), `--arrivals 52`, `--load 2.0`, `--inflight 4`
//! (see `bbpim_bench::BenchConfig`).

use bbpim_bench::{reports, run_streaming_study, setup, BenchConfig};
use bbpim_core::modes::EngineMode;

fn main() {
    let s = setup(BenchConfig::from_args());
    let shards = s.cfg.shards.iter().copied().max().unwrap_or(8);
    let study = run_streaming_study(&s, EngineMode::OneXb, shards);
    reports::print_explain(&s, &study.explains);
    reports::print_streaming(&s, &study);

    // Machine-readable snapshot for the CI regression gate: the
    // admission-policy headline (FIFO p50 over SCSF p50 — how much the
    // candidate-set-size heuristic buys) plus bus pressure.
    if let Some(path) = &s.cfg.json {
        let p50 = |label: &str| {
            study
                .policies
                .iter()
                .find(|r| r.policy.label() == label)
                .map(|r| r.outcome.latency_summary().p50_ns)
                .expect("both policies ran")
        };
        let (fifo, scsf) = (p50("fifo"), p50("scsf"));
        let fifo_run = study.policies.iter().find(|r| r.policy.label() == "fifo").unwrap();
        bbpim_bench::write_snapshot(
            path,
            "streaming",
            &[
                ("scsf_vs_fifo_p50", if scsf > 0.0 { fifo / scsf } else { 1.0 }),
                ("fifo_p50_ms", fifo / 1e6),
                ("scsf_p50_ms", scsf / 1e6),
                ("host_utilisation", fifo_run.outcome.host_utilisation()),
            ],
        );
    }
}
