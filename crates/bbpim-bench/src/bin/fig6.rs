//! Fig. 6: SSB execution latency for all five systems.

use bbpim_bench::reports::print_fig6;
use bbpim_bench::{cross_validate, pim_runs, run_monet, setup, BenchConfig};

fn main() {
    let s = setup(BenchConfig::from_args());
    eprintln!("running 3 PIM modes (load + calibrate + 13 queries each)…");
    let pim = pim_runs(&s);
    eprintln!("running baselines…");
    let mnt_join = run_monet(&s, true, 3);
    let mnt_reg = run_monet(&s, false, 3);

    let refs: Vec<&bbpim_bench::PimModeRun> = pim.iter().collect();
    let bad = cross_validate(&s.queries, &refs, &[&mnt_join, &mnt_reg]);
    if bad.is_empty() {
        println!("cross-validation: all 5 systems agree on all 13 queries\n");
    } else {
        println!("cross-validation FAILED on: {bad:?}\n");
    }
    print_fig6(&s, &pim, &mnt_join, &mnt_reg);
}
