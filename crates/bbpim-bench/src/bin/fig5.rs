//! Fig. 5: PIM chip area breakdown.

use bbpim_bench::print_table;
use bbpim_sim::area::AreaModel;
use bbpim_sim::SimConfig;

fn main() {
    let cfg = SimConfig::default();
    let model = AreaModel::default();
    let breakdown = model.breakdown();
    println!(
        "Fig. 5 — PIM chip area breakdown (chip = {:.0} mm², 8 chips/module)\n",
        breakdown.total_mm2
    );
    let rows: Vec<Vec<String>> = breakdown
        .components
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{:.2}", c.area_mm2),
                format!("{:.2}%", 100.0 * c.area_mm2 / breakdown.total_mm2),
            ]
        })
        .collect();
    print_table(&["component", "area [mm^2]", "share"], &rows);
    println!(
        "\nper-crossbar aggregation circuit: {:.0} µm² ({} crossbars per chip)",
        model.agg_circuit_um2(&cfg),
        model.crossbars_per_chip(&cfg)
    );
    println!(
        "first-principles crossbar-array check (4F², 28 nm): {:.1} mm² vs calibrated {:.1} mm²",
        model.crossbar_array_mm2_first_principles(&cfg, 28.0),
        breakdown.total_mm2 * model.crossbars_pct / 100.0
    );
    println!("\npaper: aggregation circuits 13.9%, crossbars 19.24%, crossbar peripherals 40.4%,");
    println!("       bank peripherals 18.83%, PIM controllers 6.84%, wires 0.76% (346 mm² chip)");
}
