//! Merge per-bin bench snapshots into one `BENCH_PR.json` and gate the
//! headline ratios against a checked-in baseline.
//!
//! ```text
//! bench_gate --out BENCH_PR.json [--baseline bench/baseline.json] \
//!            [--tolerance 0.15] scaling.json pruning.json streaming.json
//! ```
//!
//! Each input is a single-section snapshot written by a bench binary's
//! `--json` flag (`{"scaling": {…}}`). The merge concatenates the
//! sections verbatim; with `--baseline` the gate then compares the
//! headline ratios — pruned-vs-exhaustive wall clock, scsf-vs-fifo
//! p50, the 3-aggregate energy saving, the star-join host-byte
//! reduction, the serving study's heavy-tenant goodput, and the HTAP
//! study's query-p95-under-ingest ratio — and exits
//! nonzero if any regressed by more than the tolerance (default 15 %). Every gated
//! metric is a *simulated* ratio, so baseline and PR values are
//! deterministic for a given seed and scale factor; the tolerance is
//! headroom for deliberate model changes, not machine noise.
//!
//! Without `--baseline` the tool only merges — which is also how the
//! checked-in baseline is (re)generated:
//!
//! ```text
//! bench_gate --out bench/baseline.json scaling.json pruning.json streaming.json
//! ```
//!
//! The metrics-registry snapshot the streaming bin's `--metrics` flag
//! writes (`{"metrics": {…}}`) merges like any other section; gated
//! headlines that alias a registry series (host-bus utilisation) are
//! read from it when present, so the gate tracks the observability
//! surface rather than a parallel ad-hoc number.
//!
//! The workspace vendors a stub `serde`, so the snapshots are parsed
//! with a purpose-built scanner for this flat two-level shape instead
//! of a JSON library.

use std::process::ExitCode;

/// The gated headline ratios: `(section, key)`. Higher is better for
/// every one of them.
const GATED: &[(&str, &str)] = &[
    ("pruning", "wall_clock_speedup"),
    ("streaming", "scsf_vs_fifo_p50"),
    ("streaming", "hiload_host_utilisation"),
    ("scaling", "agg3_energy_saving"),
    ("scaling", "geomean_speedup_max_shards"),
    ("join", "host_bytes_ratio_q1"),
    ("serve", "heavy_tenant_goodput"),
    ("htap", "query_p95_under_ingest"),
];

/// Absolute floors checked against the merged snapshot whenever the
/// key is present — independent of any baseline, so even a baseline
/// *regeneration* fails if sharding stops paying off. The contended
/// max-shard geo-mean dropping below 1.0 means the host channel is
/// again eating all module parallelism — the regression the byte-diet
/// PR exists to prevent — and no relative tolerance excuses that.
/// Likewise `serve.light_p95_within_slo` is a 0/1 bit: the serving
/// study's light tenant either kept its p95 promise under the AIMD
/// window at the gate overload or it did not — a promise is not a
/// metric one may regress 15% on. `htap.snapshot_consistency` is the
/// same kind of bit: a streamed answer that diverges from its
/// prefix-replay oracle is wrong, not slow.
const ABSOLUTE_FLOORS: &[(&str, &str, f64)] = &[
    ("scaling", "geomean_speedup_max_shards", 1.0),
    ("serve", "light_p95_within_slo", 1.0),
    ("htap", "snapshot_consistency", 1.0),
];

/// Gated headlines that also exist as metrics-registry series (the
/// `{"metrics": …}` snapshot the streaming bin's `--metrics` flag
/// writes, merged alongside the bin sections). The PR-side value is
/// read from the registry series when present, so the gate and the
/// observability surface report one number; the bin-section key stays
/// as the fallback (and is what checked-in baselines carry).
const METRIC_ALIASES: &[(&str, &str, &str)] = &[
    ("streaming", "host_utilisation", "bbpim_host_bus_utilisation{run=fifo}"),
    ("streaming", "hiload_host_utilisation", "bbpim_host_bus_utilisation{run=hi-fifo}"),
];

/// Extract the body of a top-level `"section": { … }` object. Values
/// are flat, but metrics-registry *keys* embed braces
/// (`name{label=value}`), so the closing brace is matched by depth
/// with quoted strings skipped.
fn section_body(json: &str, section: &str) -> Option<String> {
    let tag = format!("\"{section}\"");
    let at = json.find(&tag)?;
    let open = json[at..].find('{')? + at;
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, b) in json.bytes().enumerate().skip(open) {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open + 1..i].trim().to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Look up `section.key` as a number in a snapshot (merged or single).
fn lookup(json: &str, section: &str, key: &str) -> Option<f64> {
    let body = section_body(json, section)?;
    let tag = format!("\"{key}\"");
    let at = body.find(&tag)?;
    let colon = body[at + tag.len()..].find(':')? + at + tag.len();
    let rest = body[colon + 1..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The PR-side value of a gated headline: the metrics-registry series
/// when aliased and present, the bin-section key otherwise.
fn lookup_current(json: &str, section: &str, key: &str) -> Option<f64> {
    METRIC_ALIASES
        .iter()
        .find(|(s, k, _)| *s == section && *k == key)
        .and_then(|(_, _, alias)| lookup(json, "metrics", alias))
        .or_else(|| lookup(json, section, key))
}

/// Merge single-section snapshots into one JSON object, preserving
/// input order. Duplicate sections are rejected — that is always a CI
/// wiring mistake.
fn merge(inputs: &[(String, String)]) -> Result<String, String> {
    let mut sections: Vec<(String, String)> = Vec::new();
    for (path, content) in inputs {
        let name_at = content.find('"').ok_or_else(|| format!("{path}: no section"))?;
        let name_end = content[name_at + 1..]
            .find('"')
            .ok_or_else(|| format!("{path}: unterminated section name"))?
            + name_at
            + 1;
        let name = content[name_at + 1..name_end].to_string();
        if sections.iter().any(|(n, _)| *n == name) {
            return Err(format!("{path}: duplicate section `{name}`"));
        }
        let body =
            section_body(content, &name).ok_or_else(|| format!("{path}: malformed section"))?;
        sections.push((name, body));
    }
    let rendered: Vec<String> = sections
        .iter()
        .map(|(name, body)| {
            let indented =
                body.lines().map(|l| format!("    {}", l.trim())).collect::<Vec<_>>().join("\n");
            format!("  \"{name}\": {{\n{indented}\n  }}")
        })
        .collect();
    Ok(format!("{{\n{}\n}}\n", rendered.join(",\n")))
}

struct Args {
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    inputs: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args { out: None, baseline: None, tolerance: 0.15, inputs: Vec::new() };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                args.out = Some(argv.get(i + 1).ok_or("--out needs a path")?.clone());
                i += 1;
            }
            "--baseline" => {
                args.baseline = Some(argv.get(i + 1).ok_or("--baseline needs a path")?.clone());
                i += 1;
            }
            "--tolerance" => {
                args.tolerance = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|t: &f64| (0.0..1.0).contains(t))
                    .ok_or("--tolerance needs a fraction in [0, 1)")?;
                i += 1;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => args.inputs.push(path.to_string()),
        }
        i += 1;
    }
    if args.inputs.is_empty() {
        return Err("no input snapshots given".into());
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let inputs: Vec<(String, String)> = args
        .inputs
        .iter()
        .map(|p| {
            std::fs::read_to_string(p).map(|c| (p.clone(), c)).map_err(|e| format!("{p}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let merged = merge(&inputs)?;
    if let Some(out) = &args.out {
        std::fs::write(out, &merged).map_err(|e| format!("{out}: {e}"))?;
        println!("merged {} snapshots into {out}", inputs.len());
    }

    let mut failures = Vec::new();
    let mut floor_header = false;
    for (section, key, floor) in ABSOLUTE_FLOORS {
        if let Some(now) = lookup_current(&merged, section, key) {
            if !floor_header {
                println!("\nabsolute floors:");
                floor_header = true;
            }
            let ok = now >= *floor;
            println!(
                "  [{}] {section}.{key}: {now:.4} vs absolute floor {floor:.4}",
                if ok { "PASS" } else { "FAIL" },
            );
            if !ok {
                failures.push(format!("{section}.{key} below absolute floor: {now:.4} < {floor}"));
            }
        }
    }

    let Some(baseline_path) = &args.baseline else {
        return if failures.is_empty() { Ok(()) } else { Err(failures.join("; ")) };
    };
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    println!("\nregression gate (tolerance {:.0}%):", args.tolerance * 100.0);
    for (section, key) in GATED {
        let base = lookup(&baseline, section, key)
            .ok_or_else(|| format!("{baseline_path}: missing {section}.{key}"))?;
        let now = lookup_current(&merged, section, key)
            .ok_or_else(|| format!("merged snapshot: missing {section}.{key}"))?;
        let floor = base * (1.0 - args.tolerance);
        let ok = now >= floor;
        println!(
            "  [{}] {section}.{key}: {now:.4} vs baseline {base:.4} (floor {floor:.4})",
            if ok { "PASS" } else { "FAIL" },
        );
        if !ok {
            failures.push(format!("{section}.{key} regressed: {now:.4} < {floor:.4}"));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALING: &str = "{\n  \"scaling\": {\n    \"agg3_energy_saving\": 2.103000,\n    \"max_shards\": 4.000000\n  }\n}\n";
    const PRUNING: &str = "{\n  \"pruning\": {\n    \"wall_clock_speedup\": 1.810000\n  }\n}\n";

    #[test]
    fn lookup_reads_section_scoped_numbers() {
        assert_eq!(lookup(SCALING, "scaling", "agg3_energy_saving"), Some(2.103));
        assert_eq!(lookup(SCALING, "scaling", "max_shards"), Some(4.0));
        assert_eq!(lookup(SCALING, "scaling", "missing"), None);
        assert_eq!(lookup(SCALING, "pruning", "wall_clock_speedup"), None);
    }

    #[test]
    fn merge_concatenates_sections_and_stays_parseable() {
        let merged =
            merge(&[("a.json".into(), SCALING.into()), ("b.json".into(), PRUNING.into())]).unwrap();
        assert_eq!(lookup(&merged, "scaling", "agg3_energy_saving"), Some(2.103));
        assert_eq!(lookup(&merged, "pruning", "wall_clock_speedup"), Some(1.81));
    }

    #[test]
    fn merge_rejects_duplicate_sections() {
        let r = merge(&[("a.json".into(), SCALING.into()), ("b.json".into(), SCALING.into())]);
        assert!(r.is_err());
    }

    #[test]
    fn lookup_handles_trailing_entry_without_comma() {
        let json = "{\n  \"s\": {\n    \"only\": 3.5\n  }\n}\n";
        assert_eq!(lookup(json, "s", "only"), Some(3.5));
    }

    const METRICS: &str = "{\n  \"metrics\": {\n    \"bbpim_host_bus_utilisation{run=fifo}\": 0.1512,\n    \"bbpim_host_bus_utilisation{run=hi-fifo}\": 0.9731,\n    \"plain\": 1\n  }\n}\n";

    #[test]
    fn section_body_and_lookup_handle_braced_metric_keys() {
        // `{run=…}` inside the key must not terminate the section.
        assert_eq!(
            lookup(METRICS, "metrics", "bbpim_host_bus_utilisation{run=hi-fifo}"),
            Some(0.9731)
        );
        assert_eq!(
            lookup(METRICS, "metrics", "bbpim_host_bus_utilisation{run=fifo}"),
            Some(0.1512)
        );
        assert_eq!(lookup(METRICS, "metrics", "plain"), Some(1.0));
    }

    #[test]
    fn gate_prefers_the_metrics_registry_series_when_present() {
        let stale_bin = "{\n  \"streaming\": {\n    \"hiload_host_utilisation\": 0.5\n  }\n}\n";
        let merged =
            merge(&[("s.json".into(), stale_bin.into()), ("m.json".into(), METRICS.into())])
                .unwrap();
        assert_eq!(lookup_current(&merged, "streaming", "hiload_host_utilisation"), Some(0.9731));
        // unaliased keys and missing-registry cases fall back to the bin section
        assert_eq!(lookup_current(stale_bin, "streaming", "hiload_host_utilisation"), Some(0.5));
        assert_eq!(lookup_current(&merged, "streaming", "missing"), None);
    }
}
