//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Aggregation circuit vs pure bulk-bitwise reduction** at the
//!    paper geometry (closed-form per-crossbar costs).
//! 2. **two-xb placement**: worst-case split (all dimension attributes
//!    away from the fact) vs the Section V-A optimisation (hot subgroup
//!    identifiers co-located with the fact attributes).
//! 3. **Host scattered-read sensitivity**: how the hybrid GROUP-BY's k
//!    decision shifts with the host's effective memory-level
//!    parallelism on data-dependent reads.

use bbpim_bench::{print_table, setup, BenchConfig};
use bbpim_core::engine::PimQueryEngine;
use bbpim_core::groupby::calibration::CalibrationConfig;
use bbpim_core::layout::RecordLayout;
use bbpim_core::modes::EngineMode;
use bbpim_sim::aggcircuit::AggRequest;
use bbpim_sim::compiler::reduce::{reduce_cost, ReduceOp};
use bbpim_sim::compiler::ColRange;
use bbpim_sim::SimConfig;

fn main() {
    let mut bench_cfg = BenchConfig::from_args();
    if (bench_cfg.sf - 0.1).abs() < 1e-12 {
        bench_cfg.sf = 0.05; // ablations need less data than the figures
    }

    ablation_agg_paths();
    println!("\n{}\n", "=".repeat(72));
    ablation_placement(&bench_cfg);
    println!("\n{}\n", "=".repeat(72));
    ablation_scatter(&bench_cfg);
}

/// 1. Circuit vs reduction tree, per crossbar, paper geometry.
fn ablation_agg_paths() {
    let cfg = SimConfig::default();
    println!("Ablation 1 — aggregation circuit vs pure bulk-bitwise reduction");
    println!("(per crossbar, 1024x512, paper energy/latency constants)\n");
    let mut rows = Vec::new();
    for width in [16usize, 32, 48] {
        let req = AggRequest {
            op: ReduceOp::Sum,
            value: ColRange::new(32, width),
            mask_col: 1,
            dst_row: 0,
            dst: ColRange::new(448, (width + 10).min(64)),
        };
        let circuit = req.cost(&cfg);
        let circuit_energy_pj = circuit.bits_read as f64 * cfg.read_energy_pj_per_bit
            + circuit.bits_written as f64 * cfg.write_energy_pj_per_bit
            + cfg.agg_circuit_power_uw * circuit.time_ns * 1e-3;
        let tree = reduce_cost(cfg.crossbar_rows, cfg.crossbar_cols, width, ReduceOp::Sum);
        let tree_time = tree.cycles as f64 * cfg.logic_cycle_ns;
        let tree_energy_pj = (tree.col_ops * cfg.crossbar_rows as u64
            + tree.row_ops * cfg.crossbar_cols as u64) as f64
            * cfg.logic_energy_fj_per_bit
            * 1e-3;
        rows.push(vec![
            format!("{width}"),
            format!("{:.1}", circuit.time_ns / 1e3),
            format!("{:.1}", tree_time / 1e3),
            format!("{:.1}x", tree_time / circuit.time_ns),
            format!("{:.2}", circuit_energy_pj / 1e3),
            format!("{:.2}", tree_energy_pj / 1e3),
            format!("{:.1}x", tree_energy_pj / circuit_energy_pj),
            format!("{}", circuit.bits_written),
            format!("{}", tree.max_row_cell_writes),
        ]);
    }
    print_table(
        &[
            "value bits",
            "circuit [us]",
            "bitwise [us]",
            "slowdown",
            "circuit [nJ]",
            "bitwise [nJ]",
            "energy x",
            "circuit cell-writes",
            "bitwise row-writes",
        ],
        &rows,
    );
    println!("\n(the cell-write column is why the circuit also buys endurance: the");
    println!(" reduction tree rewrites thousands of cells per row per aggregation)");
}

/// 2. two-xb worst-case vs optimised placement on a GROUP BY query.
fn ablation_placement(bench_cfg: &BenchConfig) {
    println!("Ablation 2 — two-xb placement: worst-case vs hot-keys-with-fact");
    println!(
        "(SF={}, query Q2.3: GROUP BY d_year, p_brand1; host slowed to the\n paper's regime — scatter_mlp 0.5 — so the model assigns subgroups to PIM)\n",
        bench_cfg.sf
    );
    let s = setup(bench_cfg.clone());
    let q = s.queries.iter().find(|q| q.id == "Q2.3").expect("Q2.3").clone();
    let mut sim = SimConfig::default();
    sim.host.scatter_mlp = 0.5;

    // Worst case: by-prefix split (all dimension attrs in partition 1);
    // its pim-gb pays a mask transfer per subgroup, and its calibration
    // (run in TwoXb mode) knows it.
    let mut worst =
        PimQueryEngine::new(sim.clone(), s.wide.clone(), EngineMode::TwoXb).expect("engine");
    worst.calibrate(&CalibrationConfig::default()).expect("calibration");
    let m = worst.page_count();
    let worst_tpim = worst.model().unwrap().pim.time_ns(m, 1);
    let worst_out = worst.run(&q).expect("query");
    drop(worst);

    // Optimised: this query's subgroup identifiers live with the fact,
    // so its pim-gb path is transfer-free — calibrate it as such (the
    // DBA calibrates for the actual placement).
    let hot = ["d_year", "p_brand1"];
    let layout = RecordLayout::build_custom(
        s.wide.schema(),
        &sim,
        2,
        |name| {
            if name.starts_with("lo_") || hot.contains(&name) {
                0
            } else {
                1
            }
        },
        &[],
    )
    .expect("layout");
    let mut opt =
        PimQueryEngine::with_layout(sim.clone(), s.wide.clone(), EngineMode::TwoXb, layout)
            .expect("engine");
    let (_, transfer_free_model) = bbpim_core::groupby::calibration::run_calibration(
        &sim,
        EngineMode::OneXb,
        &CalibrationConfig::default(),
    )
    .expect("calibration");
    let opt_tpim = transfer_free_model.pim.time_ns(m, 1);
    opt.set_model(transfer_free_model);
    let opt_out = opt.run(&q).expect("query");

    assert_eq!(worst_out.groups, opt_out.groups, "placement must not change answers");
    print_table(
        &["placement", "T_pim-gb/subgroup [ms]", "k->PIM", "latency [ms]", "energy [mJ]"],
        &[
            vec![
                "worst-case (paper two_xb)".into(),
                format!("{:.4}", worst_tpim / 1e6),
                worst_out.report.pim_agg_subgroups.to_string(),
                format!("{:.3}", worst_out.report.time_ns / 1e6),
                format!("{:.4}", worst_out.report.energy_pj * 1e-9),
            ],
            vec![
                "hot keys with fact".into(),
                format!("{:.4}", opt_tpim / 1e6),
                opt_out.report.pim_agg_subgroups.to_string(),
                format!("{:.3}", opt_out.report.time_ns / 1e6),
                format!("{:.4}", opt_out.report.energy_pj * 1e-9),
            ],
        ],
    );
    println!("\n(the optimised placement removes the per-subgroup mask transfer: its");
    println!(" pim-gb is as cheap as one-xb's, so the model can move subgroups into");
    println!(" PIM — the paper's Section V-A remark about prior knowledge of hot keys.");
    println!(" At this small M the host path is still competitive in total latency;");
    println!(" the per-subgroup column is the placement effect itself, and it is what");
    println!(" scales with M at the paper's SF=10.)");
}

/// 3. k-decision sensitivity to the scattered-read model.
fn ablation_scatter(bench_cfg: &BenchConfig) {
    println!("Ablation 3 — hybrid decision vs host scattered-read parallelism");
    println!("(SF={}, query Q2.3; scatter_mlp = in-flight misses per thread)\n", bench_cfg.sf);
    let s = setup(bench_cfg.clone());
    let q = s.queries.iter().find(|q| q.id == "Q2.3").expect("Q2.3").clone();
    let mut rows = Vec::new();
    for scatter_mlp in [0.5f64, 1.0, 4.0, 16.0] {
        let mut sim = SimConfig::default();
        sim.host.scatter_mlp = scatter_mlp;
        let mut engine =
            PimQueryEngine::new(sim, s.wide.clone(), EngineMode::OneXb).expect("engine");
        engine.calibrate(&CalibrationConfig::default()).expect("calibration");
        let out = engine.run(&q).expect("query");
        rows.push(vec![
            format!("{scatter_mlp}"),
            out.report.pim_agg_subgroups.to_string(),
            out.report.total_subgroups.to_string(),
            format!("{:.3}", out.report.time_ns / 1e6),
        ]);
    }
    print_table(&["scatter_mlp", "k->PIM", "k_MAX", "latency [ms]"], &rows);
    println!("\n(a slower host pushes subgroups into PIM — the regime the paper's");
    println!(" gem5 host sits in; a faster host keeps the tail on the CPU)");
}
