//! Fig. 7: PIM memory energy per query.

use bbpim_bench::reports::print_fig7;
use bbpim_bench::{pim_runs, setup, BenchConfig};

fn main() {
    let s = setup(BenchConfig::from_args());
    let pim = pim_runs(&s);
    print_fig7(&s, &pim);
}
