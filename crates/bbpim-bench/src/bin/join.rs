//! Star-join study: the normalized star cluster (PIM-side semijoin
//! bitmaps over separate fact + dimension tables) against the
//! pre-joined cluster it replaces, on the 13 SSB queries.
//!
//! Both clusters run the same queries at the same shard count and
//! engine mode; every normalized answer is asserted bit-identical to
//! the pre-joined one before anything is reported. The comparison is
//! host-channel bytes — the journal extension's contended resource —
//! plus the per-table PIM-resident footprint the normalization frees.
//! Flags: `--sf`, `--seed`, `--uniform`, `--shards` (the largest count
//! is used), `--json` for the CI gate snapshot (see
//! `bbpim_bench::BenchConfig`).

use bbpim_bench::{fmt_ms, print_table, reports, setup, write_snapshot, BenchConfig};
use bbpim_cluster::{ClusterEngine, ClusterReport, Partitioner};
use bbpim_core::groupby::calibration::CalibrationConfig;
use bbpim_core::modes::EngineMode;
use bbpim_db::ssb::star;
use bbpim_join::StarCluster;
use bbpim_sim::SimConfig;

/// Host-channel bytes one cluster execution put on the shared bus,
/// summed over the per-shard phase logs (the star cluster's semijoin
/// prelude — dimension-bitmap read + broadcast — rides the first
/// dispatched shard's log).
fn host_bytes(report: &ClusterReport) -> u64 {
    report.per_shard.iter().map(|r| r.phases.host_bytes()).sum()
}

fn main() {
    let s = setup(BenchConfig::from_args());
    let shards = *s.cfg.shards.iter().max().expect("at least one shard count");
    let mode = EngineMode::TwoXb;

    let mut star_cluster =
        StarCluster::new(SimConfig::default(), &s.db, mode, shards, Partitioner::RoundRobin)
            .expect("star cluster construction");
    let mut prejoined = ClusterEngine::new(
        SimConfig::default(),
        s.wide.clone(),
        mode,
        shards,
        Partitioner::RoundRobin,
    )
    .expect("pre-joined cluster construction");
    prejoined.calibrate(&CalibrationConfig::default()).expect("calibration");

    println!(
        "Star join — normalized semijoin vs pre-join, host-channel bytes (SF={}, {} data, \
         {} fact records, {} shards, {mode:?})\n",
        s.cfg.sf,
        if s.cfg.skewed { "skewed" } else { "uniform" },
        s.db.lineorder.len(),
        shards,
    );

    let mut rows = Vec::new();
    let mut ratios_all = Vec::new();
    let mut ratios_q1 = Vec::new();
    for q in &s.queries {
        let star_out = star_cluster.run(q).unwrap_or_else(|e| panic!("star {}: {e}", q.id));
        let pre_out = prejoined.run(q).unwrap_or_else(|e| panic!("pre-joined {}: {e}", q.id));
        assert_eq!(star_out.groups, pre_out.groups, "normalized/pre-join mismatch on {}", q.id);
        let sb = host_bytes(&star_out.report);
        let pb = host_bytes(&pre_out.report);
        let ratio = pb as f64 / sb.max(1) as f64;
        if sb > 0 && pb > 0 {
            ratios_all.push(ratio);
            if q.id.starts_with("Q1") {
                ratios_q1.push(ratio);
            }
        }
        rows.push(vec![
            q.id.clone(),
            fmt_ms(star_out.report.time_ns),
            fmt_ms(pre_out.report.time_ns),
            sb.to_string(),
            pb.to_string(),
            // planner-only queries move no bytes on either path
            if sb > 0 { format!("{ratio:.2}") } else { "-".into() },
        ]);
    }
    print_table(
        &["query", "star ms", "prejoin ms", "star host B", "prejoin host B", "pre/star B"],
        &rows,
    );

    let gm = |r: &[f64]| if r.is_empty() { 1.0 } else { bbpim_bench::geomean(r) };
    let q1_ratio = gm(&ratios_q1);
    let all_ratio = gm(&ratios_all);
    println!(
        "\ngeo-mean host-byte reduction (pre-join / normalized, > 1 = semijoin cheaper):\n  \
         Q1.x (selective class): {q1_ratio:.2}x\n  all queries with traffic: {all_ratio:.2}x"
    );
    println!(
        "\nshape check:\n  [{}] compressed dimension bitmaps beat wide-mask transfers on Q1.x",
        if q1_ratio > 1.0 { "PASS" } else { "FAIL" },
    );

    println!();
    let normalized = star_cluster.footprints();
    let prejoin_fp = star::table_footprint(&s.wide, &[]);
    reports::print_star_footprint(&normalized, &prejoin_fp);
    let star_bytes: u64 = normalized.iter().map(|f| f.data_bytes).sum();
    let footprint_ratio = prejoin_fp.data_bytes as f64 / star_bytes.max(1) as f64;

    // Machine-readable snapshot for the CI regression gate: the
    // selective-class host-byte win is the gated headline (higher is
    // better), the rest is context.
    if let Some(path) = &s.cfg.json {
        write_snapshot(
            path,
            "join",
            &[
                ("host_bytes_ratio_q1", q1_ratio),
                ("host_bytes_ratio_all", all_ratio),
                ("footprint_ratio", footprint_ratio),
                ("shards", shards as f64),
            ],
        );
    }
}
