//! Run every experiment in one pass (the source of EXPERIMENTS.md).

use bbpim_bench::reports::{print_fig6, print_fig7, print_fig8, print_fig9, print_table2};
use bbpim_bench::{cross_validate, pim_runs, run_monet, setup, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("=== bbpim full experiment run ===");
    println!("sf={} skewed={} seed={:#x} threads={}\n", cfg.sf, cfg.skewed, cfg.seed, cfg.threads);

    let s = setup(cfg);
    eprintln!(
        "data generated: {} lineorders, wide arity {}",
        s.wide.len(),
        s.wide.schema().arity()
    );
    eprintln!("running PIM modes…");
    let pim = pim_runs(&s);
    eprintln!("running baselines…");
    let mnt_join = run_monet(&s, true, 3);
    let mnt_reg = run_monet(&s, false, 3);

    let refs: Vec<&bbpim_bench::PimModeRun> = pim.iter().collect();
    let bad = cross_validate(&s.queries, &refs, &[&mnt_join, &mnt_reg]);
    println!(
        "cross-validation: {}\n",
        if bad.is_empty() {
            "all 5 systems agree on all 13 queries".to_string()
        } else {
            format!("MISMATCH on {bad:?}")
        }
    );

    // optional machine-readable output: --csv <dir>
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        if let Some(dir) = args.get(i + 1) {
            bbpim_bench::reports::write_csvs(
                std::path::Path::new(dir),
                &s,
                &pim,
                &mnt_join,
                &mnt_reg,
            )
            .expect("csv export");
            eprintln!("CSVs written to {dir}");
        }
    }

    print_fig6(&s, &pim, &mnt_join, &mnt_reg);
    println!("\n{}\n", "=".repeat(72));
    print_fig7(&s, &pim);
    println!("\n{}\n", "=".repeat(72));
    print_fig8(&s, &pim);
    println!("\n{}\n", "=".repeat(72));
    print_fig9(&s, &pim);
    println!("\n{}\n", "=".repeat(72));
    print_table2(&s, &pim);
}
