//! Fig. 4: empirical latency modeling.
//!
//! * (a) `T_host-gb` vs page count M for representative (s, r) pairs
//! * (b) `∂T_host-gb/∂M` vs r per s, with the fitted `a(s)·√r + b(s)`
//! * (c) `T_pim-gb` (single subgroup) vs M per n, with the linear fits
//!
//! `--mode pimdb|two_xb|one_xb` selects the engine variant (default
//! one_xb; the paper repeats the modeling per version).

use bbpim_core::groupby::calibration::{run_calibration, CalibrationConfig};
use bbpim_core::modes::EngineMode;

use bbpim_bench::print_table;
use bbpim_sim::SimConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = match args.iter().position(|a| a == "--mode") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("pimdb") => EngineMode::PimDb,
            Some("two_xb") => EngineMode::TwoXb,
            _ => EngineMode::OneXb,
        },
        None => EngineMode::OneXb,
    };
    let cfg = SimConfig::default();
    let cal = CalibrationConfig {
        ms: vec![1, 2, 4, 8, 16],
        s_values: vec![2, 4, 6, 8],
        r_values: vec![0.01, 0.05, 0.1, 0.2, 0.4, 0.8],
        n_values: vec![1, 2, 3, 4],
        seed: 0xF14,
    };
    println!("Fig. 4 — empirical latency modeling ({})\n", mode.label());
    let (data, model) = run_calibration(&cfg, mode, &cal).expect("calibration");

    // ---- (a) T_host-gb vs M ------------------------------------------
    println!("(a) T_host-gb [ms] vs page count M");
    let picks: Vec<(usize, f64)> =
        vec![(2, 0.01), (2, 0.4), (2, 0.8), (4, 0.01), (4, 0.2), (4, 0.8)];
    let mut headers = vec!["M".to_string()];
    headers.extend(picks.iter().map(|(s, r)| format!("s={s},r={:.0}%", r * 100.0)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = cal
        .ms
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for (s, r) in &picks {
                let t = data
                    .host_points
                    .iter()
                    .find(|p| p.m == *m && p.s == *s && (p.r - r).abs() < 1e-12)
                    .map(|p| p.time_ns / 1e6)
                    .unwrap_or(f64::NAN);
                row.push(format!("{t:.4}"));
            }
            row
        })
        .collect();
    print_table(&header_refs, &rows);

    // ---- (b) slope vs r with fits -------------------------------------
    println!("\n(b) dT_host-gb/dM [ms/page] vs r, fitted a(s)*sqrt(r)+b(s)");
    let mut rows_b = Vec::new();
    for &s in &cal.s_values {
        let fit = model.host.fit_for(s).expect("fit");
        for &r in &cal.r_values {
            // recompute the measured slope for this (s, r)
            let pts: Vec<(f64, f64)> = data
                .host_points
                .iter()
                .filter(|p| p.s == s && (p.r - r).abs() < 1e-12)
                .map(|p| (p.m as f64, p.time_ns))
                .collect();
            let slope = bbpim_core::groupby::fitting::fit_linear(&pts).slope;
            rows_b.push(vec![
                format!("s={s}"),
                format!("{:.0}%", r * 100.0),
                format!("{:.5}", slope / 1e6),
                format!("{:.5}", fit.eval(r) / 1e6),
            ]);
        }
        println!(
            "  fit s={s}: a = {:.4} ms/page, b = {:.4} ms/page, R² = {:.4}",
            fit.a / 1e6,
            fit.b / 1e6,
            fit.r2
        );
    }
    print_table(&["s", "r", "measured slope", "fitted"], &rows_b);

    // ---- (c) T_pim-gb vs M --------------------------------------------
    println!("\n(c) T_pim-gb (single subgroup) [ms] vs M, per n");
    let mut headers_c = vec!["M".to_string()];
    headers_c.extend(cal.n_values.iter().map(|n| format!("n={n}")));
    let hc: Vec<&str> = headers_c.iter().map(String::as_str).collect();
    let rows_c: Vec<Vec<String>> = cal
        .ms
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for n in &cal.n_values {
                let t = data
                    .pim_points
                    .iter()
                    .find(|p| p.m == *m && p.n == *n)
                    .map(|p| p.time_ns / 1e6)
                    .unwrap_or(f64::NAN);
                row.push(format!("{t:.4}"));
            }
            row
        })
        .collect();
    print_table(&hc, &rows_c);
    for &n in &cal.n_values {
        let fit = model.pim.fit_for(n).expect("fit");
        println!(
            "  fit n={n}: dT/dM = {:.5} ms/page, T0 = {:.4} ms, R² = {:.4}",
            fit.slope / 1e6,
            fit.intercept / 1e6,
            fit.r2
        );
    }
    println!("\npaper shape: T_host-gb linear in M; slope concave in r (a·sqrt(r)+b);");
    println!("             T_pim-gb linear in M with n-dependent coefficients.");
}
