//! Cluster scaling study: the 13 SSB queries on a sharded multi-module
//! cluster at 1 / 2 / 4 / 8 shards, round-robin partitioned, plus a
//! hash-by-group-key comparison at 4 shards.
//!
//! Every merged answer is cross-checked against the row-at-a-time
//! oracle before it is reported. Flags: `--sf`, `--seed`, `--uniform`
//! (see `bbpim_bench::BenchConfig`).

use bbpim_bench::{reports, run_cluster_scaling, setup, BenchConfig};
use bbpim_cluster::{ClusterEngine, Partitioner};
use bbpim_core::groupby::calibration::CalibrationConfig;
use bbpim_core::modes::EngineMode;
use bbpim_sim::SimConfig;

const HASH_SHARDS: usize = 4;

fn main() {
    let s = setup(BenchConfig::from_args());
    let points =
        run_cluster_scaling(&s, EngineMode::OneXb, &[1, 2, 4, 8], &Partitioner::RoundRobin);
    reports::print_scaling(&s, &points);

    // Hash partitioning keeps every subgroup on one shard: the merge is
    // a disjoint union and each shard's GROUP BY sees k/n subgroups.
    // One hash cluster per GROUP BY query (the key set differs), each
    // running only its own query.
    println!("\nhash-by-group-key vs round-robin at {HASH_SHARDS} shards (GROUP BY queries):\n");
    let rr_point = points.iter().find(|p| p.shards == HASH_SHARDS).expect("4-shard point");
    let mut rows = Vec::new();
    for (i, q) in s.queries.iter().enumerate() {
        if !q.has_group_by() {
            continue;
        }
        let mut cluster = ClusterEngine::new(
            SimConfig::default(),
            s.wide.clone(),
            EngineMode::OneXb,
            HASH_SHARDS,
            Partitioner::hash_by_group_keys(&q.group_by),
        )
        .expect("hash cluster construction");
        cluster.calibrate(&CalibrationConfig::default()).expect("calibration");
        let out = cluster.run(q).unwrap_or_else(|e| panic!("hash shards on {}: {e}", q.id));
        assert_eq!(
            out.groups, rr_point.executions[i].groups,
            "hash/round-robin mismatch on {}",
            q.id
        );
        let rr_ns = rr_point.executions[i].report.time_ns;
        let hash_ns = out.report.time_ns;
        rows.push(vec![
            q.id.clone(),
            bbpim_bench::fmt_ms(rr_ns),
            bbpim_bench::fmt_ms(hash_ns),
            format!("{:.2}", rr_ns / hash_ns),
        ]);
    }
    bbpim_bench::print_table(&["query", "round-robin", "hash-by-key", "rr/hash"], &rows);
}
