//! Cluster scaling study: the 13 SSB queries on a sharded multi-module
//! cluster at each shard count, plus an A/B table attributing the
//! host-channel byte diet lever by lever at the largest count.
//!
//! The default path is the normalized **star** cluster (PIM-side
//! semijoin bitmaps, two-crossbar modules) — the storage model the
//! byte diet was built for. The legacy pre-joined one-crossbar sweep,
//! including its hash-by-group-key partitioner comparison, is kept
//! behind `--prejoined`.
//!
//! Every merged answer is cross-checked against the row-at-a-time
//! oracle before it is reported. Flags: `--sf`, `--seed`, `--uniform`,
//! `--shards 1,2,4,8` for the shard counts to sweep (see
//! `bbpim_bench::BenchConfig`), and `--prejoined` for the legacy path.

use bbpim_bench::{
    fmt_ms, geomean_filtered, print_table, report_host_bytes, reports, run_cluster_scaling,
    run_star_scaling, setup, BenchConfig, ClusterScalePoint, SsbSetup,
};
use bbpim_cluster::{ClusterEngine, ClusterExecution, Partitioner};
use bbpim_core::groupby::calibration::CalibrationConfig;
use bbpim_core::modes::EngineMode;
use bbpim_join::StarCluster;
use bbpim_sim::{SimConfig, XferPolicy};

/// The lever attribution rows: each byte-diet lever switched off
/// individually against the all-on default, bracketed by the default
/// and the legacy (all-off) policy.
fn lever_rows() -> Vec<(&'static str, XferPolicy)> {
    let on = XferPolicy::default();
    vec![
        ("all-on (default)", on),
        ("compress_masks off", XferPolicy { compress_masks: false, ..on }),
        ("batch_dispatch off", XferPolicy { batch_dispatch: false, ..on }),
        ("module_reduce off", XferPolicy { module_reduce: false, ..on }),
        ("legacy (all off)", XferPolicy::legacy()),
    ]
}

/// Run all 13 queries at `shards` under `policy` on the default-path
/// engine (star unless `--prejoined`), returning the executions.
fn run_policy(
    s: &SsbSetup,
    prejoined: bool,
    mode: EngineMode,
    shards: usize,
    policy: XferPolicy,
) -> Vec<ClusterExecution> {
    if prejoined {
        let mut c = ClusterEngine::new(
            SimConfig::default(),
            s.wide.clone(),
            mode,
            shards,
            Partitioner::RoundRobin,
        )
        .expect("cluster construction");
        c.calibrate(&CalibrationConfig::default()).expect("calibration");
        c.set_xfer_policy(policy);
        s.queries
            .iter()
            .map(|q| c.run(q).unwrap_or_else(|e| panic!("{} under lever A/B: {e}", q.id)))
            .collect()
    } else {
        let mut c =
            StarCluster::new(SimConfig::default(), &s.db, mode, shards, Partitioner::RoundRobin)
                .expect("star cluster construction");
        c.set_xfer_policy(policy);
        s.queries
            .iter()
            .map(|q| c.run(q).unwrap_or_else(|e| panic!("{} under lever A/B: {e}", q.id)))
            .collect()
    }
}

/// The A/B lever table at `shards`: per configuration, mean host bytes
/// per query and the contended-wall-clock geo-mean speedup over the
/// legacy policy. Returns the all-on mean host bytes per query (the
/// `host_bytes_per_query` snapshot headline).
fn lever_table(s: &SsbSetup, prejoined: bool, mode: EngineMode, shards: usize) -> f64 {
    println!("\nhost-channel byte diet at {shards} shards, contended (per-lever attribution):\n");
    let runs: Vec<(&str, Vec<ClusterExecution>)> = lever_rows()
        .into_iter()
        .map(|(label, policy)| (label, run_policy(s, prejoined, mode, shards, policy)))
        .collect();
    let legacy = &runs.last().expect("legacy row").1;
    // answers are lever-independent; the equivalence suite enforces
    // this against the oracle, the cheap cross-check here is free
    for (label, execs) in &runs {
        for (e, l) in execs.iter().zip(legacy.iter()) {
            assert_eq!(e.groups, l.groups, "lever answer drift under {label}");
        }
    }
    let bytes_per_query = |execs: &[ClusterExecution]| {
        execs.iter().map(|e| report_host_bytes(&e.report)).sum::<u64>() as f64
            / execs.len().max(1) as f64
    };
    let legacy_bytes = bytes_per_query(legacy);
    let mut rows = Vec::new();
    for (label, execs) in &runs {
        let bytes = bytes_per_query(execs);
        let ratios: Vec<f64> = execs
            .iter()
            .zip(legacy.iter())
            .map(|(e, l)| l.report.time_ns / e.report.time_ns)
            .collect();
        let wall: f64 = execs.iter().map(|e| e.report.time_ns).sum();
        rows.push(vec![
            label.to_string(),
            format!("{bytes:.0}"),
            format!("{:.2}x", legacy_bytes / bytes.max(1.0)),
            fmt_ms(wall),
            bbpim_bench::fmt_geomean(&ratios),
        ]);
    }
    print_table(
        &["policy", "host B/query", "bytes vs legacy", "total ms", "speedup vs legacy"],
        &rows,
    );
    bytes_per_query(&runs[0].1)
}

fn main() {
    let s = setup(BenchConfig::from_args());
    let prejoined = std::env::args().any(|a| a == "--prejoined");
    let shard_counts = s.cfg.shards.clone();
    let (mode, points): (EngineMode, Vec<ClusterScalePoint>) = if prejoined {
        let m = EngineMode::OneXb;
        (m, run_cluster_scaling(&s, m, &shard_counts, &Partitioner::RoundRobin))
    } else {
        // the star path runs two-crossbar modules: dimension filters on
        // their own modules, compressed semijoin bitmaps over the bus
        let m = EngineMode::TwoXb;
        (m, run_star_scaling(&s, m, &shard_counts, &Partitioner::RoundRobin))
    };
    println!(
        "scaling path: {}\n",
        if prejoined { "pre-joined (legacy)" } else { "star (default)" }
    );
    reports::print_scaling(&s, &points, !prejoined);

    let max_shards = *shard_counts.iter().max().expect("at least one shard count");

    if prejoined {
        // Hash partitioning keeps every subgroup on one shard: the
        // merge is a disjoint union and each shard's GROUP BY sees k/n
        // subgroups. One hash cluster per GROUP BY query (the key set
        // differs), each running only its own query.
        let hash_shards = if shard_counts.contains(&4) { 4 } else { max_shards };
        println!(
            "\nhash-by-group-key vs round-robin at {hash_shards} shards (GROUP BY queries):\n"
        );
        let rr_point =
            points.iter().find(|p| p.shards == hash_shards).expect("hash-comparison shard point");
        let mut rows = Vec::new();
        for (i, q) in s.queries.iter().enumerate() {
            if !q.has_group_by() {
                continue;
            }
            let mut cluster = ClusterEngine::new(
                SimConfig::default(),
                s.wide.clone(),
                mode,
                hash_shards,
                Partitioner::hash_by_group_keys(&q.group_by),
            )
            .expect("hash cluster construction");
            cluster.calibrate(&CalibrationConfig::default()).expect("calibration");
            let out = cluster.run(q).unwrap_or_else(|e| panic!("hash shards on {}: {e}", q.id));
            assert_eq!(
                out.groups, rr_point.executions[i].groups,
                "hash/round-robin mismatch on {}",
                q.id
            );
            let rr_ns = rr_point.executions[i].report.time_ns;
            let hash_ns = out.report.time_ns;
            let ratio = rr_ns / hash_ns;
            rows.push(vec![
                q.id.clone(),
                out.report.partitioner.to_string(),
                fmt_ms(rr_ns),
                fmt_ms(hash_ns),
                // zone-pruned zero-match queries cost ~0 on both layouts
                if ratio.is_finite() { format!("{ratio:.2}") } else { "-".into() },
            ]);
        }
        print_table(&["query", "partitioner", "round-robin", "hash-by-key", "rr/hash"], &rows);
    }

    // Lever-by-lever byte attribution at the largest shard count — the
    // A/B table behind the `host_bytes_per_query` headline.
    let host_bytes_per_query = lever_table(&s, prejoined, mode, max_shards);

    // What this cluster's wide relation costs in PIM capacity next to
    // the normalized star catalog (the `join` study's storage win).
    println!();
    let catalog = bbpim_db::ssb::star::StarSchema::of_db(&s.db);
    reports::print_star_footprint(
        &catalog.footprints(&catalog.ssb_cold_attrs()),
        &bbpim_db::ssb::star::table_footprint(&s.wide, &[]),
    );

    // Machine-readable snapshot for the CI regression gate: the
    // multi-aggregate sharing headline (one 3-aggregate query vs three
    // single-aggregate runs), the contended scaling geo-mean — gated
    // absolutely at 1.0 by `bench_gate` — and the byte-diet headline.
    if let Some(path) = &s.cfg.json {
        let agg3 = bbpim_bench::run_multi_agg_saving(&s, EngineMode::OneXb, max_shards);
        let base = points.iter().min_by_key(|p| p.shards).expect("scale points");
        let top = points.iter().max_by_key(|p| p.shards).expect("scale points");
        let ratios: Vec<f64> = (0..s.queries.len())
            .map(|i| base.executions[i].report.time_ns / top.executions[i].report.time_ns)
            .collect();
        let geomean_speedup = geomean_filtered(&ratios).0.unwrap_or(1.0);
        bbpim_bench::write_snapshot(
            path,
            "scaling",
            &[
                ("agg3_energy_saving", agg3),
                ("geomean_speedup_max_shards", geomean_speedup),
                ("host_bytes_per_query", host_bytes_per_query),
                ("max_shards", max_shards as f64),
            ],
        );
    }
}
