//! Cluster scaling study: the 13 SSB queries on a sharded multi-module
//! cluster, round-robin partitioned, plus a hash-by-group-key
//! comparison at one shard count.
//!
//! Every merged answer is cross-checked against the row-at-a-time
//! oracle before it is reported. Flags: `--sf`, `--seed`, `--uniform`,
//! and `--shards 1,2,4,8` for the shard counts to sweep (see
//! `bbpim_bench::BenchConfig`); the hash comparison runs at 4 shards
//! when swept, otherwise at the largest requested count.

use bbpim_bench::{reports, run_cluster_scaling, setup, BenchConfig};
use bbpim_cluster::{ClusterEngine, Partitioner};
use bbpim_core::groupby::calibration::CalibrationConfig;
use bbpim_core::modes::EngineMode;
use bbpim_sim::SimConfig;

fn main() {
    let s = setup(BenchConfig::from_args());
    let shard_counts = s.cfg.shards.clone();
    let points =
        run_cluster_scaling(&s, EngineMode::OneXb, &shard_counts, &Partitioner::RoundRobin);
    reports::print_scaling(&s, &points);

    // Hash partitioning keeps every subgroup on one shard: the merge is
    // a disjoint union and each shard's GROUP BY sees k/n subgroups.
    // One hash cluster per GROUP BY query (the key set differs), each
    // running only its own query.
    let hash_shards = if shard_counts.contains(&4) {
        4
    } else {
        *shard_counts.iter().max().expect("at least one shard count")
    };
    println!("\nhash-by-group-key vs round-robin at {hash_shards} shards (GROUP BY queries):\n");
    let rr_point =
        points.iter().find(|p| p.shards == hash_shards).expect("hash-comparison shard point");
    let mut rows = Vec::new();
    for (i, q) in s.queries.iter().enumerate() {
        if !q.has_group_by() {
            continue;
        }
        let mut cluster = ClusterEngine::new(
            SimConfig::default(),
            s.wide.clone(),
            EngineMode::OneXb,
            hash_shards,
            Partitioner::hash_by_group_keys(&q.group_by),
        )
        .expect("hash cluster construction");
        cluster.calibrate(&CalibrationConfig::default()).expect("calibration");
        let out = cluster.run(q).unwrap_or_else(|e| panic!("hash shards on {}: {e}", q.id));
        assert_eq!(
            out.groups, rr_point.executions[i].groups,
            "hash/round-robin mismatch on {}",
            q.id
        );
        let rr_ns = rr_point.executions[i].report.time_ns;
        let hash_ns = out.report.time_ns;
        let ratio = rr_ns / hash_ns;
        rows.push(vec![
            q.id.clone(),
            out.report.partitioner.to_string(),
            bbpim_bench::fmt_ms(rr_ns),
            bbpim_bench::fmt_ms(hash_ns),
            // zone-pruned zero-match queries cost ~0 on both layouts
            if ratio.is_finite() { format!("{ratio:.2}") } else { "-".into() },
        ]);
    }
    bbpim_bench::print_table(
        &["query", "partitioner", "round-robin", "hash-by-key", "rr/hash"],
        &rows,
    );

    // What this cluster's wide relation costs in PIM capacity next to
    // the normalized star catalog (the `join` study's storage win).
    println!();
    let catalog = bbpim_db::ssb::star::StarSchema::of_db(&s.db);
    reports::print_star_footprint(
        &catalog.footprints(&catalog.ssb_cold_attrs()),
        &bbpim_db::ssb::star::table_footprint(&s.wide, &[]),
    );

    // Machine-readable snapshot for the CI regression gate: the
    // multi-aggregate sharing headline (one 3-aggregate query vs three
    // single-aggregate runs) plus the scaling geo-mean.
    if let Some(path) = &s.cfg.json {
        let max_shards = *shard_counts.iter().max().expect("at least one shard count");
        let agg3 = bbpim_bench::run_multi_agg_saving(&s, EngineMode::OneXb, max_shards);
        let base = points.iter().min_by_key(|p| p.shards).expect("scale points");
        let top = points.iter().max_by_key(|p| p.shards).expect("scale points");
        let ratios: Vec<f64> = (0..s.queries.len())
            .map(|i| base.executions[i].report.time_ns / top.executions[i].report.time_ns)
            .collect();
        let geomean_speedup = bbpim_bench::geomean_filtered(&ratios).0.unwrap_or(1.0);
        bbpim_bench::write_snapshot(
            path,
            "scaling",
            &[
                ("agg3_energy_saving", agg3),
                ("geomean_speedup_max_shards", geomean_speedup),
                ("max_shards", max_shards as f64),
            ],
        );
    }
}
