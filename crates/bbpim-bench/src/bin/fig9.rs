//! Fig. 9: required cell endurance for 10 years of back-to-back runs.

use bbpim_bench::reports::print_fig9;
use bbpim_bench::{pim_runs, setup, BenchConfig};

fn main() {
    let s = setup(BenchConfig::from_args());
    let pim = pim_runs(&s);
    print_fig9(&s, &pim);
}
