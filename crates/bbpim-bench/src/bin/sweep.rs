//! Scale-factor sweep: how the paper's headline ratios and the hybrid
//! GROUP-BY decisions evolve with relation size (M).
//!
//! The paper evaluates one point (SF = 10, M = 1832 pages). This sweep
//! shows the trend that leads there: host-gb cost grows with M while
//! pim-gb per subgroup stays nearly flat, so PIM-aggregated subgroup
//! counts and the one_xb advantage both grow with scale.

use bbpim_bench::{geomean, pim_runs, print_table, run_monet, setup, speedups, BenchConfig};

fn main() {
    let base = BenchConfig::from_args();
    let sfs = [0.02f64, 0.05, 0.1];
    println!("Scale sweep ({} data)\n", if base.skewed { "skewed" } else { "uniform" });
    let mut rows = Vec::new();
    for sf in sfs {
        let mut cfg = base.clone();
        cfg.sf = sf;
        eprintln!("sf={sf}: generating + running…");
        let s = setup(cfg);
        let pim = pim_runs(&s);
        let mnt_join = run_monet(&s, true, 3);

        let one: Vec<f64> = pim[0].executions.iter().map(|e| e.report.time_ns).collect();
        let pdb: Vec<f64> = pim[2].executions.iter().map(|e| e.report.time_ns).collect();
        let mj: Vec<f64> = mnt_join.results.iter().map(|(d, _)| d.as_nanos() as f64).collect();
        let total_k: u64 = pim[0].executions.iter().map(|e| e.report.pim_agg_subgroups).sum();
        let pages = pim[0].executions[0].report.pages;
        rows.push(vec![
            format!("{sf}"),
            pages.to_string(),
            format!("{:.2}x", geomean(&speedups(&one, &mj))),
            format!("{:.2}x", geomean(&speedups(&one, &pdb))),
            total_k.to_string(),
        ]);
    }
    print_table(
        &["SF", "pages (M)", "one_xb vs mnt_join", "one_xb vs pimdb", "sum of k (one_xb)"],
        &rows,
    );
    println!("\npaper at SF=10 (M=1832): one_xb vs mnt_join 4.65x, vs pimdb 1.83x,");
    println!("and k>0 for Q1.x plus several GROUP BY queries (Table II).");
}
