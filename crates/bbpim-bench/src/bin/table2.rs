//! Table II: per-query selectivity and subgroup statistics.

use bbpim_bench::reports::print_table2;
use bbpim_bench::{pim_runs, setup, BenchConfig};

fn main() {
    let s = setup(BenchConfig::from_args());
    let pim = pim_runs(&s);
    print_table2(&s, &pim);
}
