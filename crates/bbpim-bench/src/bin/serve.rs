//! Multi-tenant serving study: the three-tenant mix (`light` probes
//! with a tight p95 promise, `heavy` deadline-carrying scans offered at
//! 2–10× capacity behind a token bucket, `batch` closed-loop clients)
//! played through `bbpim-serve` on a range-partitioned cluster.
//!
//! Per overload multiple the closed-loop AIMD window runs; at the gate
//! overload (4×) a static-window sweep runs beside it — the operator's
//! fixed-knob alternative. Reports per-tenant p50/p95/p99/p999,
//! goodput, drop/throttle counts and the SLO verdict, plus each AIMD
//! row's window trajectory. Every served answer is checked
//! bit-identical against `run_batch` over the tenant query set.
//!
//! Flags: `--sf`, `--seed`, `--uniform`, `--shards 8` (the largest
//! listed count runs), `--arrivals 26` (per open tenant), `--inflight
//! 4` (the AIMD initial window and the legacy knob), plus the
//! observability outputs — `--trace <path>` writes a Chrome/Perfetto
//! `trace_event` JSON of the gate-overload AIMD session (tenant
//! arrivals/admissions/sheds on a `serve` track, bus grants, module
//! windows, and the in-flight window on a `controller` counter track)
//! with a flat-JSONL sidecar, and `--metrics <path>` writes the
//! `bbpim_tenant_*` registry snapshot (flat JSON) with a
//! Prometheus-text sidecar.
//!
//! The `--json` snapshot carries the gate headlines CI watches:
//! `heavy_tenant_goodput` (regression-gated) and
//! `light_p95_within_slo` (absolute floor 1.0 — the promise either
//! held or it did not).

use bbpim_bench::{reports, run_serve_study_observed, setup, BenchConfig};
use bbpim_core::modes::EngineMode;
use bbpim_trace::export::{jsonl, perfetto_json};
use bbpim_trace::{MetricsRegistry, TraceRecorder};

/// Overload multiples the AIMD rows sweep.
const OVERLOADS: &[f64] = &[2.0, 4.0, 10.0];
/// The overload whose rows feed the gate headlines and static sweep.
const GATE_OVERLOAD: f64 = 4.0;
/// Static windows swept at the gate overload.
const STATIC_WINDOWS: &[usize] = &[1, 2, 4, 8, 16];

/// Write `body` to `path`, creating parent directories as needed.
fn write_out(path: &str, body: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("output directory");
        }
    }
    std::fs::write(path, body).expect("output write");
}

/// `path` with its extension replaced by `ext` (the sidecar naming).
fn sibling(path: &str, ext: &str) -> String {
    std::path::Path::new(path).with_extension(ext).to_string_lossy().into_owned()
}

fn main() {
    let s = setup(BenchConfig::from_args());
    let shards = s.cfg.shards.iter().copied().max().unwrap_or(8);
    let mut trace =
        if s.cfg.trace.is_some() { TraceRecorder::enabled() } else { TraceRecorder::disabled() };
    let mut reg = MetricsRegistry::new();
    let study = run_serve_study_observed(
        &s,
        EngineMode::OneXb,
        shards,
        OVERLOADS,
        GATE_OVERLOAD,
        STATIC_WINDOWS,
        &mut trace,
        &mut reg,
    );
    reports::print_serve(&s, &study);

    if let Some(path) = &s.cfg.trace {
        write_out(path, &perfetto_json(&trace));
        let flat = sibling(path, "jsonl");
        write_out(&flat, &jsonl(&trace));
        println!("\nwrote Perfetto trace to {path} ({} events; flat JSONL: {flat})", trace.len());
    }
    if let Some(path) = &s.cfg.metrics {
        write_out(path, &reg.snapshot_json());
        let prom = sibling(path, "prom");
        write_out(&prom, &reg.prometheus_text());
        println!("\nwrote metrics snapshot to {path} (Prometheus text: {prom})");
    }

    // Machine-readable snapshot for the CI regression gate, read from
    // the study's gate row: heavy-tenant goodput under AIMD (gated
    // against the baseline), the light tenant's promise as a 0/1 floor,
    // and the adaptive-vs-fixed comparison as context.
    if let Some(path) = &s.cfg.json {
        let gate = study.gate_row();
        let light = gate.report("light");
        let heavy = gate.report("heavy");
        let (best_policy, best_goodput) =
            study.best_static_heavy_goodput().unwrap_or(("none".into(), 0.0));
        println!(
            "\n  gate row ({:.0}x aimd): light p95 {:.3} ms vs promise {:.3} ms ({}), heavy \
             goodput {:.1}/s vs best static ({best_policy}) {best_goodput:.1}/s",
            study.gate_overload,
            light.latency.p95_ns / 1e6,
            light.p95_target_ns / 1e6,
            if light.slo_met { "met" } else { "MISSED" },
            heavy.goodput_qps,
        );
        bbpim_bench::write_snapshot(
            path,
            "serve",
            &[
                ("heavy_tenant_goodput", heavy.goodput_qps),
                ("light_p95_within_slo", if light.slo_met { 1.0 } else { 0.0 }),
                ("light_p95_ms", light.latency.p95_ns / 1e6),
                ("heavy_drop_rate", heavy.drop_rate),
                (
                    "aimd_vs_best_static_goodput",
                    if best_goodput > 0.0 { heavy.goodput_qps / best_goodput } else { 1.0 },
                ),
                ("final_window", gate.outcome.final_window() as f64),
                ("gate_overload", study.gate_overload),
            ],
        );
    }
}
