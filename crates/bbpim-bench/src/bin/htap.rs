//! HTAP streaming-ingest study: the same seeded query pressure played
//! through the scheduler twice on a range-partitioned cluster — a
//! pure-query baseline at the configured load, then a mixed row at 2×
//! that load with 25% mutation arrivals (a point UPDATE, a DNF UPDATE
//! and an INSERT, all v2 `Mutation`s) riding the same shared host bus.
//!
//! Reports per-row query and mutation latency percentiles,
//! backpressure stall counters, and the per-workload endurance wear
//! table (accumulated cell writes and 10-year required endurance per
//! lane — UPDATE-heavy streams wear modules unevenly). Every streamed
//! answer in both rows is verified bit-identical against a
//! prefix-replay oracle; the verdict lands in the snapshot as
//! `snapshot_consistency`, an absolute 0/1 floor in the CI gate.
//!
//! Flags: `--sf`, `--seed`, `--uniform`, `--shards 8` (the largest
//! listed count runs), `--arrivals 52`, `--load 2.0`, `--inflight 4`,
//! plus the observability outputs — `--trace <path>` writes a
//! Chrome/Perfetto `trace_event` JSON of the ingest row (mutation
//! chains queue on the bus track between query slices) with a
//! flat-JSONL sidecar, and `--metrics <path>` writes the registry
//! snapshot (`run=pure` / `run=htap` series, including the
//! `bbpim_ingest_*` surface) with a Prometheus-text sidecar.
//!
//! The `--json` snapshot carries the gate headlines CI watches:
//! `query_p95_under_ingest` (baseline p95 over under-ingest p95,
//! regression-gated) and `snapshot_consistency` (absolute floor 1.0 —
//! a query that answers from no well-defined snapshot is wrong, not
//! slow).

use bbpim_bench::{reports, run_htap_study_observed, setup, BenchConfig};
use bbpim_core::modes::EngineMode;
use bbpim_trace::export::{jsonl, perfetto_json};
use bbpim_trace::{MetricsRegistry, TraceRecorder};

/// Write `body` to `path`, creating parent directories as needed.
fn write_out(path: &str, body: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("output directory");
        }
    }
    std::fs::write(path, body).expect("output write");
}

/// `path` with its extension replaced by `ext` (the sidecar naming).
fn sibling(path: &str, ext: &str) -> String {
    std::path::Path::new(path).with_extension(ext).to_string_lossy().into_owned()
}

fn main() {
    let s = setup(BenchConfig::from_args());
    let shards = s.cfg.shards.iter().copied().max().unwrap_or(8);
    let mut trace =
        if s.cfg.trace.is_some() { TraceRecorder::enabled() } else { TraceRecorder::disabled() };
    let mut reg = MetricsRegistry::new();
    let study = run_htap_study_observed(&s, EngineMode::OneXb, shards, &mut trace, &mut reg);
    reports::print_htap(&s, &study);

    if let Some(path) = &s.cfg.trace {
        write_out(path, &perfetto_json(&trace));
        let flat = sibling(path, "jsonl");
        write_out(&flat, &jsonl(&trace));
        println!("\nwrote Perfetto trace to {path} ({} events; flat JSONL: {flat})", trace.len());
    }
    if let Some(path) = &s.cfg.metrics {
        write_out(path, &reg.snapshot_json());
        let prom = sibling(path, "prom");
        write_out(&prom, &reg.prometheus_text());
        println!("\nwrote metrics snapshot to {path} (Prometheus text: {prom})");
    }

    if let Some(path) = &s.cfg.json {
        let pure = study.row("pure-query");
        let htap = study.row("htap");
        let consistent = study.rows.iter().all(|r| r.snapshot_consistent);
        println!(
            "\n  gate: query p95 {} -> {} under ingest (ratio {:.3}), snapshots {}",
            bbpim_bench::fmt_ms(pure.outcome.latency_summary().p95_ns),
            bbpim_bench::fmt_ms(htap.outcome.latency_summary().p95_ns),
            study.query_p95_under_ingest(),
            if consistent { "consistent" } else { "INCONSISTENT" },
        );
        bbpim_bench::write_snapshot(
            path,
            "htap",
            &[
                ("query_p95_under_ingest", study.query_p95_under_ingest()),
                ("snapshot_consistency", if consistent { 1.0 } else { 0.0 }),
                ("pure_query_p95_ms", pure.outcome.latency_summary().p95_ns / 1e6),
                ("htap_query_p95_ms", htap.outcome.latency_summary().p95_ns / 1e6),
                ("mutation_p95_ms", htap.outcome.mutation_latency_summary().p95_ns / 1e6),
                ("records_written", htap.records_written as f64),
                ("ingest_stalls", htap.outcome.ingest_stalls as f64),
                (
                    "max_required_endurance",
                    htap.outcome.shard_required_endurance.iter().copied().fold(0.0, f64::max),
                ),
            ],
        );
    }
}
