//! Zone-map pruning study: pruned vs exhaustive dispatch over all 13
//! SSB queries on a `RangeByAttr(d_year)` cluster at several shard
//! counts.
//!
//! Range placement on `d_year` makes shard zone maps narrow on the
//! attribute Q1.x/Q3.x/Q4.x constrain, so the planner skips most shards
//! pre-scatter and most pages inside the survivors; Q2.x (no date
//! filter) shows the no-pruning baseline behaviour. Both executions of
//! every query are cross-checked against the row-at-a-time oracle.
//!
//! Flags: `--sf`, `--seed`, `--uniform`, `--shards 1,4,8` (see
//! `bbpim_bench::BenchConfig`).

use bbpim_bench::{reports, run_pruning_study, setup, BenchConfig};
use bbpim_core::modes::EngineMode;

/// The range-partitioning attribute: the dimension attribute SSB's
/// selective filters constrain most often.
const RANGE_ATTR: &str = "d_year";

fn main() {
    let s = setup(BenchConfig::from_args());
    let shard_counts = s.cfg.shards.clone();
    let points = run_pruning_study(&s, EngineMode::OneXb, &shard_counts, RANGE_ATTR);
    reports::print_pruning(&s, &points);

    // Machine-readable snapshot for the CI regression gate: the
    // pruned-vs-exhaustive wall-clock headline at the largest shard
    // count (geo-mean over queries the planner did not answer alone).
    if let Some(path) = &s.cfg.json {
        let top = points.iter().max_by_key(|p| p.shards).expect("at least one shard count");
        let wall: Vec<f64> = (0..s.queries.len())
            .filter(|&i| top.pruned[i].report.time_ns > 0.0)
            .map(|i| top.exhaustive[i].report.time_ns / top.pruned[i].report.time_ns)
            .collect();
        let energy: Vec<f64> = (0..s.queries.len())
            .filter(|&i| top.pruned[i].report.energy_pj > 0.0)
            .map(|i| top.exhaustive[i].report.energy_pj / top.pruned[i].report.energy_pj)
            .collect();
        bbpim_bench::write_snapshot(
            path,
            "pruning",
            &[
                ("wall_clock_speedup", bbpim_bench::geomean_filtered(&wall).0.unwrap_or(1.0)),
                ("energy_saving", bbpim_bench::geomean_filtered(&energy).0.unwrap_or(1.0)),
                ("max_shards", top.shards as f64),
            ],
        );
    }
}
