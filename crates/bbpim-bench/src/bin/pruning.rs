//! Zone-map pruning study: pruned vs exhaustive dispatch over all 13
//! SSB queries on a `RangeByAttr(d_year)` cluster at several shard
//! counts.
//!
//! Range placement on `d_year` makes shard zone maps narrow on the
//! attribute Q1.x/Q3.x/Q4.x constrain, so the planner skips most shards
//! pre-scatter and most pages inside the survivors; Q2.x (no date
//! filter) shows the no-pruning baseline behaviour. Both executions of
//! every query are cross-checked against the row-at-a-time oracle.
//!
//! Flags: `--sf`, `--seed`, `--uniform`, `--shards 1,4,8` (see
//! `bbpim_bench::BenchConfig`).

use bbpim_bench::{reports, run_pruning_study, setup, BenchConfig};
use bbpim_core::modes::EngineMode;

/// The range-partitioning attribute: the dimension attribute SSB's
/// selective filters constrain most often.
const RANGE_ATTR: &str = "d_year";

fn main() {
    let s = setup(BenchConfig::from_args());
    let shard_counts = s.cfg.shards.clone();
    let points = run_pruning_study(&s, EngineMode::OneXb, &shard_counts, RANGE_ATTR);
    reports::print_pruning(&s, &points);
}
