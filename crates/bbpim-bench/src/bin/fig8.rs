//! Fig. 8: peak power per PIM chip.

use bbpim_bench::reports::print_fig8;
use bbpim_bench::{pim_runs, setup, BenchConfig};

fn main() {
    let s = setup(BenchConfig::from_args());
    let pim = pim_runs(&s);
    print_fig8(&s, &pim);
}
