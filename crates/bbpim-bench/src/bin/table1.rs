//! Table I: architecture and system configuration.

use bbpim_bench::print_table;
use bbpim_sim::SimConfig;

fn main() {
    let cfg = SimConfig::default();
    println!("Table I — architecture and system configuration\n");
    println!("Single RRAM PIM module");
    print_table(
        &["parameter", "value"],
        &[
            vec!["total capacity".into(), format!("{} GiB", cfg.module_capacity_bytes >> 30)],
            vec!["huge page size".into(), format!("{} MiB", cfg.page_bytes >> 20)],
            vec!["memory ranks".into(), "1".into()],
            vec!["PIM chips".into(), cfg.chips.to_string()],
            vec!["crossbar rows".into(), cfg.crossbar_rows.to_string()],
            vec!["crossbar columns".into(), cfg.crossbar_cols.to_string()],
            vec!["crossbar read".into(), format!("{} bit", cfg.read_width_bits)],
            vec!["bulk-bitwise logic cycle".into(), format!("{} ns", cfg.logic_cycle_ns)],
            vec![
                "crossbar read/write energy".into(),
                format!("{}\\{} pJ/bit", cfg.read_energy_pj_per_bit, cfg.write_energy_pj_per_bit),
            ],
            vec![
                "bulk-bitwise logic energy".into(),
                format!("{} fJ/bit", cfg.logic_energy_fj_per_bit),
            ],
            vec!["single agg. circuit power".into(), format!("{} uW", cfg.agg_circuit_power_uw)],
            vec!["single PIM controller power".into(), format!("{} uW", cfg.controller_power_uw)],
        ],
    );
    println!("\nDerived geometry");
    print_table(
        &["parameter", "value"],
        &[
            vec!["crossbars per page".into(), cfg.crossbars_per_page().to_string()],
            vec!["records per page".into(), cfg.records_per_page().to_string()],
            vec!["pages per module".into(), cfg.module_pages().to_string()],
            vec!["page crossbars per chip".into(), cfg.page_crossbars_per_chip().to_string()],
        ],
    );
    println!("\nEvaluation system (host)");
    print_table(
        &["parameter", "value"],
        &[
            vec!["worker threads".into(), cfg.host.threads.to_string()],
            vec!["cache line".into(), format!("{} B", cfg.host.line_bytes)],
            vec!["DRAM latency".into(), format!("{} ns", cfg.host.dram_latency_ns)],
            vec![
                "DRAM bandwidth".into(),
                format!("{} GiB/s (DDR4-2400)", cfg.host.dram_bandwidth_gib_s),
            ],
            vec!["memory-level parallelism".into(), format!("{}", cfg.host.mlp)],
            vec!["host clock".into(), format!("{} GHz", cfg.host.clock_ghz)],
        ],
    );
}
