//! Micro-benchmarks of the crossbar substrate: MAGIC gate execution,
//! multi-input NOR, aggregation-circuit application.

use bbpim_sim::aggcircuit::AggRequest;
use bbpim_sim::compiler::reduce::ReduceOp;
use bbpim_sim::compiler::ColRange;
use bbpim_sim::crossbar::Crossbar;
use bbpim_sim::isa::Microprogram;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn paper_crossbar() -> Crossbar {
    let mut xb = Crossbar::new(1024, 512);
    for r in 0..1024 {
        xb.write_row_bits(r, 0, 32, (r as u64).wrapping_mul(2654435761) & 0xFFFF_FFFF);
        xb.bits_mut_unaccounted().set(r, 40, r % 3 == 0);
    }
    xb
}

fn bench_gate_program(c: &mut Criterion) {
    let mut prog = Microprogram::new();
    // a representative 100-gate filter-sized program
    for i in 0..100 {
        prog.gate_nor(i % 32, (i + 1) % 32, 64 + (i % 64));
    }
    c.bench_function("crossbar/100_gate_program_1024x512", |b| {
        let mut xb = paper_crossbar();
        b.iter(|| {
            black_box(xb.execute(&prog).unwrap());
        })
    });
}

fn bench_multi_nor(c: &mut Criterion) {
    let mut prog = Microprogram::new();
    prog.init_col(100);
    prog.nor_many_cols((0..24).collect(), 100);
    c.bench_function("crossbar/24_input_nor", |b| {
        let mut xb = paper_crossbar();
        b.iter(|| {
            black_box(xb.execute(&prog).unwrap());
        })
    });
}

fn bench_agg_circuit(c: &mut Criterion) {
    let req = AggRequest {
        op: ReduceOp::Sum,
        value: ColRange::new(0, 32),
        mask_col: 40,
        dst_row: 0,
        dst: ColRange::new(448, 48),
    };
    c.bench_function("crossbar/agg_circuit_apply_1024_rows", |b| {
        let mut xb = paper_crossbar();
        b.iter(|| {
            black_box(req.apply(&mut xb).unwrap());
        })
    });
}

criterion_group!(benches, bench_gate_program, bench_multi_nor, bench_agg_circuit);
criterion_main!(benches);
