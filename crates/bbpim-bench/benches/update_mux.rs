//! UPDATE via the PIM multiplexer (Algorithm 1), end to end.

use bbpim_core::engine::PimQueryEngine;
use bbpim_core::modes::EngineMode;
use bbpim_core::mutation::Mutation;
use bbpim_db::builder::col;
use bbpim_db::schema::{Attribute, Schema};
use bbpim_db::Relation;
use bbpim_sim::SimConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn relation() -> Relation {
    let schema =
        Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_city", 8)]);
    let mut rel = Relation::new(schema);
    for i in 0..4000u64 {
        rel.push_row(&[i % 256, i % 250]).unwrap();
    }
    rel
}

fn bench_update(c: &mut Criterion) {
    let mut engine =
        PimQueryEngine::new(SimConfig::small_for_tests(), relation(), EngineMode::OneXb).unwrap();
    let fwd =
        Mutation::update().filter(col("d_city").eq(17u64)).set("d_city", 18u64).build_unchecked();
    let back =
        Mutation::update().filter(col("d_city").eq(18u64)).set("d_city", 17u64).build_unchecked();
    c.bench_function("update/mux_filter_plus_rewrite", |b| {
        b.iter(|| {
            black_box(engine.mutate(&fwd).unwrap());
            black_box(engine.mutate(&back).unwrap());
        })
    });
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
