//! Baseline engine wall-clock on representative SSB queries.

use bbpim_bench::{setup, BenchConfig};
use bbpim_monet::MonetEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_monet(c: &mut Criterion) {
    let cfg = BenchConfig { sf: 0.01, skewed: false, ..BenchConfig::default() };
    let s = setup(cfg);
    let join_engine = MonetEngine::prejoined(&s.wide, 4);
    let star_engine = MonetEngine::star(&s.db, 4);
    for (idx, name) in [(0usize, "q1.1"), (3, "q2.1"), (6, "q3.1")] {
        let q = s.queries[idx].clone();
        c.bench_function(&format!("monet/{name}_mnt_join_sf0.01"), |b| {
            b.iter(|| black_box(join_engine.run(&q).unwrap()))
        });
        c.bench_function(&format!("monet/{name}_mnt_reg_sf0.01"), |b| {
            b.iter(|| black_box(star_engine.run(&q).unwrap()))
        });
    }
}

criterion_group!(benches, bench_monet);
criterion_main!(benches);
