//! Simulator throughput: a full SSB query end-to-end on a small
//! instance (how fast the *simulation* runs, not the simulated time).

use bbpim_bench::{setup, BenchConfig};
use bbpim_core::engine::PimQueryEngine;
use bbpim_core::groupby::calibration::CalibrationConfig;
use bbpim_core::modes::EngineMode;
use bbpim_sim::SimConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_q11_one_xb(c: &mut Criterion) {
    let cfg = BenchConfig { sf: 0.005, skewed: false, ..BenchConfig::default() };
    let s = setup(cfg);
    let mut engine =
        PimQueryEngine::new(SimConfig::default(), s.wide.clone(), EngineMode::OneXb).unwrap();
    engine.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
    let q = s.queries[0].clone(); // Q1.1
    let mut group = c.benchmark_group("pim_query");
    group.sample_size(10);
    group.bench_function("q1.1_one_xb_sf0.005", |b| b.iter(|| black_box(engine.run(&q).unwrap())));
    group.finish();
}

fn bench_q21_groupby(c: &mut Criterion) {
    let cfg = BenchConfig { sf: 0.005, skewed: false, ..BenchConfig::default() };
    let s = setup(cfg);
    let mut engine =
        PimQueryEngine::new(SimConfig::default(), s.wide.clone(), EngineMode::OneXb).unwrap();
    engine.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
    let q = s.queries[3].clone(); // Q2.1
    let mut group = c.benchmark_group("pim_query");
    group.sample_size(10);
    group.bench_function("q2.1_one_xb_sf0.005", |b| b.iter(|| black_box(engine.run(&q).unwrap())));
    group.finish();
}

criterion_group!(benches, bench_q11_one_xb, bench_q21_groupby);
criterion_main!(benches);
