//! The two GROUP-BY paths head-to-head: per-subgroup pim-gb versus a
//! full host-gb pass (simulation throughput on the small geometry).

use bbpim_core::agg_exec::materialize_expr;
use bbpim_core::filter_exec::run_filter;
use bbpim_core::groupby::host_gb::{run_host_gb, HostGbRequest};
use bbpim_core::groupby::pim_gb::{run_pim_gb, PreparedAgg};
use bbpim_core::layout::RecordLayout;
use bbpim_core::loader::load_relation;
use bbpim_core::modes::EngineMode;
use bbpim_core::planner::PageSet;
use bbpim_db::plan::{AggExpr, PhysAgg, PhysFunc};
use bbpim_db::schema::{Attribute, Schema};
use bbpim_db::Relation;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;
use bbpim_sim::SimConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

type Setup =
    (PimModule, RecordLayout, bbpim_core::loader::LoadedRelation, bbpim_core::agg_exec::AggInput);

fn setup() -> Setup {
    let cfg = SimConfig::small_for_tests();
    let schema =
        Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_g", 4)]);
    let mut rel = Relation::new(schema);
    for i in 0..2000u64 {
        rel.push_row(&[i % 251, i % 9]).unwrap();
    }
    let layout = RecordLayout::build(rel.schema(), &cfg, EngineMode::OneXb, &[]).unwrap();
    let mut module = PimModule::new(cfg);
    let loaded = load_relation(&mut module, &rel, &layout).unwrap();
    let mut log = RunLog::new();
    let pages = PageSet::all(loaded.page_count());
    run_filter(&mut module, &layout, &loaded, &[Vec::new()], &pages, &mut log).unwrap();
    let input = materialize_expr(
        &mut module,
        &layout,
        &loaded,
        &pages,
        &AggExpr::Attr("lo_v".into()),
        &mut log,
    )
    .unwrap();
    (module, layout, loaded, input)
}

fn bench_pim_gb(c: &mut Criterion) {
    let (mut module, layout, loaded, input) = setup();
    let gp = vec![("d_g".to_string(), layout.placement("d_g").unwrap())];
    c.bench_function("groupby/pim_gb_one_subgroup", |b| {
        b.iter(|| {
            let mut log = RunLog::new();
            black_box(
                run_pim_gb(
                    &mut module,
                    &layout,
                    &loaded,
                    &PageSet::all(loaded.page_count()),
                    EngineMode::OneXb,
                    &gp,
                    &[vec![3u64]],
                    &[PreparedAgg::Reduce { func: PhysFunc::Sum, input }],
                    input.scratch_left,
                    &mut log,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_host_gb(c: &mut Criterion) {
    let (mut module, layout, loaded, _input) = setup();
    let gp = vec![("d_g".to_string(), layout.placement("d_g").unwrap())];
    let aggs = vec![PhysAgg { func: PhysFunc::Sum, expr: Some(AggExpr::attr("lo_v")) }];
    let skip = HashSet::new();
    c.bench_function("groupby/host_gb_full_pass", |b| {
        b.iter(|| {
            let mut log = RunLog::new();
            let req = HostGbRequest { group_placements: &gp, aggs: &aggs, skip: &skip };
            let pages = PageSet::all(loaded.page_count());
            black_box(run_host_gb(&mut module, &layout, &loaded, &pages, &req, &mut log).unwrap())
        })
    });
}

criterion_group!(benches, bench_pim_gb, bench_host_gb);
criterion_main!(benches);
