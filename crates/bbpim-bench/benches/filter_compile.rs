//! Micro-benchmarks of the predicate/arithmetic compilers.

use bbpim_sim::compiler::{arith, predicate, CodeBuilder, ColRange, ScratchPool};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const ATTR: ColRange = ColRange { lo: 32, width: 20 };
const RHS: ColRange = ColRange { lo: 64, width: 4 };
const DST: ColRange = ColRange { lo: 96, width: 24 };
const SCRATCH: ColRange = ColRange { lo: 200, width: 200 };

fn bench_eq(c: &mut Criterion) {
    c.bench_function("compile/eq_20bit", |b| {
        b.iter(|| {
            let mut pool = ScratchPool::new(SCRATCH);
            let mut builder = CodeBuilder::new(&mut pool);
            black_box(predicate::compile_eq_const(&mut builder, ATTR, 0xABCDE).unwrap());
            black_box(builder.finish())
        })
    });
}

fn bench_between(c: &mut Criterion) {
    c.bench_function("compile/between_20bit", |b| {
        b.iter(|| {
            let mut pool = ScratchPool::new(SCRATCH);
            let mut builder = CodeBuilder::new(&mut pool);
            black_box(predicate::compile_between_const(&mut builder, ATTR, 1000, 200_000).unwrap());
            black_box(builder.finish())
        })
    });
}

fn bench_mul(c: &mut Criterion) {
    c.bench_function("compile/mul_20x4", |b| {
        b.iter(|| {
            let mut pool = ScratchPool::new(SCRATCH);
            let mut builder = CodeBuilder::new(&mut pool);
            arith::compile_mul(&mut builder, ATTR, RHS, DST).unwrap();
            black_box(builder.finish())
        })
    });
}

criterion_group!(benches, bench_eq, bench_between, bench_mul);
criterion_main!(benches);
