//! `EXPLAIN`-style physical-plan statistics.
//!
//! [`crate::ClusterEngine::explain`] runs the zone-map planner — shard
//! admission plus per-page candidate sets inside admitted shards —
//! without executing anything, and returns what *would* be dispatched.
//! This is the planner side of the reports the journal extension
//! motivates: for selective queries the interesting number is not the
//! PIM time but how many pages the host never has to orchestrate.

use bbpim_sim::timeline::PhaseKind;

use crate::engine::ClusterReport;

/// One shard's slice of a query plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Configured shard index (empty shards never appear).
    pub shard_index: usize,
    /// Records this shard holds.
    pub records: usize,
    /// Pages this shard holds (per partition).
    pub pages: usize,
    /// Pages the page-level planner would activate (0 when the shard is
    /// pruned pre-scatter).
    pub candidate_pages: usize,
    /// Would the shard be dispatched at all? `false` means its zone map
    /// proves the filter matches nothing it holds.
    pub dispatched: bool,
}

/// One dimension-bitmap transfer of a star join: the host reads the
/// filtered key bitmap off the dimension module once, compressed, and
/// broadcasts it to every fact shard in one grant. `raw_bytes` vs
/// `wire_bytes` is the saving the compressed wire format buys over a
/// bit-packed bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTransfer {
    /// Dimension table name.
    pub dimension: String,
    /// Which DNF disjunct of the filter this semijoin belongs to.
    pub disjunct: usize,
    /// Keys the dimension filter selected.
    pub keys_selected: u64,
    /// Size of the dimension's dense key space.
    pub key_space: u64,
    /// Bit-packed bitmap payload, bytes.
    pub raw_bytes: u64,
    /// Bytes actually crossing the channel (header + the smaller of
    /// bit-packed and run-length encodings).
    pub wire_bytes: u64,
    /// Fact shards the single broadcast grant reaches.
    pub broadcast_shards: usize,
}

/// Planner estimate of the host-channel bytes one query moves, by
/// category — the byte diet's itemised bill. Dispatch bytes are exact
/// (descriptor header plus run list, per partition, per dispatched
/// shard; zero under legacy per-page doorbells, which carry no
/// descriptor payload). Mask bytes are the wire-format ceiling of each
/// inter-partition mask transfer (header + bit-packed payload, both
/// channel directions; the RLE encoding can only shrink it further).
/// Result bytes assume one 64-bit accumulator per physical aggregate,
/// read back in read-width chunks — per shard under module-side
/// reduction, per candidate page without it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostBytes {
    /// Batched dispatch descriptor payloads.
    pub dispatch_bytes: u64,
    /// Filter / semijoin mask transfers (read + write/broadcast).
    pub mask_wire_bytes: u64,
    /// Aggregate result partials read back by the host.
    pub result_bytes: u64,
}

impl HostBytes {
    /// Sum over the three categories.
    pub fn total(&self) -> u64 {
        self.dispatch_bytes + self.mask_wire_bytes + self.result_bytes
    }

    /// Accumulate another shard's contribution.
    pub fn absorb(&mut self, other: &HostBytes) {
        self.dispatch_bytes += other.dispatch_bytes;
        self.mask_wire_bytes += other.mask_wire_bytes;
        self.result_bytes += other.result_bytes;
    }
}

/// What one *executed* query actually did — the `ANALYZE` half of
/// `EXPLAIN ANALYZE`, recorded from the execution's report and phase
/// log so it can sit next to the planner's estimates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanActuals {
    /// Shards that actually executed (dispatched and not pruned).
    pub shards_executed: usize,
    /// Pages the dispatched shards' planners actually activated.
    pub pages_scanned: usize,
    /// Host-channel bytes tagged on dispatch phases (descriptor
    /// payloads; zero under legacy per-page doorbells).
    pub dispatch_bytes: u64,
    /// Host-channel bytes read off the modules (mask reads, result
    /// lines, host-gb record fetches).
    pub read_bytes: u64,
    /// Host-channel bytes written into the modules (mask broadcasts,
    /// update masks).
    pub write_bytes: u64,
    /// Simulated wall clock of the merged execution, nanoseconds.
    pub time_ns: f64,
    /// Total PIM energy over all modules, picojoules.
    pub energy_pj: f64,
}

impl PlanActuals {
    /// Extract the actuals from an executed cluster report: the byte
    /// categories come from the per-shard phase logs' channel tags,
    /// so they are exactly what the contention model charged the bus.
    pub fn from_report(report: &ClusterReport) -> PlanActuals {
        let mut a = PlanActuals {
            shards_executed: report.active_shards - report.shards_pruned,
            pages_scanned: report.pages_scanned,
            time_ns: report.time_ns,
            energy_pj: report.energy_pj,
            ..PlanActuals::default()
        };
        for shard in &report.per_shard {
            a.dispatch_bytes += shard.phases.host_bytes_in(PhaseKind::HostDispatch);
            a.read_bytes += shard.phases.host_bytes_in(PhaseKind::HostRead);
            a.write_bytes += shard.phases.host_bytes_in(PhaseKind::HostWrite);
        }
        a
    }

    /// Total host-channel bytes the execution moved.
    pub fn total_bytes(&self) -> u64 {
        self.dispatch_bytes + self.read_bytes + self.write_bytes
    }
}

/// The full pre-execution plan of one query on a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplain {
    /// Query identifier.
    pub query_id: String,
    /// The resolved filter tree, pretty-printed
    /// (e.g. `(d_year = 1993 AND (lo_discount BETWEEN 1 AND 3 OR …))`).
    pub filter: String,
    /// Per-attribute pruning intervals: the interval *union* across DNF
    /// branches the zone maps are tested against
    /// (`(attribute name, [lo, hi] list)`).
    pub filter_bounds: Vec<(String, Vec<(u64, u64)>)>,
    /// Per-shard plans, in shard order (active shards only).
    pub shards: Vec<ShardPlan>,
    /// Dimension-bitmap transfers of a star join (empty on the
    /// pre-joined storage model, which never joins).
    pub join_transfers: Vec<JoinTransfer>,
    /// Estimated host-channel bytes, by category, under the engine's
    /// transfer policy at plan time.
    pub host_bytes: HostBytes,
    /// Recorded actuals of an executed run (`None` for a plain
    /// `EXPLAIN`; filled by `EXPLAIN ANALYZE`).
    pub actuals: Option<PlanActuals>,
}

impl PlanExplain {
    /// Shards the plan dispatches.
    pub fn shards_dispatched(&self) -> usize {
        self.shards.iter().filter(|s| s.dispatched).count()
    }

    /// Shards pruned pre-scatter.
    pub fn shards_pruned(&self) -> usize {
        self.shards.len() - self.shards_dispatched()
    }

    /// Candidate pages over the dispatched shards.
    pub fn pages_candidate(&self) -> usize {
        self.shards.iter().map(|s| s.candidate_pages).sum()
    }

    /// Pages across all active shards.
    pub fn pages_total(&self) -> usize {
        self.shards.iter().map(|s| s.pages).sum()
    }

    /// Pages the planner proves irrelevant (shard- plus page-level).
    pub fn pages_pruned(&self) -> usize {
        self.pages_total() - self.pages_candidate()
    }

    /// Does the planner answer the query alone (nothing dispatched)?
    pub fn planner_only(&self) -> bool {
        self.pages_candidate() == 0
    }

    /// One-line summary, e.g. `Q1.1: 2/8 shards, 3/64 pages`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {}/{} shards, {}/{} pages",
            self.query_id,
            self.shards_dispatched(),
            self.shards.len(),
            self.pages_candidate(),
            self.pages_total(),
        )
    }

    /// Attach a run's recorded actuals (turns this `EXPLAIN` into an
    /// `EXPLAIN ANALYZE`).
    pub fn attach_actuals(&mut self, report: &ClusterReport) {
        self.actuals = Some(PlanActuals::from_report(report));
    }

    /// Plan-vs-actual consistency violations, empty when the recorded
    /// run stayed within the plan: on pruned paths the executed shard
    /// and scanned page counts can never exceed what the planner
    /// dispatched, and the actual dispatch descriptor bytes can never
    /// exceed the planner's (exact) dispatch ledger.
    pub fn consistency_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let Some(a) = &self.actuals else {
            return errors;
        };
        if a.shards_executed > self.shards_dispatched() {
            errors.push(format!(
                "executed {} shards but the plan dispatched only {}",
                a.shards_executed,
                self.shards_dispatched(),
            ));
        }
        if a.pages_scanned > self.pages_candidate() {
            errors.push(format!(
                "scanned {} pages but the plan admitted only {} candidates",
                a.pages_scanned,
                self.pages_candidate(),
            ));
        }
        if a.dispatch_bytes > self.host_bytes.dispatch_bytes {
            errors.push(format!(
                "dispatched {} descriptor bytes but the plan ledgered {}",
                a.dispatch_bytes, self.host_bytes.dispatch_bytes,
            ));
        }
        errors
    }

    /// Multi-line dump: the resolved filter, its per-attribute pruning
    /// intervals, the shard/page candidate-vs-pruned counts, and — for
    /// an `EXPLAIN ANALYZE` — the recorded actuals next to the plan.
    pub fn detail(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.summary());
        let _ = writeln!(out, "  filter: {}", self.filter);
        let _ = writeln!(
            out,
            "  host bytes: {} dispatch + {} mask + {} result = {} B",
            self.host_bytes.dispatch_bytes,
            self.host_bytes.mask_wire_bytes,
            self.host_bytes.result_bytes,
            self.host_bytes.total(),
        );
        if let Some(a) = &self.actuals {
            let _ = writeln!(
                out,
                "  actual: {}/{} shards, {} pages scanned, {} B moved \
                 ({} dispatch + {} read + {} write), {:.3} ms, {:.3} µJ",
                a.shards_executed,
                self.shards_dispatched(),
                a.pages_scanned,
                a.total_bytes(),
                a.dispatch_bytes,
                a.read_bytes,
                a.write_bytes,
                a.time_ns / 1e6,
                a.energy_pj / 1e6,
            );
        }
        for (attr, intervals) in &self.filter_bounds {
            let _ = writeln!(out, "  bounds: {attr} ∈ {}", render_intervals(intervals));
        }
        for t in &self.join_transfers {
            let _ = writeln!(
                out,
                "  semijoin: {} (disjunct {}): {}/{} keys, {} B raw → {} B wire, \
                 broadcast ×{}",
                t.dimension,
                t.disjunct,
                t.keys_selected,
                t.key_space,
                t.raw_bytes,
                t.wire_bytes,
                t.broadcast_shards,
            );
        }
        for s in &self.shards {
            let _ = writeln!(
                out,
                "  shard {:>2}: {:>8} records, {}/{} pages{}",
                s.shard_index,
                s.records,
                s.candidate_pages,
                s.pages,
                if s.dispatched { "" } else { "  (pruned pre-scatter)" },
            );
        }
        out
    }

    /// Total bytes the join bitmaps put on the channel (reads off the
    /// dimension modules plus one broadcast each).
    pub fn join_wire_bytes(&self) -> u64 {
        self.join_transfers.iter().map(|t| 2 * t.wire_bytes).sum()
    }

    /// What the same transfers would cost bit-packed, uncompressed.
    pub fn join_raw_bytes(&self) -> u64 {
        self.join_transfers.iter().map(|t| 2 * t.raw_bytes).sum()
    }
}

/// Render a sorted `[lo, hi]` interval list as a set-notation union:
/// `{7}`, `[1, 3]`, `[5, ∞)`, joined with `∪`. Shared by
/// [`PlanExplain::detail`] and the bench `EXPLAIN` report so the two
/// renderings cannot drift.
pub fn render_intervals(intervals: &[(u64, u64)]) -> String {
    let rendered: Vec<String> = intervals
        .iter()
        .map(|(lo, hi)| {
            if lo == hi {
                format!("{{{lo}}}")
            } else if *hi == u64::MAX {
                format!("[{lo}, ∞)")
            } else {
                format!("[{lo}, {hi}]")
            }
        })
        .collect();
    rendered.join(" ∪ ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PlanExplain {
        PlanExplain {
            query_id: "q".into(),
            filter: "(x = 1 OR x BETWEEN 5 AND 9)".into(),
            filter_bounds: vec![("x".into(), vec![(1, 1), (5, 9)])],
            shards: vec![
                ShardPlan {
                    shard_index: 0,
                    records: 100,
                    pages: 4,
                    candidate_pages: 2,
                    dispatched: true,
                },
                ShardPlan {
                    shard_index: 2,
                    records: 80,
                    pages: 4,
                    candidate_pages: 0,
                    dispatched: false,
                },
            ],
            join_transfers: vec![JoinTransfer {
                dimension: "date".into(),
                disjunct: 0,
                keys_selected: 365,
                key_space: 2556,
                raw_bytes: 320,
                wire_bytes: 12,
                broadcast_shards: 2,
            }],
            host_bytes: HostBytes { dispatch_bytes: 48, mask_wire_bytes: 24, result_bytes: 256 },
            actuals: None,
        }
    }

    #[test]
    fn totals_add_up() {
        let p = plan();
        assert_eq!(p.shards_dispatched(), 1);
        assert_eq!(p.shards_pruned(), 1);
        assert_eq!(p.pages_candidate(), 2);
        assert_eq!(p.pages_total(), 8);
        assert_eq!(p.pages_pruned(), 6);
        assert!(!p.planner_only());
        assert_eq!(p.summary(), "q: 1/2 shards, 2/8 pages");
    }

    #[test]
    fn detail_renders_filter_and_bounds() {
        let d = plan().detail();
        assert!(d.contains("filter: (x = 1 OR x BETWEEN 5 AND 9)"));
        assert!(d.contains("bounds: x ∈ {1} ∪ [5, 9]"));
        assert!(d.contains("(pruned pre-scatter)"));
        assert!(d.contains("shard  0"));
        assert!(d.contains("semijoin: date (disjunct 0): 365/2556 keys, 320 B raw → 12 B wire"));
        assert!(d.contains("host bytes: 48 dispatch + 24 mask + 256 result = 328 B"));
    }

    #[test]
    fn host_byte_ledger_totals_and_absorbs() {
        let mut a = HostBytes { dispatch_bytes: 10, mask_wire_bytes: 20, result_bytes: 30 };
        assert_eq!(a.total(), 60);
        a.absorb(&HostBytes { dispatch_bytes: 1, mask_wire_bytes: 2, result_bytes: 3 });
        assert_eq!(a, HostBytes { dispatch_bytes: 11, mask_wire_bytes: 22, result_bytes: 33 });
    }

    #[test]
    fn join_byte_totals_count_read_plus_broadcast() {
        let p = plan();
        assert_eq!(p.join_wire_bytes(), 24);
        assert_eq!(p.join_raw_bytes(), 640);
    }

    fn actuals() -> PlanActuals {
        PlanActuals {
            shards_executed: 1,
            pages_scanned: 2,
            dispatch_bytes: 48,
            read_bytes: 100,
            write_bytes: 20,
            time_ns: 2_500_000.0,
            energy_pj: 1_000_000.0,
        }
    }

    #[test]
    fn analyze_renders_actuals_next_to_the_plan() {
        let mut p = plan();
        assert!(!p.detail().contains("actual:"), "plain EXPLAIN has no actuals row");
        p.actuals = Some(actuals());
        let d = p.detail();
        assert!(d.contains("actual: 1/1 shards, 2 pages scanned"));
        assert!(d.contains("168 B moved (48 dispatch + 100 read + 20 write)"));
        assert!(d.contains("2.500 ms"));
    }

    #[test]
    fn consistency_holds_within_the_plan_and_flags_excess() {
        let mut p = plan();
        assert!(p.consistency_errors().is_empty(), "no actuals, nothing to check");
        p.actuals = Some(actuals());
        assert!(p.consistency_errors().is_empty(), "{:?}", p.consistency_errors());
        // exceed each planned ceiling in turn
        p.actuals = Some(PlanActuals { pages_scanned: 3, ..actuals() });
        assert_eq!(p.consistency_errors().len(), 1);
        p.actuals = Some(PlanActuals { shards_executed: 2, ..actuals() });
        assert_eq!(p.consistency_errors().len(), 1);
        p.actuals = Some(PlanActuals { dispatch_bytes: 49, ..actuals() });
        assert_eq!(p.consistency_errors().len(), 1);
    }
}
