//! `EXPLAIN`-style physical-plan statistics.
//!
//! [`crate::ClusterEngine::explain`] runs the zone-map planner — shard
//! admission plus per-page candidate sets inside admitted shards —
//! without executing anything, and returns what *would* be dispatched.
//! This is the planner side of the reports the journal extension
//! motivates: for selective queries the interesting number is not the
//! PIM time but how many pages the host never has to orchestrate.

/// One shard's slice of a query plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Configured shard index (empty shards never appear).
    pub shard_index: usize,
    /// Records this shard holds.
    pub records: usize,
    /// Pages this shard holds (per partition).
    pub pages: usize,
    /// Pages the page-level planner would activate (0 when the shard is
    /// pruned pre-scatter).
    pub candidate_pages: usize,
    /// Would the shard be dispatched at all? `false` means its zone map
    /// proves the filter matches nothing it holds.
    pub dispatched: bool,
}

/// The full pre-execution plan of one query on a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanExplain {
    /// Query identifier.
    pub query_id: String,
    /// Per-shard plans, in shard order (active shards only).
    pub shards: Vec<ShardPlan>,
}

impl PlanExplain {
    /// Shards the plan dispatches.
    pub fn shards_dispatched(&self) -> usize {
        self.shards.iter().filter(|s| s.dispatched).count()
    }

    /// Shards pruned pre-scatter.
    pub fn shards_pruned(&self) -> usize {
        self.shards.len() - self.shards_dispatched()
    }

    /// Candidate pages over the dispatched shards.
    pub fn pages_candidate(&self) -> usize {
        self.shards.iter().map(|s| s.candidate_pages).sum()
    }

    /// Pages across all active shards.
    pub fn pages_total(&self) -> usize {
        self.shards.iter().map(|s| s.pages).sum()
    }

    /// Pages the planner proves irrelevant (shard- plus page-level).
    pub fn pages_pruned(&self) -> usize {
        self.pages_total() - self.pages_candidate()
    }

    /// Does the planner answer the query alone (nothing dispatched)?
    pub fn planner_only(&self) -> bool {
        self.pages_candidate() == 0
    }

    /// One-line summary, e.g. `Q1.1: 2/8 shards, 3/64 pages`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {}/{} shards, {}/{} pages",
            self.query_id,
            self.shards_dispatched(),
            self.shards.len(),
            self.pages_candidate(),
            self.pages_total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PlanExplain {
        PlanExplain {
            query_id: "q".into(),
            shards: vec![
                ShardPlan {
                    shard_index: 0,
                    records: 100,
                    pages: 4,
                    candidate_pages: 2,
                    dispatched: true,
                },
                ShardPlan {
                    shard_index: 2,
                    records: 80,
                    pages: 4,
                    candidate_pages: 0,
                    dispatched: false,
                },
            ],
        }
    }

    #[test]
    fn totals_add_up() {
        let p = plan();
        assert_eq!(p.shards_dispatched(), 1);
        assert_eq!(p.shards_pruned(), 1);
        assert_eq!(p.pages_candidate(), 2);
        assert_eq!(p.pages_total(), 8);
        assert_eq!(p.pages_pruned(), 6);
        assert!(!p.planner_only());
        assert_eq!(p.summary(), "q: 1/2 shards, 2/8 pages");
    }
}
