//! Error type for the cluster layer.

use std::error::Error;
use std::fmt;

use bbpim_core::CoreError;
use bbpim_db::DbError;

/// Errors produced by the sharded execution layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A shard's engine failed.
    Core(CoreError),
    /// Relational-layer failure (partitioning, key resolution…).
    Db(DbError),
    /// The cluster was configured inconsistently (zero shards, unknown
    /// partition key…).
    InvalidCluster(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Core(e) => write!(f, "shard engine: {e}"),
            ClusterError::Db(e) => write!(f, "database: {e}"),
            ClusterError::InvalidCluster(msg) => write!(f, "invalid cluster: {msg}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Core(e) => Some(e),
            ClusterError::Db(e) => Some(e),
            ClusterError::InvalidCluster(_) => None,
        }
    }
}

impl From<CoreError> for ClusterError {
    fn from(e: CoreError) -> Self {
        ClusterError::Core(e)
    }
}

impl From<DbError> for ClusterError {
    fn from(e: DbError) -> Self {
        ClusterError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors() {
        let e: ClusterError = CoreError::NotCalibrated.into();
        assert!(e.to_string().contains("shard engine"));
        assert!(e.source().is_some());
        let e: ClusterError = DbError::ArityMismatch { got: 1, expected: 2 }.into();
        assert!(e.to_string().contains("database"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<ClusterError>();
    }
}
