//! Metrics glue for cluster executions and `EXPLAIN ANALYZE` plans.
//!
//! The cluster layer is where planner estimates meet recorded actuals,
//! so this module records both: per-execution phase breakdowns and
//! wear, and planned-vs-actual pages/bytes per analyzed query.

use bbpim_trace::phases::{record_run_log, CELL_WRITES, REQUIRED_ENDURANCE};
use bbpim_trace::MetricsRegistry;

use crate::engine::ClusterExecution;
use crate::explain::PlanExplain;

/// Executed cluster queries, counter.
pub const QUERIES: &str = "bbpim_cluster_queries_total";
/// Pages the dispatched shards' planners activated, counter.
pub const PAGES_SCANNED: &str = "bbpim_pages_scanned_total";
/// Pages the planner proved irrelevant (shard- plus page-level),
/// counter.
pub const PAGES_PRUNED: &str = "bbpim_pages_pruned_total";
/// Planner-estimated host-channel bytes over analyzed queries,
/// counter.
pub const PLANNED_BYTES: &str = "bbpim_planned_host_bytes_total";
/// Recorded host-channel bytes over analyzed queries, counter.
pub const ACTUAL_BYTES: &str = "bbpim_actual_host_bytes_total";

/// Record one merged cluster execution: per-phase-kind breakdowns
/// over every dispatched shard's log, page-pruning effectiveness, and
/// cell wear (worst shard) for queries that write PIM cells.
pub fn record_cluster_execution(
    reg: &mut MetricsRegistry,
    exec: &ClusterExecution,
    labels: &[(&str, &str)],
) {
    let report = &exec.report;
    reg.counter_add(QUERIES, labels, 1.0);
    reg.counter_add(PAGES_SCANNED, labels, report.pages_scanned as f64);
    reg.counter_add(
        PAGES_PRUNED,
        labels,
        report.pages_total.saturating_sub(report.pages_scanned) as f64,
    );
    for shard in &report.per_shard {
        record_run_log(reg, &shard.phases, labels);
        if shard.max_row_cell_writes > 0 {
            reg.counter_add(CELL_WRITES, labels, shard.max_row_cell_writes as f64);
            reg.gauge_max(
                REQUIRED_ENDURANCE,
                labels,
                shard.required_endurance(bbpim_core::obs::ENDURANCE_YEARS),
            );
        }
    }
}

/// Record an `EXPLAIN ANALYZE` plan: the planner's byte estimate next
/// to the recorded bytes (no-op for a plain `EXPLAIN` with no
/// actuals).
pub fn record_explain_analyze(
    reg: &mut MetricsRegistry,
    plan: &PlanExplain,
    labels: &[(&str, &str)],
) {
    let Some(actuals) = &plan.actuals else {
        return;
    };
    reg.counter_add(PLANNED_BYTES, labels, plan.host_bytes.total() as f64);
    reg.counter_add(ACTUAL_BYTES, labels, actuals.total_bytes() as f64);
}
