//! Horizontal partitioning strategies for the cluster layer.
//!
//! A [`Partitioner`] maps every record of the wide pre-joined relation
//! to one of `n` shards. Three strategies are provided:
//!
//! * [`Partitioner::RoundRobin`] — record *i* goes to shard `i % n`.
//!   Shard sizes are balanced to within one record regardless of data
//!   distribution, but every GROUP BY subgroup is spread over all
//!   shards, so the gather phase merges `n` partials per subgroup.
//! * [`Partitioner::HashByKey`] — records hash by the values of a set
//!   of attributes (typically the GROUP BY keys). All records of one
//!   subgroup land on one shard, making the merge a disjoint map union
//!   and keeping each shard's subgroup count — the `k` of the paper's
//!   Eq. (3) decision — `n`× smaller. Skewed keys can unbalance
//!   shards, which the max-of-shards wall-clock model makes visible.
//! * [`Partitioner::RangeByAttr`] — the attribute's observed `[min,
//!   max]` domain is cut into `n` equal-width buckets and each record
//!   goes to its value's bucket. This is *data placement for pruning*:
//!   shard zone maps become narrow on the split attribute, so filters
//!   constraining it (e.g. SSB's `d_year`) skip most shards before the
//!   scatter. Value skew can empty buckets — empty shards are dropped
//!   at cluster construction.

use bbpim_db::relation::Relation;
use bbpim_db::zonemap::ZoneMap;

use crate::error::ClusterError;

/// How records are assigned to shards.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioner {
    /// Record `i` → shard `i % n`.
    RoundRobin,
    /// Records hash on the named attributes' values (FNV-1a) → shard.
    HashByKey(Vec<String>),
    /// Records bucket by the named attribute's value: `n` equal-width
    /// ranges over the attribute's observed `[min, max]` domain.
    RangeByAttr(String),
}

/// FNV-1a over a record's key attribute values: stable across runs and
/// platforms, so shard assignment is deterministic.
fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for v in values {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

impl Partitioner {
    /// A hash partitioner over a query's GROUP BY attributes.
    pub fn hash_by_group_keys(keys: &[String]) -> Self {
        Partitioner::HashByKey(keys.to_vec())
    }

    /// A range partitioner over one attribute (typically the attribute
    /// selective filters constrain, e.g. `d_year`).
    pub fn range_by_attr(attr: &str) -> Self {
        Partitioner::RangeByAttr(attr.to_string())
    }

    /// The shard each record of `rel` is assigned to, for `n` shards.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidCluster`] for zero shards or an empty
    /// hash-key list; [`ClusterError::Db`] for unknown key attributes.
    pub fn assignments(&self, rel: &Relation, n: usize) -> Result<Vec<usize>, ClusterError> {
        if n == 0 {
            return Err(ClusterError::InvalidCluster("cluster needs at least one shard".into()));
        }
        match self {
            Partitioner::RoundRobin => Ok((0..rel.len()).map(|row| row % n).collect()),
            Partitioner::HashByKey(keys) => {
                if keys.is_empty() {
                    return Err(ClusterError::InvalidCluster(
                        "hash partitioner needs at least one key attribute".into(),
                    ));
                }
                let idx: Vec<usize> = keys
                    .iter()
                    .map(|k| rel.schema().index_of(k))
                    .collect::<Result<_, _>>()
                    .map_err(ClusterError::Db)?;
                Ok((0..rel.len())
                    .map(|row| (fnv1a(idx.iter().map(|&i| rel.value(row, i))) % n as u64) as usize)
                    .collect())
            }
            Partitioner::RangeByAttr(attr) => {
                let idx = rel.schema().index_of(attr).map_err(ClusterError::Db)?;
                let values = rel.column(idx).values();
                let Some((&lo, &hi)) = values.iter().min().zip(values.iter().max()) else {
                    return Ok(Vec::new()); // empty relation: nothing to assign
                };
                // u128 arithmetic: `hi - lo + 1` and the product both
                // overflow u64 on full-domain attributes.
                let span = u128::from(hi - lo) + 1;
                Ok(values
                    .iter()
                    .map(|&v| (u128::from(v - lo) * n as u128 / span) as usize)
                    .collect())
            }
        }
    }

    /// Split `rel` into `n` shard relations (empty shards allowed).
    ///
    /// # Errors
    ///
    /// See [`Partitioner::assignments`].
    pub fn split(&self, rel: &Relation, n: usize) -> Result<Vec<Relation>, ClusterError> {
        Ok(self.split_zoned(rel, n)?.into_iter().map(|(part, _)| part).collect())
    }

    /// Split `rel` into `n` shard relations, each paired with its
    /// [`ZoneMap`] (built in the same pass) — the input the cluster's
    /// shard-level pruning needs.
    ///
    /// # Errors
    ///
    /// See [`Partitioner::assignments`].
    pub fn split_zoned(
        &self,
        rel: &Relation,
        n: usize,
    ) -> Result<Vec<(Relation, ZoneMap)>, ClusterError> {
        let assign = self.assignments(rel, n)?;
        rel.partition_by_zoned(n, |row| assign[row]).map_err(ClusterError::Db)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Partitioner::RoundRobin => "round-robin",
            Partitioner::HashByKey(_) => "hash-by-key",
            Partitioner::RangeByAttr(_) => "range-by-attr",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::schema::{Attribute, Schema};

    fn rel(rows: u64) -> Relation {
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_g", 4)]);
        let mut r = Relation::new(schema);
        for i in 0..rows {
            r.push_row(&[i % 256, i % 13]).unwrap();
        }
        r
    }

    #[test]
    fn round_robin_balances_within_one() {
        let r = rel(101);
        let parts = Partitioner::RoundRobin.split(&r, 4).unwrap();
        let sizes: Vec<usize> = parts.iter().map(Relation::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 101);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn hash_by_key_keeps_groups_together() {
        let r = rel(300);
        let p = Partitioner::hash_by_group_keys(&["d_g".to_string()]);
        let assign = p.assignments(&r, 4).unwrap();
        let g = r.schema().index_of("d_g").unwrap();
        // every record with the same key value must share a shard
        let mut seen = std::collections::BTreeMap::new();
        for (row, &shard) in assign.iter().enumerate() {
            let key = r.value(row, g);
            assert_eq!(*seen.entry(key).or_insert(shard), shard, "key {key}");
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let r = rel(64);
        let p = Partitioner::HashByKey(vec!["d_g".into()]);
        assert_eq!(p.assignments(&r, 7).unwrap(), p.assignments(&r, 7).unwrap());
    }

    #[test]
    fn bad_configurations_are_rejected() {
        let r = rel(10);
        assert!(matches!(
            Partitioner::RoundRobin.assignments(&r, 0),
            Err(ClusterError::InvalidCluster(_))
        ));
        assert!(matches!(
            Partitioner::HashByKey(vec![]).assignments(&r, 2),
            Err(ClusterError::InvalidCluster(_))
        ));
        assert!(matches!(
            Partitioner::HashByKey(vec!["nope".into()]).assignments(&r, 2),
            Err(ClusterError::Db(_))
        ));
    }

    #[test]
    fn one_shard_is_identity() {
        let r = rel(50);
        for p in [
            Partitioner::RoundRobin,
            Partitioner::HashByKey(vec!["d_g".into()]),
            Partitioner::range_by_attr("d_g"),
        ] {
            let parts = p.split(&r, 1).unwrap();
            assert_eq!(parts.len(), 1, "{}", p.label());
            assert_eq!(parts[0], r);
        }
    }

    #[test]
    fn range_by_attr_buckets_are_ordered_and_disjoint() {
        let r = rel(300);
        let p = Partitioner::range_by_attr("lo_v");
        let parts = p.split_zoned(&r, 4).unwrap();
        assert_eq!(parts.iter().map(|(part, _)| part.len()).sum::<usize>(), 300);
        // every record's value falls inside its shard's zone, and zones
        // of successive shards are disjoint, ascending ranges
        let mut prev_hi: Option<u64> = None;
        for (part, zone) in &parts {
            assert_eq!(zone, &part.zone_map());
            if let Some((lo, hi)) = zone.range(0) {
                if let Some(p) = prev_hi {
                    assert!(lo > p, "ranges must ascend disjointly");
                }
                prev_hi = Some(hi);
            }
        }
    }

    #[test]
    fn range_by_attr_with_more_shards_than_values_leaves_empties() {
        // d_g has 13 distinct values; 20 buckets cannot all be hit
        let r = rel(300);
        let parts = Partitioner::range_by_attr("d_g").split(&r, 20).unwrap();
        assert_eq!(parts.len(), 20);
        assert!(parts.iter().any(Relation::is_empty));
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 300);
    }

    #[test]
    fn range_by_attr_full_domain_does_not_overflow() {
        use bbpim_db::schema::{Attribute, Schema};
        let schema = Schema::new("t", vec![Attribute::numeric("x", 64)]);
        let mut r = Relation::new(schema);
        for v in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            r.push_row(&[v]).unwrap();
        }
        let assign = Partitioner::range_by_attr("x").assignments(&r, 3).unwrap();
        assert!(assign.iter().all(|&s| s < 3));
        assert_eq!(assign[0], 0);
        assert_eq!(assign[4], 2);
    }

    #[test]
    fn range_by_attr_unknown_attribute_rejected() {
        let r = rel(10);
        assert!(matches!(
            Partitioner::range_by_attr("nope").assignments(&r, 2),
            Err(ClusterError::Db(_))
        ));
    }

    #[test]
    fn range_by_attr_empty_relation() {
        let r = rel(0);
        assert!(Partitioner::range_by_attr("lo_v").assignments(&r, 3).unwrap().is_empty());
        let parts = Partitioner::range_by_attr("lo_v").split(&r, 3).unwrap();
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(Relation::is_empty));
    }
}
