//! The sharded cluster engine: scatter a query to per-shard
//! [`PimQueryEngine`]s on OS threads, gather and merge the partials.
//!
//! The paper evaluates one PIM module, but its memory system is built
//! from many independent modules; this layer models a rank of `n` such
//! modules. Each shard owns a horizontal slice of the wide pre-joined
//! relation (see [`crate::partition`]) inside its own `PimModule`.
//!
//! ## Zone-map shard pruning
//!
//! Every shard carries a [`ZoneMap`] (per-attribute min/max, built
//! during partitioning and widened by UPDATE fan-out). Before the
//! scatter, the query's [`FilterBounds`] are tested against each
//! shard's map: shards that provably hold no matching record are
//! *pruned pre-scatter* — no thread, no per-page host dispatch, no PIM
//! activity. With [`Partitioner::RangeByAttr`] placement, selective
//! filters on the split attribute touch one or two shards instead of
//! all of them.
//!
//! ## Wall-clock model
//!
//! Real modules execute concurrently, but the *host* is one resource.
//! Under the default **contention model**, *everything* that crosses
//! the host↔module channel serialises across shards: per-page dispatch
//! ([`PhaseKind::HostDispatch`]) *and* the bandwidth term of every
//! byte-tagged transfer (mask transfers, result-line reads, host-gb
//! record fetches — `QueryReport::host_bus_ns`). The wall clock for
//! one query is `Σ host-bus occupancy + max over shards of (shard time
//! − its occupancy) + host merge`; energy — drawn by every module — is
//! the *sum*. [`ClusterEngine::set_contention`]`(false)` restores the
//! pre-contention optimistic model (only dispatch serialises, every
//! transfer rides a free per-module channel) for A/B studies; answers
//! are bit-identical either way.

use bbpim_core::engine::PimQueryEngine;
use bbpim_core::groupby::calibration::CalibrationConfig;
use bbpim_core::groupby::cost_model::GroupByModel;
use bbpim_core::modes::EngineMode;
use bbpim_core::mutation::{Mutation, MutationReport};
use bbpim_core::result::{PartialGroups, QueryExecution, QueryReport};
#[allow(deprecated)]
use bbpim_core::update::UpdateOp;
use bbpim_core::CoreError;
use bbpim_db::plan::{FilterBounds, Pred, Query};
use bbpim_db::stats::{GroupedResult, MultiGrouped};
use bbpim_db::zonemap::ZoneMap;
use bbpim_db::Relation;
use bbpim_sim::config::SimConfig;
use bbpim_sim::timeline::{PhaseKind, RunLog};

use crate::error::ClusterError;
use crate::explain::{HostBytes, PlanExplain, ShardPlan};
use crate::partition::Partitioner;

/// One shard: its position in the cluster plus its engine and zone map.
struct Shard {
    /// Shard index in `0..shard_count` (empty shards have no entry).
    index: usize,
    engine: PimQueryEngine,
    /// Per-attribute min/max over this shard's records; widened after
    /// UPDATE fan-out so pre-scatter pruning stays sound.
    zone: ZoneMap,
}

/// A sharded PIM OLAP engine over one (pre-joined) relation.
///
/// Presents the same `run(&Query)` surface as the single-module
/// [`PimQueryEngine`], returning bit-identical grouped results.
pub struct ClusterEngine {
    shards: Vec<Shard>,
    shard_count: usize,
    partitioner: Partitioner,
    mode: EngineMode,
    records: usize,
    pruning: bool,
    contention: bool,
}

/// Everything the cluster reports per query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Query identifier.
    pub query_id: String,
    /// Engine mode every shard ran.
    pub mode: EngineMode,
    /// Configured shard count (including shards that received no
    /// records).
    pub shards: usize,
    /// Shards that hold records and could have executed.
    pub active_shards: usize,
    /// Active shards skipped pre-scatter because their zone map proves
    /// they hold no matching record.
    pub shards_pruned: usize,
    /// Partitioning strategy label.
    pub partitioner: &'static str,
    /// Simulated wall clock: host-serial channel occupancy plus max
    /// over shards of the overlappable time plus the host-side merge,
    /// nanoseconds (see the module docs for the contention model).
    pub time_ns: f64,
    /// Host-side per-page orchestration summed over dispatched shards
    /// (serialised on the one host), nanoseconds.
    pub dispatch_time_ns: f64,
    /// Total shared host-channel occupancy summed over dispatched
    /// shards (dispatch + the bandwidth term of every byte-tagged
    /// transfer), nanoseconds. Under the contention model this whole
    /// slice serialises; the optimistic model serialises only
    /// `dispatch_time_ns`.
    pub host_bus_time_ns: f64,
    /// Host-side gather/merge slice of `time_ns`.
    pub merge_time_ns: f64,
    /// Total busy time summed over shards (the work the cluster did).
    pub total_shard_time_ns: f64,
    /// Total PIM energy over all modules, picojoules.
    pub energy_pj: f64,
    /// Peak per-chip power over all modules, watts.
    pub peak_chip_power_w: f64,
    /// Records across the cluster.
    pub records: usize,
    /// Pages across all active shards (per partition).
    pub pages_total: usize,
    /// Pages the dispatched shards' planners actually activated.
    pub pages_scanned: usize,
    /// Records passing the filter across the cluster.
    pub selected: u64,
    /// Cluster-wide selectivity.
    pub selectivity: f64,
    /// Largest per-shard potential-subgroup count (`k_MAX` of the
    /// busiest shard).
    pub max_shard_subgroups: u64,
    /// Full per-shard reports of the dispatched shards, in shard order.
    pub per_shard: Vec<QueryReport>,
}

impl ClusterReport {
    /// Speedup of this cluster run over a single-module time.
    pub fn speedup_over(&self, single_time_ns: f64) -> f64 {
        if self.time_ns <= 0.0 {
            return f64::INFINITY;
        }
        single_time_ns / self.time_ns
    }
}

/// A cluster query's merged answer plus its report.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterExecution {
    /// Merged grouped multi-column aggregates (same shape as the
    /// single-module engine's answer: one value per SELECT item).
    /// Derived outputs (`AVG`) are computed only after every shard's
    /// mergeable components folded, so sharding stays bit-exact.
    pub groups: MultiGrouped,
    /// The cluster report.
    pub report: ClusterReport,
}

/// Outcome of [`ClusterEngine::run_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchExecution {
    /// Per-query merged executions, in admission order.
    pub executions: Vec<ClusterExecution>,
    /// Pipelined wall clock: every shard drains its own (pruned) queue
    /// without waiting for stragglers on other shards, so the batch
    /// finishes at host-serial dispatch plus max-over-shards of the
    /// per-shard PIM queue time (plus merges).
    pub wall_time_ns: f64,
    /// Reference wall clock if queries ran one at a time with a
    /// cluster-wide barrier between them (sum of per-query maxima).
    pub serial_time_ns: f64,
}

impl BatchExecution {
    /// How much the pipelined schedule saves over per-query barriers.
    pub fn pipelining_speedup(&self) -> f64 {
        if self.wall_time_ns <= 0.0 {
            return 1.0;
        }
        self.serial_time_ns / self.wall_time_ns
    }
}

/// Outcome of a cluster-wide mutation fan-out (UPDATE or INSERT).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMutationReport {
    /// Records rewritten across all shards.
    pub records_updated: u64,
    /// Records appended across all shards.
    pub records_inserted: u64,
    /// Active shards the mutation never touched (UPDATE: their zone
    /// maps prove the WHERE clause matches nothing they hold; INSERT:
    /// the row routing sent them nothing).
    pub shards_pruned: usize,
    /// Simulated wall clock (host-serial channel occupancy + max over
    /// shards of the overlappable PIM-side time), nanoseconds.
    pub time_ns: f64,
    /// Host-side per-page orchestration summed over dispatched shards.
    pub dispatch_time_ns: f64,
    /// Total busy time summed over shards.
    pub total_shard_time_ns: f64,
    /// Total PIM energy over all modules, picojoules.
    pub energy_pj: f64,
    /// Full per-shard reports of the dispatched shards, in shard order.
    pub per_shard: Vec<MutationReport>,
}

/// v1 name of [`ClusterMutationReport`].
pub type ClusterUpdateReport = ClusterMutationReport;

/// The host-dispatch slice of one log.
fn dispatch_ns(log: &RunLog) -> f64 {
    log.time_in(PhaseKind::HostDispatch)
}

impl ClusterEngine {
    /// The slice of one shard's execution the host must serialise under
    /// the current accounting model: the whole channel occupancy
    /// (`host_bus_ns`) with contention on, only per-page dispatch with
    /// it off. Single source of truth for `run`, `run_batch` and
    /// `update` so the three wall clocks can never drift apart.
    fn serial_slice_ns(&self, host_bus_ns: f64, log: &RunLog) -> f64 {
        if self.contention {
            host_bus_ns
        } else {
            dispatch_ns(log)
        }
    }
}

impl ClusterEngine {
    /// Partition `relation` with `partitioner` into `shards` slices and
    /// build one [`PimQueryEngine`] (its own `PimModule`, same `cfg`)
    /// per non-empty slice, each paired with the slice's zone map.
    /// Empty slices — common when a range split has more buckets than
    /// distinct values — are dropped: they own no engine and no module,
    /// and [`ClusterEngine::active_shards`] excludes them while
    /// [`ClusterEngine::shard_count`] keeps reporting the configured
    /// count.
    ///
    /// Use [`SimConfig::per_module_of`] on `cfg` first for iso-capacity
    /// scaling experiments; pass `cfg` unchanged to model a cluster of
    /// full-size modules.
    ///
    /// # Errors
    ///
    /// Partitioning failures and per-shard engine construction
    /// failures.
    pub fn new(
        cfg: SimConfig,
        relation: Relation,
        mode: EngineMode,
        shards: usize,
        partitioner: Partitioner,
    ) -> Result<Self, ClusterError> {
        let records = relation.len();
        let parts = partitioner.split_zoned(&relation, shards)?;
        let mut built = Vec::with_capacity(shards);
        for (index, (part, zone)) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let engine = PimQueryEngine::new(cfg.clone(), part, mode)?;
            built.push(Shard { index, engine, zone });
        }
        Ok(ClusterEngine {
            shards: built,
            shard_count: shards,
            partitioner,
            mode,
            records,
            pruning: true,
            contention: true,
        })
    }

    /// Configured shard count (including empty shards).
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Shards actually holding records.
    pub fn active_shards(&self) -> usize {
        self.shards.len()
    }

    /// Configured indices of the shards that hold records (hash and
    /// range partitioning can leave some of `0..shard_count` empty).
    pub fn active_shard_indices(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.index).collect()
    }

    /// Records across the cluster.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The engine mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// The partitioning strategy.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Is zone-map pruning (shard-level pre-scatter skip + per-shard
    /// page pruning) enabled? Defaults to `true`.
    pub fn pruning(&self) -> bool {
        self.pruning
    }

    /// Enable or disable zone-map pruning cluster-wide (propagates to
    /// every shard engine's page-level pruning). Answers are
    /// bit-identical either way.
    pub fn set_pruning(&mut self, enabled: bool) {
        self.pruning = enabled;
        for shard in &mut self.shards {
            shard.engine.set_pruning(enabled);
        }
    }

    /// Is the shared-host-channel contention model enabled (default)?
    /// When on, every host↔module transfer serialises across shards in
    /// the wall clock; when off, only per-page dispatch does (the
    /// pre-contention optimistic model). Answers are bit-identical
    /// either way — only time accounting changes.
    pub fn contention(&self) -> bool {
        self.contention
    }

    /// Enable or disable the shared-host-channel contention model for
    /// A/B studies. Propagates to the streaming scheduler, which reads
    /// this flag to decide whether tagged transfer phases ride the
    /// shared bus.
    pub fn set_contention(&mut self, enabled: bool) {
        self.contention = enabled;
    }

    /// The host-transfer policy the shards run under (compressed mask
    /// transfers, batched dispatch descriptors, module-side result
    /// reduction). Defaults to all levers on.
    pub fn xfer_policy(&self) -> bbpim_sim::XferPolicy {
        self.shards.first().map(|s| s.engine.xfer_policy()).unwrap_or_default()
    }

    /// Set the host-transfer policy cluster-wide for A/B attribution
    /// studies (like [`ClusterEngine::set_contention`]). Answers are
    /// bit-identical under every lever combination — only the bytes on
    /// the channel (and hence contended wall clock) change.
    pub fn set_xfer_policy(&mut self, policy: bbpim_sim::XferPolicy) {
        for shard in &mut self.shards {
            shard.engine.set_xfer_policy(policy);
        }
    }

    /// An active shard's zone map; `i` indexes active shards.
    pub fn shard_zone(&self, i: usize) -> Option<&ZoneMap> {
        self.shards.get(i).map(|s| &s.zone)
    }

    /// Borrow an active shard's engine (inspection in tests/benches);
    /// `i` indexes active shards, not configured slots.
    pub fn shard_engine(&self, i: usize) -> Option<&PimQueryEngine> {
        self.shards.get(i).map(|s| &s.engine)
    }

    /// Run the GROUP-BY calibration once and share the fitted model
    /// with every shard (all shards have identical hardware, so one
    /// sweep suffices — this is `n`× cheaper than calibrating each).
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn calibrate(&mut self, cal: &CalibrationConfig) -> Result<(), ClusterError> {
        let Some(first) = self.shards.first_mut() else {
            return Ok(());
        };
        first.engine.calibrate(cal)?;
        let model = first.engine.model().cloned().expect("calibrate() installs a model");
        self.set_model(model);
        Ok(())
    }

    /// The fitted GROUP-BY model the shards share, if any.
    pub fn model(&self) -> Option<&GroupByModel> {
        self.shards.first().and_then(|s| s.engine.model())
    }

    /// Install a pre-fitted model on every shard. The calibration is a
    /// pure function of the hardware configuration and engine mode —
    /// not of the data — so a model fitted once (by any engine or
    /// cluster with the same `SimConfig` + [`EngineMode`]) is valid for
    /// every cluster instance: fit once, share everywhere.
    pub fn set_model(&mut self, model: GroupByModel) {
        for shard in &mut self.shards {
            shard.engine.set_model(model.clone());
        }
    }

    /// The pre-scatter plan of a filter tree: `true` per active shard
    /// that must be dispatched, `false` where the shard's zone map
    /// proves no record can match any DNF branch (the bounds of an OR
    /// are the per-attribute interval union of its branches). With
    /// pruning disabled every shard is dispatched.
    ///
    /// # Errors
    ///
    /// Propagates filter resolution failures.
    pub fn plan_shards(&self, filter: &Pred) -> Result<Vec<bool>, ClusterError> {
        if !self.pruning || filter.is_always() {
            return Ok(vec![true; self.shards.len()]);
        }
        let Some(first) = self.shards.first() else {
            return Ok(Vec::new());
        };
        let schema = first.engine.relation().schema();
        let dnf = filter.resolve_dnf(schema).map_err(ClusterError::Db)?;
        let bounds = FilterBounds::from_dnf(&dnf);
        Ok(self.shards.iter().map(|s| bounds.can_match(&s.zone)).collect())
    }

    /// The physical plan of `query` without executing anything: the
    /// resolved filter (pretty-printed tree + per-attribute pruning
    /// intervals), which shards the zone maps admit, and how many pages
    /// each admitted shard's page-level planner would activate (the
    /// `EXPLAIN` dump).
    ///
    /// # Errors
    ///
    /// Propagates filter resolution failures.
    pub fn explain(&self, query: &Query) -> Result<PlanExplain, ClusterError> {
        let mask = self.plan_shards(&query.filter)?;
        // Per-attribute interval union of the filter bounds, rendered
        // with attribute names (what the zone maps are tested against).
        let filter_bounds = match self.shards.first() {
            None => Vec::new(),
            Some(first) => {
                let schema = first.engine.relation().schema();
                let dnf = query.filter.resolve_dnf(schema).map_err(ClusterError::Db)?;
                FilterBounds::from_dnf(&dnf)
                    .intervals()
                    .into_iter()
                    .map(|(idx, intervals)| (schema.attrs()[idx].name.clone(), intervals))
                    .collect()
            }
        };
        let mut host_bytes = HostBytes::default();
        let mut shards = Vec::with_capacity(self.shards.len());
        for (shard, &dispatched) in self.shards.iter().zip(&mask) {
            let mut candidate_pages = 0;
            if dispatched {
                let plan = shard.engine.plan(query).map_err(ClusterError::Core)?;
                candidate_pages = plan.len();
                host_bytes.absorb(&shard_host_bytes(&shard.engine, query, &plan)?);
            }
            shards.push(ShardPlan {
                shard_index: shard.index,
                records: shard.engine.relation().len(),
                pages: shard.engine.page_count(),
                candidate_pages,
                dispatched,
            });
        }
        Ok(PlanExplain {
            query_id: query.id.clone(),
            filter: query.filter.to_string(),
            filter_bounds,
            shards,
            // the pre-joined model never joins: nothing crosses the bus
            join_transfers: Vec::new(),
            host_bytes,
            actuals: None,
        })
    }

    /// `EXPLAIN ANALYZE`: plan `query`, execute it, and return the
    /// plan with the run's recorded actuals attached (plus the
    /// execution itself, so the answer is not thrown away). The
    /// planned pages/shards/bytes sit next to what the run actually
    /// did — [`PlanExplain::consistency_errors`] checks the recorded
    /// run never exceeded the plan on pruned paths.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ClusterEngine::explain`] and
    /// [`ClusterEngine::run`].
    pub fn explain_analyze(
        &mut self,
        query: &Query,
    ) -> Result<(PlanExplain, ClusterExecution), ClusterError> {
        let mut plan = self.explain(query)?;
        let exec = self.run(query)?;
        plan.attach_actuals(&exec.report);
        Ok((plan, exec))
    }

    /// Execute `query` on one active shard alone and return that
    /// shard's partial execution — the scatter half of
    /// [`ClusterEngine::run`] as a reusable building block. The
    /// streaming scheduler (`bbpim-sched`) uses it to interleave
    /// *different* queries' shard slices on different modules; folding
    /// the per-shard partials through
    /// [`ClusterEngine::merge_executions`] in shard order yields
    /// answers bit-identical to [`ClusterEngine::run`].
    ///
    /// `i` indexes active shards (like [`ClusterEngine::shard_engine`]).
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidCluster`] for an unknown shard index;
    /// shard engine failures otherwise.
    pub fn run_on_shard(
        &mut self,
        i: usize,
        query: &Query,
    ) -> Result<QueryExecution, ClusterError> {
        let active = self.shards.len();
        let shard = self
            .shards
            .get_mut(i)
            .ok_or_else(|| ClusterError::InvalidCluster(format!("no active shard {i}/{active}")))?;
        shard.engine.run(query).map_err(ClusterError::from)
    }

    /// Run `f` on the masked shard engines concurrently (one OS thread
    /// per dispatched shard — the scatter phase) and gather the results
    /// in shard order (`None` for pruned shards). The first shard error
    /// aborts the cluster operation.
    fn scatter_planned<T, F>(&mut self, mask: &[bool], f: F) -> Result<Vec<Option<T>>, ClusterError>
    where
        T: Send,
        F: Fn(&mut PimQueryEngine) -> Result<T, CoreError> + Sync,
    {
        let results: Vec<Option<Result<T, CoreError>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(mask)
                .map(|(shard, &dispatched)| {
                    dispatched.then(|| {
                        let f = &f;
                        scope.spawn(move || f(&mut shard.engine))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("shard worker panicked")))
                .collect()
        });
        results.into_iter().map(|r| r.transpose().map_err(ClusterError::from)).collect()
    }

    /// Execute one query: consult the shard zone maps, scatter to the
    /// surviving shards in parallel, and merge the per-shard partial
    /// aggregates. Pruned shards contribute nothing — provably the same
    /// nothing they would have computed.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    pub fn run(&mut self, query: &Query) -> Result<ClusterExecution, ClusterError> {
        let mask = self.plan_shards(&query.filter)?;
        let results = self.scatter_planned(&mask, |engine| engine.run(query))?;
        let refs: Vec<&QueryExecution> = results.iter().flatten().collect();
        let pruned = mask.iter().filter(|d| !**d).count();
        Ok(self.merge_executions(query, &refs, pruned))
    }

    /// Admit a queue of queries: every shard drains *its own* queue —
    /// the queries its zone map cannot refuse — on its own module
    /// without cluster-wide barriers (shard `a` may be on query 3 while
    /// shard `b` is still on query 1). The batch's wall clock is the
    /// host-serial dispatch total plus max-over-shards of the PIM queue
    /// time rather than the sum of per-query maxima.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    pub fn run_batch(&mut self, queries: &[Query]) -> Result<BatchExecution, ClusterError> {
        let masks: Vec<Vec<bool>> = queries
            .iter()
            .map(|q| self.plan_shards(&q.filter))
            .collect::<Result<_, ClusterError>>()?;
        let shard_lists: Vec<Vec<usize>> = (0..self.shards.len())
            .map(|s| (0..queries.len()).filter(|&qi| masks[qi][s]).collect())
            .collect();

        let per_shard: Vec<Vec<(usize, QueryExecution)>> = {
            let joined: Vec<Result<Vec<(usize, QueryExecution)>, CoreError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .zip(&shard_lists)
                        .map(|(shard, list)| {
                            scope.spawn(move || {
                                list.iter()
                                    .map(|&qi| shard.engine.run(&queries[qi]).map(|e| (qi, e)))
                                    .collect::<Result<Vec<_>, _>>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
                });
            joined.into_iter().collect::<Result<_, _>>().map_err(ClusterError::from)?
        };

        let mut rows: Vec<Vec<&QueryExecution>> = vec![Vec::new(); queries.len()];
        for shard_execs in &per_shard {
            for (qi, exec) in shard_execs {
                rows[*qi].push(exec);
            }
        }
        let executions: Vec<ClusterExecution> = queries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let pruned = masks[qi].iter().filter(|d| !**d).count();
                self.merge_executions(q, &rows[qi], pruned)
            })
            .collect();

        let serial =
            |e: &QueryExecution| self.serial_slice_ns(e.report.host_bus_ns, &e.report.phases);
        let serial_total: f64 =
            per_shard.iter().flat_map(|execs| execs.iter().map(|(_, e)| serial(e))).sum();
        let pim_queue = |shard_execs: &Vec<(usize, QueryExecution)>| -> f64 {
            shard_execs.iter().map(|(_, e)| e.report.time_ns - serial(e)).sum()
        };
        let merge_time: f64 = executions.iter().map(|e| e.report.merge_time_ns).sum();
        let wall_time_ns =
            serial_total + per_shard.iter().map(pim_queue).fold(0.0, f64::max) + merge_time;
        let serial_time_ns = executions.iter().map(|e| e.report.time_ns).sum();
        Ok(BatchExecution { executions, wall_time_ns, serial_time_ns })
    }

    /// The active-shard *lanes* a mutation will touch, in lane order —
    /// the scheduler's ingest-buffer admission check. UPDATE lanes are
    /// the shards whose zone maps admit the WHERE clause (the full DNF:
    /// the bounds of an OR are the per-attribute interval union of its
    /// branches); INSERT lanes are where the deterministic round-robin
    /// row routing — cursor `records % active` — will land the rows.
    ///
    /// # Errors
    ///
    /// Propagates filter resolution failures.
    pub fn plan_mutation_lanes(&self, m: &Mutation) -> Result<Vec<usize>, ClusterError> {
        match m {
            Mutation::Update { filter, .. } => {
                let mask = self.plan_shards(filter)?;
                Ok(mask.iter().enumerate().filter_map(|(i, &d)| d.then_some(i)).collect())
            }
            Mutation::Insert { rows } => {
                let active = self.shards.len();
                if active == 0 || rows.is_empty() {
                    return Ok(Vec::new());
                }
                let start = self.records % active;
                let mut lanes: Vec<usize> =
                    (0..rows.len().min(active)).map(|k| (start + k) % active).collect();
                lanes.sort_unstable();
                Ok(lanes)
            }
        }
    }

    /// Lane-indexed mutation fan-out: execute `m` on each involved
    /// active shard *serially* and return the per-lane reports in lane
    /// order — the scheduler's building block (each lane's write phases
    /// then serialise independently on the shared bus). UPDATE runs on
    /// every zone-admitted shard; INSERT routes rows round-robin from
    /// the deterministic cursor `records % active`, so a given cluster
    /// history always lands rows on the same lanes. Touched shards'
    /// zone maps are refreshed afterwards so later pruning decisions
    /// account for the written values.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidCluster`] for an INSERT into a cluster
    /// with no active shards; shard failures otherwise. Mutations are
    /// not atomic: on a mid-fan-out error earlier lanes have applied.
    pub fn mutate_on_lanes(
        &mut self,
        m: &Mutation,
    ) -> Result<Vec<(usize, MutationReport)>, ClusterError> {
        match m {
            Mutation::Update { .. } => {
                let lanes = self.plan_mutation_lanes(m)?;
                let mut out = Vec::with_capacity(lanes.len());
                for lane in lanes {
                    let report = self.shards[lane].engine.mutate(m).map_err(ClusterError::from)?;
                    self.shards[lane].zone = self.shards[lane].engine.zone_map();
                    out.push((lane, report));
                }
                Ok(out)
            }
            Mutation::Insert { rows } => {
                let active = self.shards.len();
                if active == 0 {
                    return Err(ClusterError::InvalidCluster(
                        "INSERT into a cluster with no active shards".into(),
                    ));
                }
                let start = self.records % active;
                let mut per_lane: Vec<Vec<Vec<u64>>> = vec![Vec::new(); active];
                for (k, row) in rows.iter().enumerate() {
                    per_lane[(start + k) % active].push(row.clone());
                }
                let mut out = Vec::new();
                for (lane, lane_rows) in per_lane.into_iter().enumerate() {
                    if lane_rows.is_empty() {
                        continue;
                    }
                    let part = Mutation::Insert { rows: lane_rows };
                    let report =
                        self.shards[lane].engine.mutate(&part).map_err(ClusterError::from)?;
                    self.shards[lane].zone = self.shards[lane].engine.zone_map();
                    self.records += report.records_inserted as usize;
                    out.push((lane, report));
                }
                Ok(out)
            }
        }
    }

    /// Fan a mutation out across the cluster and aggregate one report
    /// (same wall-clock model as [`ClusterEngine::run`]: host-serial
    /// channel occupancy plus max-over-shards of the overlappable
    /// PIM-side time).
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    pub fn mutate(&mut self, m: &Mutation) -> Result<ClusterMutationReport, ClusterError> {
        let active = self.shards.len();
        let reports: Vec<MutationReport> =
            self.mutate_on_lanes(m)?.into_iter().map(|(_, r)| r).collect();
        let dispatch_time_ns: f64 = reports.iter().map(|r| dispatch_ns(&r.phases)).sum();
        let serial = |r: &MutationReport| self.serial_slice_ns(r.host_bus_ns, &r.phases);
        let serial_total: f64 = reports.iter().map(serial).sum();
        let pim_max = reports.iter().map(|r| r.time_ns - serial(r)).fold(0.0, f64::max);
        Ok(ClusterMutationReport {
            records_updated: reports.iter().map(|r| r.records_updated).sum(),
            records_inserted: reports.iter().map(|r| r.records_inserted).sum(),
            shards_pruned: active - reports.len(),
            time_ns: serial_total + pim_max,
            dispatch_time_ns,
            total_shard_time_ns: reports.iter().map(|r| r.time_ns).sum(),
            energy_pj: reports.iter().map(|r| r.energy_pj).sum(),
            per_shard: reports,
        })
    }

    /// Fan a v1 UPDATE out to the shards. Deprecated wrapper over
    /// [`ClusterEngine::mutate`].
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    #[allow(deprecated)]
    #[deprecated(note = "use ClusterEngine::mutate with bbpim_core::mutation::Mutation")]
    pub fn update(&mut self, op: &UpdateOp) -> Result<ClusterMutationReport, ClusterError> {
        self.mutate(&op.clone().into())
    }

    /// Gather: merge per-shard partial executions (in shard order, as
    /// produced by [`ClusterEngine::run_on_shard`]) into one cluster
    /// execution. This is the gather half of [`ClusterEngine::run`];
    /// `shards_pruned` is reporting-only and does not affect the
    /// answer. Each *physical* component (sum / min / max / count)
    /// merges per named output column; derived outputs (`AVG`) are
    /// computed only afterwards, so they stay bit-exact under sharding.
    /// Merging commutes with how the partials were obtained, so a
    /// scheduler that executed the shard slices out of order still gets
    /// the bit-identical merged result.
    ///
    /// # Panics
    ///
    /// Panics on a query whose SELECT list is invalid — impossible for
    /// executions the engines produced (they validate at run time).
    pub fn merge_executions(
        &self,
        query: &Query,
        executions: &[&QueryExecution],
        shards_pruned: usize,
    ) -> ClusterExecution {
        let plan = query.physical_plan().expect("executed queries have a valid SELECT list");
        let mut partials: Vec<PartialGroups> =
            plan.aggs.iter().map(|a| PartialGroups::new(a.func)).collect();
        let mut merged_entries = 0u64;
        for exec in executions {
            for (acc, part) in partials.iter_mut().zip(&exec.partials) {
                merged_entries += part.groups.len() as u64;
                acc.absorb_ref(part);
            }
        }

        // Host-side gather cost: the host folds every (shard, group)
        // partial into the final table, at its hash-aggregation rate.
        let merge_ns_per_entry = self
            .shards
            .first()
            .map(|s| s.engine.config().host.host_agg_ns_per_record)
            .unwrap_or(0.0);
        let merge_time_ns = merged_entries as f64 * merge_ns_per_entry;

        // One host: the serialised slice of each shard is its whole
        // channel occupancy under the contention model, or just its
        // per-page dispatch under the optimistic one; everything else
        // overlaps across modules.
        let dispatch_time_ns: f64 = executions.iter().map(|e| dispatch_ns(&e.report.phases)).sum();
        let host_bus_time_ns: f64 = executions.iter().map(|e| e.report.host_bus_ns).sum();
        let serial =
            |e: &&QueryExecution| self.serial_slice_ns(e.report.host_bus_ns, &e.report.phases);
        let serial_total: f64 = executions.iter().map(serial).sum();
        let pim_max = executions.iter().map(|e| e.report.time_ns - serial(e)).fold(0.0, f64::max);
        let selected: u64 = executions.iter().map(|e| e.report.selected).sum();
        let report = ClusterReport {
            query_id: query.id.clone(),
            mode: self.mode,
            shards: self.shard_count,
            active_shards: self.shards.len(),
            shards_pruned,
            partitioner: self.partitioner.label(),
            time_ns: serial_total + pim_max + merge_time_ns,
            dispatch_time_ns,
            host_bus_time_ns,
            merge_time_ns,
            total_shard_time_ns: executions.iter().map(|e| e.report.time_ns).sum(),
            energy_pj: executions.iter().map(|e| e.report.energy_pj).sum(),
            peak_chip_power_w: executions
                .iter()
                .map(|e| e.report.peak_chip_power_w)
                .fold(0.0, f64::max),
            records: self.records,
            pages_total: self.shards.iter().map(|s| s.engine.page_count()).sum(),
            pages_scanned: executions.iter().map(|e| e.report.pages_scanned).sum(),
            selected,
            selectivity: if self.records == 0 {
                0.0
            } else {
                selected as f64 / self.records as f64
            },
            max_shard_subgroups: executions
                .iter()
                .map(|e| e.report.total_subgroups)
                .max()
                .unwrap_or(0),
            per_shard: executions.iter().map(|e| e.report.clone()).collect(),
        };
        let per_agg: Vec<GroupedResult> =
            partials.into_iter().map(PartialGroups::into_groups).collect();
        ClusterExecution { groups: plan.finalize(&per_agg), report }
    }
}

/// Planner estimate of one dispatched shard's host-channel bytes under
/// its engine's transfer policy (see [`HostBytes`] for the category
/// semantics and the estimate's assumptions).
fn shard_host_bytes(
    engine: &PimQueryEngine,
    query: &Query,
    plan: &bbpim_core::planner::PageSet,
) -> Result<HostBytes, ClusterError> {
    let mut out = HostBytes::default();
    if plan.is_empty() {
        return Ok(out);
    }
    let cfg = engine.config();
    let host = &cfg.host;
    let policy = engine.xfer_policy();
    let partitions = engine.layout().partitions();
    if policy.batch_dispatch {
        out.dispatch_bytes = partitions as u64
            * (host.dispatch_header_bytes + plan.run_count() as u64 * host.dispatch_run_bytes);
    }
    if partitions > 1 {
        // one transfer pair per disjunct that touches a dimension
        // partition (the two-xb inter-partition traffic)
        let schema = engine.relation().schema();
        let dnf = query.filter.resolve_dnf(schema).map_err(ClusterError::Db)?;
        let dim_disjuncts = dnf
            .iter()
            .filter(|conj| {
                conj.iter().any(|a| {
                    let name = &schema.attrs()[a.attr_index()].name;
                    engine.layout().placement(name).map(|p| p.partition != 0).unwrap_or(false)
                })
            })
            .count() as u64;
        let raw_bytes = plan.len() as u64 * cfg.crossbar_rows as u64 * host.line_bytes as u64;
        let records_per_page =
            (engine.relation().len() as u64).div_ceil(engine.page_count().max(1) as u64);
        let packed = bbpim_sim::maskwire::WIRE_HEADER_BYTES
            + (plan.len() as u64 * records_per_page).div_ceil(8);
        let per_transfer = if policy.compress_masks { packed.min(raw_bytes) } else { raw_bytes };
        out.mask_wire_bytes = dim_disjuncts * 2 * per_transfer;
    }
    let aggs = query.physical_plan().map_err(ClusterError::Db)?.aggs.len() as u64;
    let chunk_lines = 64u64.div_ceil(cfg.read_width_bits as u64);
    let per_agg = chunk_lines * host.line_bytes as u64;
    out.result_bytes = aggs * per_agg * if policy.module_reduce { 1 } else { plan.len() as u64 };
    Ok(out)
}

impl std::fmt::Debug for ClusterEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterEngine")
            .field("shards", &self.shard_count)
            .field("active", &self.shards.len())
            .field("partitioner", &self.partitioner.label())
            .field("mode", &self.mode)
            .field("records", &self.records)
            .field("pruning", &self.pruning)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::builder::col;
    use bbpim_db::plan::{AggExpr, AggFunc, Atom};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::stats;

    fn relation(rows: u64) -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("lo_price", 8),
                Attribute::numeric("lo_disc", 4),
                Attribute::numeric("d_year", 3),
                Attribute::numeric("d_brand", 5),
            ],
        );
        let mut rel = Relation::new(schema);
        for i in 0..rows {
            rel.push_row(&[(3 * i + 1) % 251, i % 11, i % 7, (i * i) % 30]).unwrap();
        }
        rel
    }

    fn q1_like() -> Query {
        Query::single(
            "q1",
            vec![
                Atom::Eq { attr: "d_year".into(), value: 3u64.into() },
                Atom::Between { attr: "lo_disc".into(), lo: 1u64.into(), hi: 3u64.into() },
            ],
            vec![],
            AggFunc::Sum,
            AggExpr::Mul("lo_price".into(), "lo_disc".into()),
        )
    }

    fn q2_like(func: AggFunc) -> Query {
        Query::single(
            "q2",
            vec![Atom::Gt { attr: "lo_price".into(), value: 60u64.into() }],
            vec!["d_year".into(), "d_brand".into()],
            func,
            AggExpr::Attr("lo_price".into()),
        )
    }

    fn cluster(shards: usize, p: Partitioner) -> ClusterEngine {
        let mut c = ClusterEngine::new(
            SimConfig::small_for_tests(),
            relation(1500),
            EngineMode::OneXb,
            shards,
            p,
        )
        .unwrap();
        c.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        c
    }

    #[test]
    fn matches_oracle_all_partitioners_all_funcs() {
        let rel = relation(1500);
        for p in [
            Partitioner::RoundRobin,
            Partitioner::hash_by_group_keys(&["d_year".into(), "d_brand".into()]),
            Partitioner::range_by_attr("d_year"),
        ] {
            for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
                let q = q2_like(func);
                let mut c = cluster(3, p.clone());
                let out = c.run(&q).unwrap();
                let oracle = stats::run_oracle(&q, &rel).unwrap();
                assert_eq!(out.groups, oracle, "{} {func:?}", p.label());
                assert_eq!(out.report.active_shards, 3);
            }
        }
    }

    #[test]
    fn q1_style_partial_sums_merge() {
        let rel = relation(1500);
        let q = q1_like();
        let mut c = cluster(4, Partitioner::RoundRobin);
        let out = c.run(&q).unwrap();
        assert_eq!(out.groups, stats::run_oracle(&q, &rel).unwrap());
        assert_eq!(out.report.selected, out.report.per_shard.iter().map(|r| r.selected).sum());
    }

    #[test]
    fn wall_clock_serialises_host_bus_and_overlaps_pim() {
        let mut c = cluster(3, Partitioner::RoundRobin);
        let out = c.run(&q2_like(AggFunc::Sum)).unwrap();
        let d_total: f64 =
            out.report.per_shard.iter().map(|r| r.phases.time_in(PhaseKind::HostDispatch)).sum();
        let bus_total: f64 = out.report.per_shard.iter().map(|r| r.host_bus_ns).sum();
        let pim_max =
            out.report.per_shard.iter().map(|r| r.time_ns - r.host_bus_ns).fold(0.0, f64::max);
        let sum_t: f64 = out.report.per_shard.iter().map(|r| r.time_ns).sum();
        let sum_e: f64 = out.report.per_shard.iter().map(|r| r.energy_pj).sum();
        assert!((out.report.dispatch_time_ns - d_total).abs() < 1e-9);
        assert!((out.report.host_bus_time_ns - bus_total).abs() < 1e-9);
        assert!(
            bus_total > d_total,
            "result-line reads must add channel occupancy beyond dispatch"
        );
        assert!(
            (out.report.time_ns - (bus_total + pim_max + out.report.merge_time_ns)).abs() < 1e-9
        );
        assert!((out.report.total_shard_time_ns - sum_t).abs() < 1e-9);
        assert!((out.report.energy_pj - sum_e).abs() < 1e-9);
        assert!(out.report.merge_time_ns > 0.0);
        assert!(out.report.dispatch_time_ns > 0.0);
        assert!(out.report.time_ns < sum_t, "parallel shards must beat serial execution");
    }

    #[test]
    fn contention_off_restores_optimistic_model_with_identical_answers() {
        let q = q2_like(AggFunc::Sum);
        let mut c = cluster(3, Partitioner::RoundRobin);
        let contended = c.run(&q).unwrap();
        c.set_contention(false);
        assert!(!c.contention());
        let optimistic = c.run(&q).unwrap();
        assert_eq!(contended.groups, optimistic.groups, "answers are accounting-independent");
        assert_eq!(contended.report.selected, optimistic.report.selected);
        // the optimistic model serialises only dispatch
        let d_total = optimistic.report.dispatch_time_ns;
        let pim_max = optimistic
            .report
            .per_shard
            .iter()
            .map(|r| r.time_ns - r.phases.time_in(PhaseKind::HostDispatch))
            .fold(0.0, f64::max);
        assert!(
            (optimistic.report.time_ns - (d_total + pim_max + optimistic.report.merge_time_ns))
                .abs()
                < 1e-9
        );
        // contention can only lengthen the wall clock; energy is identical
        assert!(contended.report.time_ns >= optimistic.report.time_ns - 1e-9);
        assert!((contended.report.energy_pj - optimistic.report.energy_pj).abs() < 1e-9);
    }

    #[test]
    fn range_partitioning_prunes_shards_pre_scatter() {
        let rel = relation(1400); // d_year uniform over 0..7
        let q = Query::single(
            "year3",
            vec![Atom::Eq { attr: "d_year".into(), value: 3u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Attr("lo_price".into()),
        );
        let mut c = ClusterEngine::new(
            SimConfig::small_for_tests(),
            rel.clone(),
            EngineMode::OneXb,
            7,
            Partitioner::range_by_attr("d_year"),
        )
        .unwrap();
        let out = c.run(&q).unwrap();
        assert_eq!(out.groups, stats::run_oracle(&q, &rel).unwrap());
        assert_eq!(out.report.shards_pruned, 6, "only the d_year=3 shard may survive");
        assert_eq!(out.report.per_shard.len(), 1);
        // exhaustive dispatch runs every shard and costs more wall clock
        c.set_pruning(false);
        let exhaustive = c.run(&q).unwrap();
        assert_eq!(exhaustive.groups, out.groups);
        assert_eq!(exhaustive.report.shards_pruned, 0);
        assert_eq!(exhaustive.report.per_shard.len(), 7);
        assert!(exhaustive.report.time_ns > out.report.time_ns);
        assert!(exhaustive.report.energy_pj > out.report.energy_pj);
    }

    #[test]
    fn all_shards_pruned_returns_empty_answer() {
        let rel = relation(700);
        let q = Query::single(
            "none",
            vec![Atom::Gt { attr: "lo_price".into(), value: 254u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Attr("lo_price".into()),
        );
        let mut c = ClusterEngine::new(
            SimConfig::small_for_tests(),
            rel.clone(),
            EngineMode::OneXb,
            3,
            Partitioner::RoundRobin,
        )
        .unwrap();
        let out = c.run(&q).unwrap();
        assert_eq!(out.groups, stats::run_oracle(&q, &rel).unwrap());
        assert!(out.groups.is_empty());
        assert_eq!(out.report.shards_pruned, out.report.active_shards);
        assert_eq!(out.report.time_ns, 0.0);
        assert_eq!(out.report.selected, 0);
    }

    #[test]
    fn empty_shards_are_dropped_but_counted() {
        // 7 hash shards over a key with few distinct values: some
        // shards receive nothing and must not break execution.
        let rel = relation(200);
        let q = q2_like(AggFunc::Sum);
        let mut c = ClusterEngine::new(
            SimConfig::small_for_tests(),
            rel.clone(),
            EngineMode::OneXb,
            7,
            Partitioner::hash_by_group_keys(&["d_year".into()]),
        )
        .unwrap();
        c.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        assert!(c.active_shards() <= 7);
        assert_eq!(c.shard_count(), 7);
        let indices = c.active_shard_indices();
        assert_eq!(indices.len(), c.active_shards());
        assert!(indices.iter().all(|&i| i < 7));
        let out = c.run(&q).unwrap();
        assert_eq!(out.groups, stats::run_oracle(&q, &rel).unwrap());
        assert_eq!(out.report.shards, 7);
    }

    #[test]
    fn range_split_with_more_shards_than_values_drops_empties() {
        // d_year has 7 distinct values; 16 range buckets leave gaps.
        let rel = relation(400);
        let q = q2_like(AggFunc::Sum);
        let mut c = ClusterEngine::new(
            SimConfig::small_for_tests(),
            rel.clone(),
            EngineMode::OneXb,
            16,
            Partitioner::range_by_attr("d_year"),
        )
        .unwrap();
        assert_eq!(c.shard_count(), 16);
        assert!(c.active_shards() < 16, "some buckets must be empty");
        assert_eq!(c.active_shard_indices().len(), c.active_shards());
        c.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        let out = c.run(&q).unwrap();
        assert_eq!(out.groups, stats::run_oracle(&q, &rel).unwrap());
        assert_eq!(out.report.shards, 16);
        assert_eq!(out.report.active_shards, c.active_shards());
    }

    #[test]
    fn update_fans_out_to_every_shard() {
        let rel = relation(1500);
        let m = Mutation::update()
            .filter(col("d_year").eq(3u64))
            .set("d_brand", 29u64)
            .build_unchecked();
        let mut c = cluster(4, Partitioner::RoundRobin);
        let rep = c.mutate(&m).unwrap();
        // reference: host-side rewrite of the unsharded relation
        let mut reference = rel.clone();
        let (b, y) = (
            reference.schema().index_of("d_brand").unwrap(),
            reference.schema().index_of("d_year").unwrap(),
        );
        let mut expected = 0u64;
        for row in 0..reference.len() {
            if reference.value(row, y) == 3 {
                reference.set_value(row, b, 29).unwrap();
                expected += 1;
            }
        }
        assert_eq!(rep.records_updated, expected);
        assert!(rep.time_ns < rep.total_shard_time_ns);
        // post-update queries reflect the write on every shard
        let q = q2_like(AggFunc::Sum);
        let out = c.run(&q).unwrap();
        assert_eq!(out.groups, stats::run_oracle(&q, &reference).unwrap());
    }

    #[test]
    fn update_widens_shard_zones_for_later_pruning() {
        // range split on d_year, then move year-3 records to year 6:
        // the year-3 shard's zone must widen so a d_year=6 query still
        // dispatches it.
        let rel = relation(1400);
        let mut c = ClusterEngine::new(
            SimConfig::small_for_tests(),
            rel.clone(),
            EngineMode::OneXb,
            7,
            Partitioner::range_by_attr("d_year"),
        )
        .unwrap();
        let m =
            Mutation::update().filter(col("d_year").eq(3u64)).set("d_year", 6u64).build_unchecked();
        let rep = c.mutate(&m).unwrap();
        assert!(rep.records_updated > 0);
        assert!(rep.shards_pruned >= 5, "the update itself must skip unrelated shards");
        let probe = Query::single(
            "year6",
            vec![Atom::Eq { attr: "d_year".into(), value: 6u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Attr("lo_price".into()),
        );
        let mut reference = rel.clone();
        let y = reference.schema().index_of("d_year").unwrap();
        for row in 0..reference.len() {
            if reference.value(row, y) == 3 {
                reference.set_value(row, y, 6).unwrap();
            }
        }
        let out = c.run(&probe).unwrap();
        assert_eq!(out.groups, stats::run_oracle(&probe, &reference).unwrap());
        // both the original year-6 shard and the widened year-3 shard run
        assert_eq!(out.report.per_shard.len(), 2);
    }

    #[test]
    fn batch_pipelines_across_shards() {
        let mut c = cluster(3, Partitioner::RoundRobin);
        let queries = vec![q1_like(), q2_like(AggFunc::Sum), q2_like(AggFunc::Max)];
        let batch = c.run_batch(&queries).unwrap();
        assert_eq!(batch.executions.len(), 3);
        // pipelined wall clock can never exceed the barrier schedule
        assert!(batch.wall_time_ns <= batch.serial_time_ns + 1e-9);
        assert!(batch.pipelining_speedup() >= 1.0);
        // answers identical to one-at-a-time runs
        let rel = relation(1500);
        for (q, e) in queries.iter().zip(&batch.executions) {
            assert_eq!(e.groups, stats::run_oracle(q, &rel).unwrap(), "{}", q.id);
        }
    }

    #[test]
    fn batch_prunes_per_query() {
        let rel = relation(1400);
        let year_probe = |y: u64| {
            Query::single(
                format!("y{y}"),
                vec![Atom::Eq { attr: "d_year".into(), value: y.into() }],
                vec![],
                AggFunc::Sum,
                AggExpr::Attr("lo_price".into()),
            )
        };
        let queries = vec![year_probe(1), year_probe(5)];
        let mut c = ClusterEngine::new(
            SimConfig::small_for_tests(),
            rel.clone(),
            EngineMode::OneXb,
            7,
            Partitioner::range_by_attr("d_year"),
        )
        .unwrap();
        let batch = c.run_batch(&queries).unwrap();
        for (q, e) in queries.iter().zip(&batch.executions) {
            assert_eq!(e.groups, stats::run_oracle(q, &rel).unwrap(), "{}", q.id);
            assert_eq!(e.report.shards_pruned, 6, "{}", q.id);
        }
        assert!(batch.wall_time_ns <= batch.serial_time_ns + 1e-9);
    }

    #[test]
    fn single_shard_cluster_equals_single_engine() {
        let rel = relation(900);
        let q = q2_like(AggFunc::Sum);
        let mut single =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel.clone(), EngineMode::OneXb)
                .unwrap();
        single.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        let s = single.run(&q).unwrap();
        let mut c = ClusterEngine::new(
            SimConfig::small_for_tests(),
            rel,
            EngineMode::OneXb,
            1,
            Partitioner::RoundRobin,
        )
        .unwrap();
        c.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        let out = c.run(&q).unwrap();
        assert_eq!(out.groups, s.groups);
        // one shard: wall clock is that shard plus the merge pass
        assert!((out.report.time_ns - out.report.merge_time_ns - s.report.time_ns).abs() < 1e-9);
    }

    #[test]
    fn group_by_needs_calibration_like_single_engine() {
        let mut c = ClusterEngine::new(
            SimConfig::small_for_tests(),
            relation(300),
            EngineMode::OneXb,
            2,
            Partitioner::RoundRobin,
        )
        .unwrap();
        assert!(matches!(
            c.run(&q2_like(AggFunc::Sum)),
            Err(ClusterError::Core(CoreError::NotCalibrated))
        ));
        // Q1-style works uncalibrated
        assert!(c.run(&q1_like()).is_ok());
    }
}
