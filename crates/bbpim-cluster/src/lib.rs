//! # bbpim-cluster — sharded multi-module PIM execution
//!
//! The paper evaluates a single 32 GB PIM module, but its memory
//! system is explicitly built from many independent modules, and
//! bulk-bitwise PIM throughput comes from exploiting that module-level
//! parallelism. This crate scales the single-module
//! [`bbpim_core::PimQueryEngine`] horizontally:
//!
//! * [`partition::Partitioner`] — round-robin, hash-by-group-key and
//!   range-by-attribute horizontal partitioning of the wide pre-joined
//!   relation into `n` record shards, each paired with its
//!   [`bbpim_db::zonemap::ZoneMap`].
//! * [`engine::ClusterEngine`] — one `PimQueryEngine` (its own
//!   `PimModule`) per non-empty shard; `run(&Query)` first tests the
//!   filter's bound intervals against every shard's zone map and
//!   *prunes* shards that provably hold no match, scatters the query to
//!   the survivors on scoped OS threads, gathers the per-shard
//!   [`bbpim_core::result::PartialGroups`], and merges them — wrapping
//!   SUM addition, MIN/MAX folding, and map union for GROUP BY — into
//!   an answer bit-identical to the single-module engine's. Simulated
//!   wall clock serialises the host's per-page dispatch across shards
//!   and overlaps the PIM phases (real modules run concurrently);
//!   energy sums over modules.
//! * [`engine::ClusterEngine::run_batch`] — a small batch scheduler:
//!   every shard drains its own zone-pruned query queue without
//!   cluster-wide barriers, so batch wall clock is host dispatch plus
//!   max-over-shards of PIM queue time.
//! * [`engine::ClusterEngine::update`] — cluster-wide UPDATE fan-out to
//!   the shards admitting the WHERE clause; each shard's PIM
//!   multiplexer rewrites the records it owns, and the touched shards'
//!   zone maps widen so pruning stays sound after writes.
//! * Scatter and gather are also exposed as building blocks —
//!   [`engine::ClusterEngine::run_on_shard`] executes one query on one
//!   shard, [`engine::ClusterEngine::merge_executions`] folds partials
//!   into a cluster answer, and [`engine::ClusterEngine::explain`]
//!   dumps the zone-map plan (shards/pages candidate vs pruned) without
//!   executing — so the streaming scheduler in `bbpim-sched` can
//!   interleave different queries' shard slices instead of scattering
//!   whole queries.
//!
//! ```
//! use bbpim_cluster::{ClusterEngine, Partitioner};
//! use bbpim_core::modes::EngineMode;
//! use bbpim_db::ssb::{queries, SsbDb, SsbParams};
//! use bbpim_sim::SimConfig;
//!
//! let wide = SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin();
//! let mut cluster = ClusterEngine::new(
//!     SimConfig::default(), wide, EngineMode::OneXb, 4, Partitioner::RoundRobin)?;
//! let q = queries::standard_query("Q1.1").unwrap();
//! let out = cluster.run(&q)?;
//! println!("{} on {} shards in {:.3} ms", q.id, out.report.shards, out.report.time_ns / 1e6);
//! # Ok::<(), bbpim_cluster::ClusterError>(())
//! ```

pub mod engine;
pub mod error;
pub mod explain;
pub mod obs;
pub mod partition;

pub use engine::{BatchExecution, ClusterEngine, ClusterExecution, ClusterReport};
pub use error::ClusterError;
pub use explain::{HostBytes, JoinTransfer, PlanActuals, PlanExplain, ShardPlan};
pub use partition::Partitioner;
